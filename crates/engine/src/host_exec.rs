//! Interpreter for host programs with Maryland `FIND` paths.
//!
//! The interpreter is generic over [`NetworkOps`], the owner-coupled-set DML
//! surface. This indirection is load-bearing for the paper's experiments:
//! the *same unmodified program AST* can run against
//!
//! * a [`dbpc_storage::NetworkDb`] directly (original program on the source
//!   database, or rewritten program on the target database), or
//! * a **DML emulation / bridge layer** (the §2.1.2 baseline strategies,
//!   implemented in `dbpc-emulate`) that answers the same calls from a
//!   restructured database.
//!
//! Database rejections (integrity violations, duplicates) become observable
//! `Abort` trace events — a 1979 batch program dying with an error message —
//! so integrity-behavior differences between source and target schemas show
//! up in the equivalence check, exactly as §3.1 requires.

use crate::error::{RunError, RunResult};
use crate::scan::{planner, AccessPath, PlanChoice, Project, Scan, Select, TableScan};
use crate::trace::{Inputs, Trace, TraceEvent};
use dbpc_datamodel::value::{cmp_tuple, Value};
use dbpc_dml::expr::{BinOp, BoolExpr, Expr};
use dbpc_dml::host::{FindExpr, FindSpec, ForSource, PathStart, Program, Stmt};
use dbpc_storage::{
    AccessProfile, DbError, DbResult, NetworkDb, RecordId, Savepoint, SYSTEM_OWNER,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The owner-coupled-set DML surface the interpreter drives.
///
/// `NetworkDb` implements it directly; emulation and bridge strategies
/// implement it over a restructured database.
pub trait NetworkOps {
    /// Read a field of a record (virtuals resolved).
    fn field_value(&self, id: RecordId, field: &str) -> DbResult<Value>;
    /// Does `rtype` declare `field`?
    fn has_field(&self, rtype: &str, field: &str) -> bool;
    /// All field values of a record in declaration order.
    fn resolved_values(&self, id: RecordId) -> DbResult<Vec<Value>>;
    /// Members of a set occurrence, in set order.
    fn members_of(&mut self, set: &str, owner: RecordId) -> DbResult<Vec<RecordId>>;
    /// Declared ordering keys of a set type.
    fn set_keys(&self, set: &str) -> DbResult<Vec<String>>;
    /// The record type of an occurrence.
    fn rtype_of(&self, id: RecordId) -> DbResult<String>;
    /// The owner of `member` in `set`, if connected.
    fn owner_in(&mut self, set: &str, member: RecordId) -> DbResult<Option<RecordId>>;
    /// All records of a type (creation order).
    fn records_of_type(&mut self, rtype: &str) -> DbResult<Vec<RecordId>>;
    /// Store a record with connections.
    fn store(
        &mut self,
        rtype: &str,
        values: &[(&str, Value)],
        connects: &[(&str, RecordId)],
    ) -> DbResult<RecordId>;
    /// Modify stored fields.
    fn modify(&mut self, id: RecordId, assigns: &[(&str, Value)]) -> DbResult<()>;
    /// Erase a record; `cascade` erases owned members recursively
    /// (DBTG `ERASE ALL`). Non-cascade erasure fails while members exist,
    /// except through characterizing sets.
    fn erase(&mut self, id: RecordId, cascade: bool) -> DbResult<()>;
    /// Connect / disconnect membership.
    fn connect(&mut self, set: &str, owner: RecordId, member: RecordId) -> DbResult<()>;
    fn disconnect(&mut self, set: &str, member: RecordId) -> DbResult<()>;

    // -- access-path hooks (optional) --------------------------------------
    //
    // Default implementations describe an ops layer with no index support:
    // keyed lookups fall back to scans and no counters are reported. The
    // emulation layer deliberately stays on these defaults — its per-call
    // re-sorting IS the degraded access path §2.1.2 predicts — while
    // `NetworkDb` overrides them with its calc-key index and counters.

    /// Records of `rtype` whose stored `fields` equal `key`, in creation
    /// order. `Ok(None)` means "no index available": the caller must scan.
    fn find_keyed(
        &mut self,
        _rtype: &str,
        _fields: &[&str],
        _key: &[Value],
    ) -> DbResult<Option<Vec<RecordId>>> {
        Ok(None)
    }

    /// Cardinality of a record type, for planner cost estimates.
    /// `None` = the layer keeps no statistics (emulation/bridge): plans
    /// are priced from the candidate list alone.
    fn type_cardinality_stat(&self, _rtype: &str) -> Option<u64> {
        None
    }

    /// Snapshot of the layer's access-path counters, if it keeps any.
    fn access_profile(&self) -> Option<AccessProfile> {
        None
    }

    /// Zero the layer's access-path counters before a run.
    fn reset_access_stats(&mut self) {}

    // -- transaction hooks -------------------------------------------------
    //
    // Every program run executes inside a savepoint: the interpreter
    // commits on completion and rolls back on a typed error, fuel
    // exhaustion, or a panic unwinding through it. Layers must forward
    // these to the underlying store so a failed run leaves the base
    // bitwise-unchanged — the property the supervision ladder's retry
    // budget depends on.

    /// Open a savepoint on the underlying store.
    fn begin_savepoint(&mut self) -> Savepoint;
    /// Undo everything since `sp` (and close it).
    fn rollback_to(&mut self, sp: Savepoint);
    /// Keep everything since `sp` (and close it).
    fn commit_savepoint(&mut self, sp: Savepoint);
}

impl NetworkOps for NetworkDb {
    fn field_value(&self, id: RecordId, field: &str) -> DbResult<Value> {
        NetworkDb::field_value(self, id, field)
    }

    fn has_field(&self, rtype: &str, field: &str) -> bool {
        self.schema()
            .record(rtype)
            .is_some_and(|r| r.field(field).is_some())
    }

    fn resolved_values(&self, id: RecordId) -> DbResult<Vec<Value>> {
        NetworkDb::resolved_values(self, id)
    }

    fn members_of(&mut self, set: &str, owner: RecordId) -> DbResult<Vec<RecordId>> {
        NetworkDb::members_of(self, set, owner)
    }

    fn set_keys(&self, set: &str) -> DbResult<Vec<String>> {
        self.schema()
            .set(set)
            .map(|s| s.keys.clone())
            .ok_or_else(|| DbError::unknown("set", set))
    }

    fn rtype_of(&self, id: RecordId) -> DbResult<String> {
        Ok(self.get(id)?.rtype.clone())
    }

    fn owner_in(&mut self, set: &str, member: RecordId) -> DbResult<Option<RecordId>> {
        NetworkDb::owner_in(self, set, member)
    }

    fn records_of_type(&mut self, rtype: &str) -> DbResult<Vec<RecordId>> {
        Ok(NetworkDb::records_of_type(self, rtype))
    }

    fn store(
        &mut self,
        rtype: &str,
        values: &[(&str, Value)],
        connects: &[(&str, RecordId)],
    ) -> DbResult<RecordId> {
        NetworkDb::store(self, rtype, values, connects)
    }

    fn modify(&mut self, id: RecordId, assigns: &[(&str, Value)]) -> DbResult<()> {
        NetworkDb::modify(self, id, assigns)
    }

    fn erase(&mut self, id: RecordId, cascade: bool) -> DbResult<()> {
        NetworkDb::erase(self, id, cascade).map(|_| ())
    }

    fn connect(&mut self, set: &str, owner: RecordId, member: RecordId) -> DbResult<()> {
        NetworkDb::connect(self, set, owner, member)
    }

    fn disconnect(&mut self, set: &str, member: RecordId) -> DbResult<()> {
        NetworkDb::disconnect(self, set, member)
    }

    fn find_keyed(
        &mut self,
        rtype: &str,
        fields: &[&str],
        key: &[Value],
    ) -> DbResult<Option<Vec<RecordId>>> {
        NetworkDb::find_keyed(self, rtype, fields, key)
    }

    fn type_cardinality_stat(&self, rtype: &str) -> Option<u64> {
        Some(NetworkDb::type_cardinality(self, rtype))
    }

    fn access_profile(&self) -> Option<AccessProfile> {
        Some(self.access_stats().snapshot())
    }

    fn reset_access_stats(&mut self) {
        self.access_stats().reset();
    }

    fn begin_savepoint(&mut self) -> Savepoint {
        NetworkDb::begin_savepoint(self)
    }

    fn rollback_to(&mut self, sp: Savepoint) {
        NetworkDb::rollback_to(self, sp);
    }

    fn commit_savepoint(&mut self, sp: Savepoint) {
        NetworkDb::commit(self, sp);
    }
}

/// A runtime value: a scalar or a record collection. `FOR EACH` loop
/// variables hold singleton collections.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    Scalar(Value),
    Records(Vec<RecordId>),
}

impl RtVal {
    fn as_records(&self) -> Option<&[RecordId]> {
        match self {
            RtVal::Records(r) => Some(r),
            RtVal::Scalar(_) => None,
        }
    }
}

/// Outcome of a run: the program either completed (possibly having aborted
/// observably) or malfunctioned.
enum Flow {
    Continue,
    Halt,
}

/// The host-program interpreter.
pub struct HostInterpreter<'d, D: NetworkOps> {
    db: &'d mut D,
    env: BTreeMap<String, RtVal>,
    inputs: Inputs,
    trace: Trace,
    steps: usize,
    step_limit: usize,
}

/// Run `program` against `db` with scripted `inputs`; returns the trace,
/// carrying the ops layer's access-path counters when it keeps any.
///
/// The run is atomic: it executes inside a savepoint that commits only
/// when the program completes. A typed error, fuel exhaustion, or a panic
/// (re-raised after cleanup) rolls the store back to its pre-run state.
pub fn run_host<D: NetworkOps>(db: &mut D, program: &Program, inputs: Inputs) -> RunResult<Trace> {
    run_host_guarded(db, program, inputs, None)
}

/// Default interpreter fuel for supervised verification runs: generous for
/// any legitimate corpus program, small enough that a runaway loop fails a
/// fallback-ladder rung in milliseconds instead of hanging the batch.
pub const DEFAULT_VERIFY_FUEL: usize = 250_000;

/// Like [`run_host`] but with an explicit fuel (statement budget).
/// Exceeding it returns [`RunError::StepLimit`](crate::error::RunError) —
/// the supervision layer's guard against a looping generated program —
/// after rolling back whatever the partial run had already mutated.
pub fn run_host_with_fuel<D: NetworkOps>(
    db: &mut D,
    program: &Program,
    inputs: Inputs,
    fuel: usize,
) -> RunResult<Trace> {
    run_host_guarded(db, program, inputs, Some(fuel))
}

fn run_host_guarded<D: NetworkOps>(
    db: &mut D,
    program: &Program,
    inputs: Inputs,
    fuel: Option<usize>,
) -> RunResult<Trace> {
    dbpc_obs::span("engine.host", || {
        db.reset_access_stats();
        let sp = db.begin_savepoint();
        let db_ref = &mut *db;
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut interp = HostInterpreter::new(db_ref, inputs);
            if let Some(f) = fuel {
                interp = interp.with_step_limit(f);
            }
            interp.run(program)
        }));
        // The run's access-path work flows into the ambient obs sheet on
        // every exit path — observability is append-only even when the
        // savepoint below rolls the data back.
        let absorb = |db: &D| {
            db.access_profile().unwrap_or_default().absorb_into_obs();
        };
        match outcome {
            Ok(Ok(mut trace)) => {
                db.commit_savepoint(sp);
                trace.access = db.access_profile().unwrap_or_default();
                absorb(db);
                Ok(trace)
            }
            Ok(Err(e)) => {
                absorb(db);
                db.rollback_to(sp);
                Err(e)
            }
            Err(payload) => {
                absorb(db);
                db.rollback_to(sp);
                resume_unwind(payload)
            }
        }
    })
}

impl<'d, D: NetworkOps> HostInterpreter<'d, D> {
    pub fn new(db: &'d mut D, inputs: Inputs) -> Self {
        HostInterpreter {
            db,
            env: BTreeMap::new(),
            inputs,
            trace: Trace::new(),
            steps: 0,
            step_limit: 1_000_000,
        }
    }

    /// Override the runaway-loop guard.
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Execute the program to completion; returns the observable trace.
    pub fn run(mut self, program: &Program) -> RunResult<Trace> {
        self.exec_block(&program.stmts)?;
        Ok(self.trace)
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> RunResult<Flow> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Continue => {}
                Flow::Halt => return Ok(Flow::Halt),
            }
        }
        Ok(Flow::Continue)
    }

    fn tick(&mut self) -> RunResult<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(RunError::StepLimit);
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> RunResult<Flow> {
        self.tick()?;
        match s {
            Stmt::Let { var, expr } => {
                let v = self.eval(expr, None)?;
                self.env.insert(var.clone(), RtVal::Scalar(v));
            }
            Stmt::Find { var, query } => {
                let recs = self.eval_find(query)?;
                self.env.insert(var.clone(), RtVal::Records(recs));
            }
            Stmt::ForEach { var, source, body } => {
                let recs = match source {
                    ForSource::Var(v) => self.records_var(v)?.to_vec(),
                    ForSource::Query(q) => self.eval_find(q)?,
                };
                for id in recs {
                    self.env.insert(var.clone(), RtVal::Records(vec![id]));
                    match self.exec_block(body)? {
                        Flow::Continue => {}
                        Flow::Halt => return Ok(Flow::Halt),
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = if self.eval_bool(cond, None)? {
                    then_branch
                } else {
                    else_branch
                };
                return self.exec_block(branch);
            }
            Stmt::While { cond, body } => {
                while self.eval_bool(cond, None)? {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Continue => {}
                        Flow::Halt => return Ok(Flow::Halt),
                    }
                }
            }
            Stmt::Print(exprs) => {
                let line = self.format_values(exprs)?;
                self.trace.push(TraceEvent::TerminalOut(line));
            }
            Stmt::WriteFile { file, exprs } => {
                let line = self.format_values(exprs)?;
                self.trace.push(TraceEvent::FileWrite {
                    file: file.clone(),
                    line,
                });
            }
            Stmt::ReadTerminal { var } => {
                let line = self.inputs.read_terminal();
                self.trace.push(TraceEvent::TerminalIn(line.clone()));
                self.env
                    .insert(var.clone(), RtVal::Scalar(parse_input(&line)));
            }
            Stmt::ReadFile { file, var } => {
                let line = self.inputs.read_file(file);
                self.trace.push(TraceEvent::FileRead {
                    file: file.clone(),
                    line: line.clone(),
                });
                self.env
                    .insert(var.clone(), RtVal::Scalar(parse_input(&line)));
            }
            Stmt::Store {
                record,
                assigns,
                connects,
            } => {
                let mut vals: Vec<(String, Value)> = Vec::with_capacity(assigns.len());
                for (f, e) in assigns {
                    vals.push((f.clone(), self.eval(e, None)?));
                }
                let mut conns: Vec<(String, RecordId)> = Vec::with_capacity(connects.len());
                for c in connects {
                    conns.push((c.set.clone(), self.single_record(&c.owner_var)?));
                }
                let vref: Vec<(&str, Value)> =
                    vals.iter().map(|(f, v)| (f.as_str(), v.clone())).collect();
                let cref: Vec<(&str, RecordId)> =
                    conns.iter().map(|(s, o)| (s.as_str(), *o)).collect();
                if let Err(e) = self.db.store(record, &vref, &cref) {
                    return self.db_abort(e);
                }
            }
            Stmt::Connect {
                member_var,
                set,
                owner_var,
            } => {
                let member = self.single_record(member_var)?;
                let owner = self.single_record(owner_var)?;
                if let Err(e) = self.db.connect(set, owner, member) {
                    return self.db_abort(e);
                }
            }
            Stmt::Disconnect { member_var, set } => {
                let member = self.single_record(member_var)?;
                if let Err(e) = self.db.disconnect(set, member) {
                    return self.db_abort(e);
                }
            }
            Stmt::Delete { var, all } => {
                let recs = self.records_var(var)?.to_vec();
                for id in recs {
                    if let Err(e) = self.db.erase(id, *all) {
                        return self.db_abort(e);
                    }
                }
                self.env.insert(var.clone(), RtVal::Records(Vec::new()));
            }
            Stmt::Modify { var, assigns } => {
                let recs = self.records_var(var)?.to_vec();
                for id in recs {
                    let mut vals: Vec<(String, Value)> = Vec::with_capacity(assigns.len());
                    for (f, e) in assigns {
                        vals.push((f.clone(), self.eval(e, Some(id))?));
                    }
                    let vref: Vec<(&str, Value)> =
                        vals.iter().map(|(f, v)| (f.as_str(), v.clone())).collect();
                    if let Err(e) = self.db.modify(id, &vref) {
                        return self.db_abort(e);
                    }
                }
            }
            Stmt::Check { cond, message } => {
                if !self.eval_bool(cond, None)? {
                    self.trace.push(TraceEvent::Abort(message.clone()));
                    return Ok(Flow::Halt);
                }
            }
            Stmt::CallDml { verb, record } => {
                let v = self.eval(verb, None)?;
                let verb_name = match &v {
                    Value::Str(s) => s.to_ascii_uppercase(),
                    other => other.to_string(),
                };
                match verb_name.as_str() {
                    // The §3.2 pathology: the same statement is a read or a
                    // destructive update depending on a run-time value.
                    "RETRIEVE" => {
                        // Single-path plan (creation-order type scan),
                        // streamed through the Scan layer: fetch resolved
                        // values, project to a terminal line.
                        let ids = self.db.records_of_type(record)?;
                        let actual = ids.len() as u64;
                        let choice = PlanChoice {
                            path: AccessPath::FullScan,
                            est_cost: self.db.type_cardinality_stat(record).unwrap_or(actual),
                        };
                        let db = &self.db;
                        let mut lines = Project::new(
                            Project::new(TableScan::new(ids.into_iter()), |id| {
                                db.resolved_values(id).map_err(RunError::Db)
                            }),
                            |vals: Vec<Value>| {
                                Ok(vals
                                    .iter()
                                    .map(|v| v.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" "))
                            },
                        );
                        while let Some(line) = lines.next()? {
                            self.trace.push(TraceEvent::TerminalOut(line));
                        }
                        planner::finish("host.retrieve", choice, actual);
                    }
                    "ERASE" => {
                        let ids = self.db.records_of_type(record)?;
                        for id in ids {
                            // Records may vanish through cascades.
                            match self.db.erase(id, true) {
                                Ok(()) | Err(DbError::NotFound(_)) => {}
                                Err(e) => return self.db_abort(e),
                            }
                        }
                    }
                    other => return Err(RunError::BadDmlVerb(other.to_string())),
                }
            }
        }
        Ok(Flow::Continue)
    }

    /// A database rejection becomes an observable abort.
    fn db_abort(&mut self, e: DbError) -> RunResult<Flow> {
        match e {
            // Genuine program/schema mismatches are malfunctions, not
            // observable 1979 behavior.
            DbError::UnknownName { .. } => Err(RunError::Db(e)),
            other => {
                self.trace.push(TraceEvent::Abort(other.to_string()));
                Ok(Flow::Halt)
            }
        }
    }

    fn format_values(&mut self, exprs: &[Expr]) -> RunResult<String> {
        let mut parts = Vec::with_capacity(exprs.len());
        for e in exprs {
            parts.push(self.eval(e, None)?.to_string());
        }
        Ok(parts.join(" "))
    }

    fn records_var(&self, var: &str) -> RunResult<&[RecordId]> {
        self.env
            .get(var)
            .ok_or_else(|| RunError::UnboundVar(var.to_string()))?
            .as_records()
            .ok_or(RunError::Kind {
                var: var.to_string(),
                expected: "record collection",
            })
    }

    fn single_record(&self, var: &str) -> RunResult<RecordId> {
        let recs = self.records_var(var)?;
        if recs.len() == 1 {
            Ok(recs[0])
        } else {
            Err(RunError::NotARecord(var.to_string()))
        }
    }

    // -- FIND evaluation ----------------------------------------------------

    fn eval_find(&mut self, q: &FindExpr) -> RunResult<Vec<RecordId>> {
        match q {
            FindExpr::Find(spec) => self.eval_find_spec(spec),
            FindExpr::Sort { inner, keys } => {
                let recs = self.eval_find(inner)?;
                self.sort_records(recs, keys)
            }
        }
    }

    fn sort_records(&mut self, recs: Vec<RecordId>, keys: &[String]) -> RunResult<Vec<RecordId>> {
        let mut keyed: Vec<(Vec<Value>, RecordId)> = Vec::with_capacity(recs.len());
        for id in recs {
            let mut k = Vec::with_capacity(keys.len());
            for key in keys {
                k.push(self.db.field_value(id, key)?);
            }
            keyed.push((k, id));
        }
        keyed.sort_by(|a, b| cmp_tuple(&a.0, &b.0));
        Ok(keyed.into_iter().map(|(_, id)| id).collect())
    }

    fn eval_find_spec(&mut self, spec: &FindSpec) -> RunResult<Vec<RecordId>> {
        let mut steps = spec.steps.iter();
        let mut current: Vec<RecordId> = match &spec.start {
            PathStart::System => {
                let first = steps.next().ok_or_else(|| {
                    RunError::Db(DbError::constraint(
                        "FIND from SYSTEM requires at least one path step",
                    ))
                })?;
                let members = self.db.members_of(&first.set, SYSTEM_OWNER)?;
                self.filter_records(members, &first.record, first.filter.as_ref())?
            }
            PathStart::Collection(var) => self.records_var(var)?.to_vec(),
        };
        let mut final_set: Option<&str> = match &spec.start {
            PathStart::System => spec.steps.first().map(|s| s.set.as_str()),
            PathStart::Collection(_) => None,
        };
        for step in steps {
            let mut next = Vec::new();
            for owner in &current {
                let members = self.db.members_of(&step.set, *owner)?;
                let kept = self.filter_records(members, &step.record, step.filter.as_ref())?;
                next.extend(kept);
            }
            current = next;
            final_set = Some(step.set.as_str());
        }
        // Maryland FIND semantics: the result collection is ordered by the
        // final traversed set's declared keys (globally, stably). This is
        // the reading under which the paper's own §4.2 conversion — wrapping
        // the restructured FIND in `SORT ... ON (EMP-NAME)` — preserves I/O
        // equivalence. A keyless final set yields traversal order.
        if let Some(set) = final_set {
            let keys = self.db.set_keys(set)?;
            if !keys.is_empty() {
                current = self.sort_records(current, &keys)?;
            }
        }
        Ok(current)
    }

    fn filter_records(
        &mut self,
        ids: Vec<RecordId>,
        rtype: &str,
        filter: Option<&BoolExpr>,
    ) -> RunResult<Vec<RecordId>> {
        let Some(f) = filter else {
            return Ok(ids);
        };
        // Unqualified names in a path filter resolve to fields of the
        // step's record type, falling back to host variables. `rtype` is
        // used for the membership test so that renamed/moved fields are
        // resolved against the right schema.
        let _ = rtype;
        // Single-path plan: the members of a set occurrence are only
        // reachable by walking it, so the estimate is the candidate count.
        let actual = ids.len() as u64;
        let choice = PlanChoice {
            path: AccessPath::FullScan,
            est_cost: actual,
        };
        let mut pipe = Select::new(TableScan::new(ids.into_iter()), |&id| {
            self.eval_bool(f, Some(id))
        });
        let out = pipe.collect_vec()?;
        planner::finish("host.filter", choice, actual);
        Ok(out)
    }

    // -- expression evaluation ----------------------------------------------

    fn eval_bool(&mut self, b: &BoolExpr, ctx: Option<RecordId>) -> RunResult<bool> {
        match b {
            BoolExpr::Cmp { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                Ok(op.eval(&l, &r))
            }
            BoolExpr::And(a, b) => Ok(self.eval_bool(a, ctx)? && self.eval_bool(b, ctx)?),
            BoolExpr::Or(a, b) => Ok(self.eval_bool(a, ctx)? || self.eval_bool(b, ctx)?),
            BoolExpr::Not(a) => Ok(!self.eval_bool(a, ctx)?),
        }
    }

    fn eval(&mut self, e: &Expr, ctx: Option<RecordId>) -> RunResult<Value> {
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Name(n) => {
                // Contextual resolution: a field of the context record wins;
                // otherwise a host variable.
                if let Some(id) = ctx {
                    if let Ok(v) = self.db.field_value(id, n) {
                        return Ok(v);
                    }
                }
                match self.env.get(n) {
                    Some(RtVal::Scalar(v)) => Ok(v.clone()),
                    Some(RtVal::Records(_)) => Err(RunError::Kind {
                        var: n.clone(),
                        expected: "scalar",
                    }),
                    None => Err(RunError::UnboundVar(n.clone())),
                }
            }
            Expr::Field { var, field } => {
                let id = self.single_record(var)?;
                Ok(self.db.field_value(id, field)?)
            }
            Expr::Count(var) => Ok(Value::Int(self.records_var(var)?.len() as i64)),
            Expr::Bin { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                eval_bin(*op, &l, &r)
            }
        }
    }
}

fn eval_bin(op: BinOp, l: &Value, r: &Value) -> RunResult<Value> {
    // String concatenation via `+`.
    if op == BinOp::Add {
        if let (Value::Str(a), Value::Str(b)) = (l, r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    match (l.as_int(), r.as_int()) {
        (Some(a), Some(b)) => {
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RunError::Arith("division by zero".into()));
                    }
                    a / b
                }
            };
            Ok(Value::Int(v))
        }
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                };
                Ok(Value::Float(v))
            }
            _ => Err(RunError::Arith(format!(
                "cannot apply {} to {} and {}",
                op.symbol(),
                l.type_name(),
                r.type_name()
            ))),
        },
    }
}

/// Terminal/file input lines are numbers when they look like numbers.
fn parse_input(line: &str) -> Value {
    match line.trim().parse::<i64>() {
        Ok(n) => Value::Int(n),
        Err(_) => Value::Str(line.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, NetworkSchema, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::host::parse_program;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        let aero = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("AEROSPACE")),
                    ("DIV-LOC", Value::str("SEATTLE")),
                ],
                &[],
            )
            .unwrap();
        for (name, dept, age, div) in [
            ("JONES", "SALES", 34, mach),
            ("ADAMS", "SALES", 28, mach),
            ("BAKER", "MFG", 45, mach),
            ("CLARK", "SALES", 52, aero),
            ("DAVIS", "ENG", 31, aero),
        ] {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(name)),
                    ("DEPT-NAME", Value::str(dept)),
                    ("AGE", Value::Int(age)),
                ],
                &[("DIV-EMP", div)],
            )
            .unwrap();
        }
        db
    }

    fn run(src: &str, db: &mut NetworkDb, inputs: Inputs) -> Trace {
        let p = parse_program(src).unwrap();
        run_host(db, &p, inputs).unwrap()
    }

    #[test]
    fn paper_example_1_find_age_over_30() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        // The result collection is ordered by the final set's keys
        // (EMP-NAME), globally.
        assert_eq!(t.terminal_lines(), vec!["BAKER", "CLARK", "DAVIS", "JONES"]);
    }

    #[test]
    fn paper_example_2_machinery_sales() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES')) DO
    PRINT R.EMP-NAME, R.AGE;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["ADAMS 28", "JONES 34"]);
    }

    #[test]
    fn sort_pins_global_order() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FOR EACH R IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) ON (EMP-NAME) DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["BAKER", "CLARK", "DAVIS", "JONES"]);
    }

    #[test]
    fn virtual_field_readable_in_program() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(EMP-NAME = 'JONES')) DO
    PRINT R.DIV-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["MACHINERY"]);
    }

    #[test]
    fn collection_start_continues_path() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'DETROIT'));
  FOR EACH R IN FIND(EMP: D, DIV-EMP, EMP) DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["ADAMS", "BAKER", "JONES"]);
    }

    #[test]
    fn store_modify_delete_cycle() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'));
  STORE EMP (EMP-NAME := 'NEWHIRE', DEPT-NAME := 'ENG', AGE := 22) CONNECT TO DIV-EMP OF D;
  FIND E := FIND(EMP: D, DIV-EMP, EMP(EMP-NAME = 'NEWHIRE'));
  PRINT COUNT(E);
  MODIFY E SET (AGE := AGE + 1);
  FOR EACH R IN E DO
    PRINT R.AGE;
  END FOR;
  DELETE E;
  FIND E2 := FIND(EMP: D, DIV-EMP, EMP(EMP-NAME = 'NEWHIRE'));
  PRINT COUNT(E2);
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["1", "23", "0"]);
    }

    #[test]
    fn terminal_dialogue_is_traced() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  PRINT 'WHICH DIVISION?';
  READ TERMINAL INTO D;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = D), DIV-EMP, EMP) DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new().with_terminal(&["AEROSPACE"]),
        );
        assert_eq!(
            t.events,
            vec![
                TraceEvent::TerminalOut("WHICH DIVISION?".into()),
                TraceEvent::TerminalIn("AEROSPACE".into()),
                TraceEvent::TerminalOut("CLARK".into()),
                TraceEvent::TerminalOut("DAVIS".into()),
            ]
        );
    }

    #[test]
    fn failed_check_aborts_observably() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  CHECK COUNT(E) < 3 ELSE ABORT 'TOO MANY EMPLOYEES';
  PRINT 'NEVER';
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert!(t.aborted());
        assert!(t.terminal_lines().is_empty());
    }

    #[test]
    fn integrity_rejection_becomes_abort_event() {
        let mut db = company_db();
        // JONES already exists under MACHINERY: duplicate set key.
        let t = run(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'));
  STORE EMP (EMP-NAME := 'JONES') CONNECT TO DIV-EMP OF D;
  PRINT 'NEVER';
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert!(t.aborted());
    }

    #[test]
    fn call_dml_retrieve_vs_erase_diverge() {
        // The §3.2 pathology made concrete: same program text, different
        // run-time verb, wildly different behavior.
        let mut db1 = company_db();
        let t1 = run(
            "PROGRAM P;
  READ TERMINAL INTO V;
  CALL DML V ON EMP;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  PRINT COUNT(E);
END PROGRAM;",
            &mut db1,
            Inputs::new().with_terminal(&["RETRIEVE"]),
        );
        assert_eq!(*t1.terminal_lines().last().unwrap(), "5");

        let mut db2 = company_db();
        let t2 = run(
            "PROGRAM P;
  READ TERMINAL INTO V;
  CALL DML V ON EMP;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  PRINT COUNT(E);
END PROGRAM;",
            &mut db2,
            Inputs::new().with_terminal(&["ERASE"]),
        );
        assert_eq!(*t2.terminal_lines().last().unwrap(), "0");
    }

    #[test]
    fn while_and_arith() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  LET I := 0;
  WHILE I < 3 DO
    PRINT 'I IS', I;
    LET I := I + 1;
  END WHILE;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["I IS 0", "I IS 1", "I IS 2"]);
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut db = company_db();
        let p = parse_program(
            "PROGRAM P;
  LET I := 0;
  WHILE 1 = 1 DO
    LET I := I + 1;
  END WHILE;
END PROGRAM;",
        )
        .unwrap();
        let r = HostInterpreter::new(&mut db, Inputs::new())
            .with_step_limit(1000)
            .run(&p);
        assert_eq!(r.unwrap_err(), RunError::StepLimit);
    }

    #[test]
    fn unbound_variable_is_malfunction() {
        let mut db = company_db();
        let p = parse_program("PROGRAM P;\n  PRINT X;\nEND PROGRAM;").unwrap();
        assert!(matches!(
            run_host(&mut db, &p, Inputs::new()),
            Err(RunError::UnboundVar(_))
        ));
    }

    #[test]
    fn file_io_traced() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  READ FILE 'PARAMS' INTO LIMIT;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > LIMIT)) DO
    WRITE FILE 'REPORT' R.EMP-NAME, R.AGE;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new().with_file("PARAMS", &["44"]),
        );
        assert_eq!(
            t.events,
            vec![
                TraceEvent::FileRead {
                    file: "PARAMS".into(),
                    line: "44".into()
                },
                TraceEvent::FileWrite {
                    file: "REPORT".into(),
                    line: "BAKER 45".into()
                },
                TraceEvent::FileWrite {
                    file: "REPORT".into(),
                    line: "CLARK 52".into()
                },
            ]
        );
    }

    #[test]
    fn filter_mixes_fields_and_variables() {
        let mut db = company_db();
        let t = run(
            "PROGRAM P;
  LET MIN := 40;
  FOR EACH R IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > MIN)) DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
            &mut db,
            Inputs::new(),
        );
        assert_eq!(t.terminal_lines(), vec!["BAKER", "CLARK"]);
    }
}
