//! SEQUEL evaluator over the relational engine.
//!
//! A 1979-faithful evaluator: `SELECT` scans its table in storage (insertion)
//! order, evaluates the predicate per row — `IN` subqueries are evaluated by
//! collecting the subquery's first projected column — and prints each result
//! row to the terminal (running a query *is* the program in a self-contained
//! query system, §1.1). Result order is storage order unless `ORDER BY`
//! pins it, which is precisely the order-observability issue the converter
//! must manage.

use crate::error::{RunError, RunResult};
use crate::scan::{planner, AccessPath, IndexScan, ProbeStats, Scan, Select, TableScan};
use crate::trace::{Inputs, Trace, TraceEvent};
use dbpc_datamodel::value::{cmp_tuple, Value};
use dbpc_dml::sequel::{SelectQuery, SequelPred, SequelProgram, SequelStmt};
use dbpc_dml::CmpOp;
use dbpc_storage::{DbError, RelationalDb};

/// Run a SEQUEL program; each SELECT's rows are printed to the terminal.
/// The returned trace carries the run's access-path counters.
///
/// The run is atomic: a typed error or a panic (re-raised after cleanup)
/// rolls the database back to its pre-run state. An *observable* abort —
/// a rejected update printed to the trace — is still a completed run and
/// keeps its partial work, as a 1979 batch program would.
pub fn run_sequel(
    db: &mut RelationalDb,
    program: &SequelProgram,
    inputs: Inputs,
) -> RunResult<Trace> {
    dbpc_obs::span("engine.sequel", || {
        db.access_stats().reset();
        let sp = db.begin_savepoint();
        let db_ref = &mut *db;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            run_sequel_inner(db_ref, program, inputs)
        }));
        match outcome {
            Ok(Ok(mut trace)) => {
                db.commit(sp);
                trace.access = db.access_stats().snapshot();
                trace.access.absorb_into_obs();
                Ok(trace)
            }
            Ok(Err(e)) => {
                db.access_stats().snapshot().absorb_into_obs();
                db.rollback_to(sp);
                Err(e)
            }
            Err(payload) => {
                db.access_stats().snapshot().absorb_into_obs();
                db.rollback_to(sp);
                std::panic::resume_unwind(payload)
            }
        }
    })
}

fn run_sequel_inner(
    db: &mut RelationalDb,
    program: &SequelProgram,
    _inputs: Inputs,
) -> RunResult<Trace> {
    let mut trace = Trace::new();
    for stmt in &program.stmts {
        match stmt {
            SequelStmt::Select(q) => {
                let rows = eval_select(db, q)?;
                for row in rows {
                    let line = row
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" ");
                    trace.push(TraceEvent::TerminalOut(line));
                }
            }
            SequelStmt::Insert { table, assigns } => {
                let vals: Vec<(&str, Value)> = assigns
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.clone()))
                    .collect();
                if let Err(e) = db.insert(table, &vals) {
                    return db_abort(&mut trace, e);
                }
            }
            SequelStmt::Delete { table, where_ } => {
                let pred = compile_pred(db, table, where_.as_ref())?;
                if let Err(e) = db.delete_where(table, |row| pred(row)) {
                    return db_abort(&mut trace, e);
                }
            }
            SequelStmt::Update {
                table,
                assigns,
                where_,
            } => {
                let pred = compile_pred(db, table, where_.as_ref())?;
                let vals: Vec<(&str, Value)> = assigns
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.clone()))
                    .collect();
                if let Err(e) = db.update_where(table, |row| pred(row), &vals) {
                    return db_abort(&mut trace, e);
                }
            }
        }
    }
    Ok(trace)
}

fn db_abort(trace: &mut Trace, e: DbError) -> RunResult<Trace> {
    match e {
        DbError::UnknownName { .. } => Err(RunError::Db(e)),
        other => {
            trace.push(TraceEvent::Abort(other.to_string()));
            Ok(std::mem::take(trace))
        }
    }
}

/// A compiled row predicate.
type RowPred = Box<dyn Fn(&[Value]) -> bool>;

/// Compile a predicate into a row closure for `delete_where`/`update_where`.
///
/// `IN` subqueries are pre-evaluated to value sets (they are uncorrelated in
/// this sublanguage), so the closure needs no database access — which also
/// keeps the mutable-borrow story simple.
fn compile_pred(db: &RelationalDb, table: &str, pred: Option<&SequelPred>) -> RunResult<RowPred> {
    let Some(p) = pred else {
        return Ok(Box::new(|_| true));
    };
    let def = db
        .schema()
        .table(table)
        .ok_or_else(|| RunError::Db(DbError::unknown("table", table)))?;
    compile_pred_inner(db, def, p)
}

fn compile_pred_inner(
    db: &RelationalDb,
    def: &dbpc_datamodel::relational::TableDef,
    p: &SequelPred,
) -> RunResult<RowPred> {
    match p {
        SequelPred::Cmp { column, op, value } => {
            let idx = def.column_index(column).ok_or_else(|| {
                RunError::Db(DbError::unknown(
                    "column",
                    format!("{}.{}", def.name, column),
                ))
            })?;
            let op = *op;
            let value = value.clone();
            Ok(Box::new(move |row| op.eval(&row[idx], &value)))
        }
        SequelPred::In { column, sub } => {
            let idx = def.column_index(column).ok_or_else(|| {
                RunError::Db(DbError::unknown(
                    "column",
                    format!("{}.{}", def.name, column),
                ))
            })?;
            let values: Vec<Value> = eval_select(db, sub)?
                .into_iter()
                .filter_map(|r| r.into_iter().next())
                .collect();
            Ok(Box::new(move |row| {
                values.iter().any(|v| v.loose_eq(&row[idx]))
            }))
        }
        SequelPred::And(a, b) => {
            let fa = compile_pred_inner(db, def, a)?;
            let fb = compile_pred_inner(db, def, b)?;
            Ok(Box::new(move |row| fa(row) && fb(row)))
        }
        SequelPred::Or(a, b) => {
            let fa = compile_pred_inner(db, def, a)?;
            let fb = compile_pred_inner(db, def, b)?;
            Ok(Box::new(move |row| fa(row) || fb(row)))
        }
        SequelPred::Not(a) => {
            let fa = compile_pred_inner(db, def, a)?;
            Ok(Box::new(move |row| !fa(row)))
        }
    }
}

/// Evaluate a `SELECT` to projected rows.
///
/// Access path: top-level conjunctive `col = const` terms are offered to
/// the planner, which prices an index probe ([`RelationalDb::probe_eq`],
/// primary key or secondary index) against a full scan from the table's
/// cardinality and the index's distinct-key count, then builds the
/// corresponding [`Scan`] pipeline. Probe candidates come back in storage
/// order and the **full** predicate is re-evaluated on each one, so plan
/// choice changes row visits, never results — contradictory or duplicated
/// equality terms included. On the scan path the table is read through
/// the borrowing row cursor; rows are cloned only once the predicate
/// admits them.
pub fn eval_select(db: &RelationalDb, q: &SelectQuery) -> RunResult<Vec<Vec<Value>>> {
    let def = db
        .schema()
        .table(&q.table)
        .ok_or_else(|| RunError::Db(DbError::unknown("table", &q.table)))?;

    let mut eqs: Vec<(String, Value)> = Vec::new();
    collect_eq_terms(q.where_.as_ref(), &mut eqs);
    let probe = if eqs.is_empty() {
        None
    } else {
        db.probe_eq_stats(&q.table, &eqs)?
            .map(|(distinct_keys, unique)| ProbeStats {
                distinct_keys,
                unique,
            })
    };
    let choice = planner::choose(db.table_cardinality(&q.table)?, probe);

    // Pre-evaluate IN subqueries once (they are uncorrelated in this
    // sublanguage, matching the paper's usage).
    let mut kept: Vec<Vec<Value>> = Vec::new();
    let pred = |row: &[Value]| match &q.where_ {
        None => Ok(true),
        Some(p) => eval_pred(db, def, p, row),
    };
    match choice.path {
        AccessPath::IndexProbe => {
            let ids = db.probe_eq(&q.table, &eqs)?.unwrap_or_default();
            let actual = ids.len() as u64;
            let fetch = |id| {
                let row = db.row(&q.table, id)?;
                db.access_stats().scanned(1);
                Ok(row)
            };
            let mut pipe = Select::new(IndexScan::new(ids, fetch), |row: &&[Value]| pred(row));
            while let Some(row) = pipe.next()? {
                kept.push(row.to_vec());
            }
            planner::finish("sequel.select", choice, actual);
        }
        AccessPath::FullScan => {
            let before = db.access_stats().snapshot().rows_scanned;
            let mut pipe = Select::new(TableScan::new(db.iter_rows(&q.table)?), |(_, row)| {
                pred(row)
            });
            while let Some((_, row)) = pipe.next()? {
                kept.push(row.to_vec());
            }
            let actual = db.access_stats().snapshot().rows_scanned - before;
            planner::finish("sequel.select", choice, actual);
        }
    }

    // ORDER BY before projection (sort columns need not be projected).
    if !q.order_by.is_empty() {
        let idxs: Vec<usize> = q
            .order_by
            .iter()
            .map(|c| {
                def.column_index(c).ok_or_else(|| {
                    RunError::Db(DbError::unknown("column", format!("{}.{}", q.table, c)))
                })
            })
            .collect::<RunResult<_>>()?;
        kept.sort_by(|a, b| {
            let ka: Vec<Value> = idxs.iter().map(|&i| a[i].clone()).collect();
            let kb: Vec<Value> = idxs.iter().map(|&i| b[i].clone()).collect();
            cmp_tuple(&ka, &kb)
        });
    }

    // Projection; empty column list = SELECT *.
    if q.columns.is_empty() {
        return Ok(kept);
    }
    let idxs: Vec<usize> = q
        .columns
        .iter()
        .map(|c| {
            def.column_index(c).ok_or_else(|| {
                RunError::Db(DbError::unknown("column", format!("{}.{}", q.table, c)))
            })
        })
        .collect::<RunResult<_>>()?;
    Ok(kept
        .into_iter()
        .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
        .collect())
}

/// Collect the `col = const` terms reachable through top-level `AND`s.
/// `OR`, `NOT` and `IN` subtrees are left to per-row evaluation: an
/// equality below them does not restrict the result set.
fn collect_eq_terms(p: Option<&SequelPred>, out: &mut Vec<(String, Value)>) {
    let Some(p) = p else { return };
    match p {
        SequelPred::Cmp {
            column,
            op: CmpOp::Eq,
            value,
        } => out.push((column.clone(), value.clone())),
        SequelPred::And(a, b) => {
            collect_eq_terms(Some(a), out);
            collect_eq_terms(Some(b), out);
        }
        _ => {}
    }
}

fn eval_pred(
    db: &RelationalDb,
    def: &dbpc_datamodel::relational::TableDef,
    p: &SequelPred,
    row: &[Value],
) -> RunResult<bool> {
    match p {
        SequelPred::Cmp { column, op, value } => {
            let idx = def.column_index(column).ok_or_else(|| {
                RunError::Db(DbError::unknown(
                    "column",
                    format!("{}.{}", def.name, column),
                ))
            })?;
            Ok(op.eval(&row[idx], value))
        }
        SequelPred::In { column, sub } => {
            let idx = def.column_index(column).ok_or_else(|| {
                RunError::Db(DbError::unknown(
                    "column",
                    format!("{}.{}", def.name, column),
                ))
            })?;
            let sub_rows = eval_select(db, sub)?;
            Ok(sub_rows
                .iter()
                .any(|r| !r.is_empty() && r[0].loose_eq(&row[idx])))
        }
        SequelPred::And(a, b) => Ok(eval_pred(db, def, a, row)? && eval_pred(db, def, b, row)?),
        SequelPred::Or(a, b) => Ok(eval_pred(db, def, a, row)? || eval_pred(db, def, b, row)?),
        SequelPred::Not(a) => Ok(!eval_pred(db, def, a, row)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::sequel::{parse_select, parse_sequel_program};

    /// The §4.1 relational personnel database: EMP, DEPT, EMP-DEPT.
    fn personnel() -> RelationalDb {
        let schema = RelationalSchema::new("PERSONNEL")
            .with_table(
                TableDef::new(
                    "EMP",
                    vec![
                        ColumnDef::new("E#", FieldType::Char(4)),
                        ColumnDef::new("ENAME", FieldType::Char(20)),
                        ColumnDef::new("AGE", FieldType::Int(2)),
                    ],
                )
                .with_key(vec!["E#"]),
            )
            .with_table(
                TableDef::new(
                    "DEPT",
                    vec![
                        ColumnDef::new("D#", FieldType::Char(4)),
                        ColumnDef::new("DNAME", FieldType::Char(12)),
                        ColumnDef::new("MGR", FieldType::Char(20)),
                    ],
                )
                .with_key(vec!["D#"]),
            )
            .with_table(
                TableDef::new(
                    "EMP-DEPT",
                    vec![
                        ColumnDef::new("E#", FieldType::Char(4)),
                        ColumnDef::new("D#", FieldType::Char(4)),
                        ColumnDef::new("YEAR-OF-SERVICE", FieldType::Int(2)),
                    ],
                )
                .with_key(vec!["E#", "D#"]),
            );
        let mut db = RelationalDb::new(schema).unwrap();
        for (e, n, a) in [
            ("E1", "SMITH", 40),
            ("E2", "JONES", 35),
            ("E3", "BAKER", 28),
            ("E4", "DAVIS", 50),
        ] {
            db.insert(
                "EMP",
                &[
                    ("E#", Value::str(e)),
                    ("ENAME", Value::str(n)),
                    ("AGE", Value::Int(a)),
                ],
            )
            .unwrap();
        }
        for (d, n, m) in [("D2", "SALES", "SMITH"), ("D3", "ENG", "GREY")] {
            db.insert(
                "DEPT",
                &[
                    ("D#", Value::str(d)),
                    ("DNAME", Value::str(n)),
                    ("MGR", Value::str(m)),
                ],
            )
            .unwrap();
        }
        for (e, d, y) in [
            ("E1", "D2", 3),
            ("E2", "D2", 5),
            ("E3", "D2", 3),
            ("E4", "D3", 11),
        ] {
            db.insert(
                "EMP-DEPT",
                &[
                    ("E#", Value::str(e)),
                    ("D#", Value::str(d)),
                    ("YEAR-OF-SERVICE", Value::Int(y)),
                ],
            )
            .unwrap();
        }
        db
    }

    /// The paper's listing (A), verbatim.
    const LISTING_A: &str = "\
SELECT ENAME
FROM EMP
WHERE E# IN
SELECT E#
FROM EMP-DEPT
WHERE D# = 'D2'
AND YEAR-OF-SERVICE = 3
";

    #[test]
    fn listing_a_returns_d2_three_year_employees() {
        let db = personnel();
        let q = parse_select(LISTING_A).unwrap();
        let rows = eval_select(&db, &q).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("SMITH")], vec![Value::str("BAKER")]]
        );
    }

    #[test]
    fn order_by_pins_result_order() {
        let db = personnel();
        // A bare nested subquery would greedily consume the ORDER BY, so the
        // parenthesized form is required here.
        let q = parse_select(
            "SELECT ENAME FROM EMP WHERE E# IN \
             (SELECT E# FROM EMP-DEPT WHERE D# = 'D2' AND YEAR-OF-SERVICE = 3) \
             ORDER BY ENAME",
        )
        .unwrap();
        let rows = eval_select(&db, &q).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::str("BAKER")], vec![Value::str("SMITH")]]
        );
    }

    #[test]
    fn select_star_projects_everything() {
        let db = personnel();
        let q = parse_select("SELECT * FROM DEPT").unwrap();
        let rows = eval_select(&db, &q).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn program_with_updates_runs_and_prints() {
        let mut db = personnel();
        let p = parse_sequel_program(
            "SEQUEL PROGRAM MAINT;
INSERT INTO EMP (E# = 'E9', ENAME = 'NEWMAN', AGE = 21);
UPDATE EMP SET (AGE = 22) WHERE E# = 'E9';
SELECT ENAME, AGE
FROM EMP
WHERE AGE < 30
ORDER BY ENAME;
DELETE FROM EMP WHERE E# = 'E9';
END PROGRAM;",
        )
        .unwrap();
        let t = run_sequel(&mut db, &p, Inputs::new()).unwrap();
        assert_eq!(t.terminal_lines(), vec!["BAKER 28", "NEWMAN 22"]);
        assert_eq!(db.row_count("EMP").unwrap(), 4);
    }

    #[test]
    fn duplicate_key_aborts_program() {
        let mut db = personnel();
        let p = parse_sequel_program(
            "SEQUEL PROGRAM DUP;
INSERT INTO EMP (E# = 'E1', ENAME = 'CLONE');
SELECT ENAME
FROM EMP
WHERE E# = 'E1';
END PROGRAM;",
        )
        .unwrap();
        let t = run_sequel(&mut db, &p, Inputs::new()).unwrap();
        assert!(t.aborted());
        assert!(t.terminal_lines().is_empty());
    }

    #[test]
    fn unknown_column_is_malfunction() {
        let db = personnel();
        let q = parse_select("SELECT NOPE FROM EMP").unwrap();
        assert!(matches!(
            eval_select(&db, &q),
            Err(RunError::Db(DbError::UnknownName { .. }))
        ));
    }

    #[test]
    fn nested_nesting_two_levels() {
        let db = personnel();
        // Employees in the department managed by SMITH.
        let q = parse_select(
            "SELECT ENAME
FROM EMP
WHERE E# IN
SELECT E#
FROM EMP-DEPT
WHERE D# IN
SELECT D#
FROM DEPT
WHERE MGR = 'SMITH'
",
        )
        .unwrap();
        let rows = eval_select(&db, &q).unwrap();
        assert_eq!(rows.len(), 3);
    }
}
