//! # dbpc-engine
//!
//! Execution engines for the four program dialects, plus the **I/O trace**
//! machinery that embodies the paper's operational definition of program
//! equivalence (§1.1):
//!
//! > "except with respect to the database, a restructured program must
//! > preserve the input/output behavior of the original program … the
//! > program must give the same requests and/or messages as before
//! > conversion \[and\] present the same series of reads and writes to
//! > non-database files."
//!
//! Every interpreter therefore produces a [`Trace`] of *observable* events —
//! terminal output and input, non-database file reads and writes, and
//! aborts — while database operations (including any auxiliary storage a
//! strategy such as the bridge's differential file might use) are explicitly
//! **not** traced. Two programs are "equivalent" exactly when their traces
//! are equal under the same scripted [`Inputs`].
//!
//! Interpreters:
//! * [`host_exec`] — host programs with Maryland `FIND` paths over a
//!   [`dbpc_storage::NetworkDb`];
//! * [`dbtg_exec`] — the DBTG currency machine (current of run-unit / record
//!   type / set type, status register, UWA);
//! * [`sequel_exec`] — SEQUEL over a [`dbpc_storage::RelationalDb`];
//! * [`dli_exec`] — DL/I position/parentage machine over a
//!   [`dbpc_storage::HierDb`].

pub mod dbtg_exec;
pub mod dli_exec;
pub mod error;
pub mod host_exec;
pub mod scan;
pub mod sequel_exec;
pub mod trace;

pub use error::{RunError, RunResult};
pub use host_exec::{HostInterpreter, RtVal, DEFAULT_VERIFY_FUEL};
pub use trace::{diff_traces, Inputs, Trace, TraceEvent};
