//! Runtime errors.
//!
//! A distinction matters here: **database rejections** (integrity
//! violations, duplicates) are *program-observable* 1979 behavior — they
//! become `Abort` trace events or status-register values, not Rust errors —
//! while [`RunError`] covers genuine malfunctions: unbound variables,
//! ill-typed programs, jumps to missing labels, or runaway loops. A
//! conversion that produces a program raising `RunError` is simply wrong.

use dbpc_storage::DbError;
use std::fmt;

/// A malfunction while interpreting a program.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Reference to an unbound host variable.
    UnboundVar(String),
    /// A variable held the wrong kind of value (collection vs scalar).
    Kind { var: String, expected: &'static str },
    /// Field access on something that is not a single record.
    NotARecord(String),
    /// Schema lookup failed (program references a name the schema lacks).
    Db(DbError),
    /// `GO TO` to an undefined label.
    NoSuchLabel(String),
    /// Statement budget exhausted (runaway loop guard).
    StepLimit,
    /// Arithmetic on non-numeric values.
    Arith(String),
    /// A `CALL DML` verb that is not a known DML operation at run time.
    BadDmlVerb(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnboundVar(v) => write!(f, "unbound variable '{v}'"),
            RunError::Kind { var, expected } => {
                write!(f, "variable '{var}' is not a {expected}")
            }
            RunError::NotARecord(v) => {
                write!(f, "variable '{v}' does not hold a single record")
            }
            RunError::Db(e) => write!(f, "database error: {e}"),
            RunError::NoSuchLabel(l) => write!(f, "no such label '{l}'"),
            RunError::StepLimit => write!(f, "statement budget exhausted"),
            RunError::Arith(m) => write!(f, "arithmetic error: {m}"),
            RunError::BadDmlVerb(v) => write!(f, "unknown DML verb '{v}'"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<DbError> for RunError {
    fn from(e: DbError) -> Self {
        RunError::Db(e)
    }
}

pub type RunResult<T> = Result<T, RunError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(RunError::UnboundVar("X".into()).to_string().contains("X"));
        assert!(RunError::StepLimit.to_string().contains("budget"));
        let e: RunError = DbError::NotFound("r".into()).into();
        assert!(matches!(e, RunError::Db(_)));
    }
}
