//! The DBTG currency machine.
//!
//! Implements the execution model the paper's §3.2 worries about: a program
//! navigates record-at-a-time, holding *currency indicators* — current of
//! run-unit, current of each record type, current of each set type (an
//! owner occurrence plus a position within its member list) — and branches
//! on the *status register* after every verb. The §2.1.2 remark that
//! emulation "may require the conversion software to evaluate each DML
//! operation against the source structure to determine status values (e.g.,
//! currency)" is about exactly this state.

use crate::error::{RunError, RunResult};
use crate::scan::{planner, AccessPath, PlanChoice, ProbeStats, Scan, Select, TableScan};
use crate::trace::{Inputs, Trace, TraceEvent};
use dbpc_datamodel::value::Value;
use dbpc_dml::dbtg::{DbtgProgram, DbtgStmt, DbtgUnit, StatusCond};
use dbpc_dml::expr::{BinOp, Expr};
use dbpc_storage::{DbError, NetworkDb, RecordId, StatusCode, SYSTEM_OWNER};
use std::collections::BTreeMap;

/// Currency for one set type: the owner occurrence and the current member
/// position (None = positioned at the owner / before the first member).
#[derive(Debug, Clone, Copy)]
struct SetCurrency {
    owner: RecordId,
    member: Option<RecordId>,
}

/// The DBTG run-unit state.
pub struct DbtgMachine<'d> {
    db: &'d mut NetworkDb,
    /// User work area: (record type, field) → value.
    uwa: BTreeMap<(String, String), Value>,
    current_of_type: BTreeMap<String, RecordId>,
    current_of_set: BTreeMap<String, SetCurrency>,
    current_run_unit: Option<RecordId>,
    status: StatusCode,
    inputs: Inputs,
    trace: Trace,
    steps: usize,
    step_limit: usize,
}

/// Run a DBTG program against a network database; returns the trace,
/// carrying the run's access-path counters.
///
/// The run is atomic: a typed error, fuel exhaustion, or a panic
/// (re-raised after cleanup) rolls the database back to its pre-run state.
pub fn run_dbtg(db: &mut NetworkDb, program: &DbtgProgram, inputs: Inputs) -> RunResult<Trace> {
    dbpc_obs::span("engine.dbtg", || {
        db.access_stats().reset();
        let sp = db.begin_savepoint();
        let db_ref = &mut *db;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            DbtgMachine::new(db_ref, inputs).run(program)
        }));
        match outcome {
            Ok(Ok(mut trace)) => {
                db.commit(sp);
                trace.access = db.access_stats().snapshot();
                trace.access.absorb_into_obs();
                Ok(trace)
            }
            Ok(Err(e)) => {
                db.access_stats().snapshot().absorb_into_obs();
                db.rollback_to(sp);
                Err(e)
            }
            Err(payload) => {
                db.access_stats().snapshot().absorb_into_obs();
                db.rollback_to(sp);
                std::panic::resume_unwind(payload)
            }
        }
    })
}

impl<'d> DbtgMachine<'d> {
    pub fn new(db: &'d mut NetworkDb, inputs: Inputs) -> Self {
        DbtgMachine {
            db,
            uwa: BTreeMap::new(),
            current_of_type: BTreeMap::new(),
            current_of_set: BTreeMap::new(),
            current_run_unit: None,
            status: StatusCode::Ok,
            inputs,
            trace: Trace::new(),
            steps: 0,
            step_limit: 1_000_000,
        }
    }

    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    pub fn run(mut self, program: &DbtgProgram) -> RunResult<Trace> {
        let mut pc = 0usize;
        while pc < program.units.len() {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(RunError::StepLimit);
            }
            let unit = &program.units[pc];
            match unit {
                DbtgUnit::Label(_) => {
                    pc += 1;
                }
                DbtgUnit::Stmt(s) => match s {
                    DbtgStmt::Stop => break,
                    DbtgStmt::Goto(label) => {
                        pc = program
                            .label_index(label)
                            .ok_or_else(|| RunError::NoSuchLabel(label.clone()))?;
                    }
                    DbtgStmt::IfStatus { cond, goto } => {
                        if status_matches(self.status, *cond) {
                            pc = program
                                .label_index(goto)
                                .ok_or_else(|| RunError::NoSuchLabel(goto.clone()))?;
                        } else {
                            pc += 1;
                        }
                    }
                    other => {
                        self.exec(other)?;
                        pc += 1;
                    }
                },
            }
        }
        Ok(self.trace)
    }

    /// The machine's status register after the last verb.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    fn exec(&mut self, s: &DbtgStmt) -> RunResult<()> {
        match s {
            DbtgStmt::Move {
                value,
                field,
                record,
            } => {
                let v = self.eval(value)?;
                self.uwa.insert((record.clone(), field.clone()), v);
                self.status = StatusCode::Ok;
            }
            DbtgStmt::FindAny { record, using } => {
                // CALC-key access: when every USING field has a UWA value,
                // the planner prices a calc-key index probe against a
                // type scan from the type's cardinality and the index's
                // distinct-key count. Probe candidates are exact matches
                // in creation order, so the first one is the record the
                // scan would have found; `matches_uwa` still vets each
                // candidate (virtual fields and type quirks fall back to
                // scan via the stats mirror returning `None`).
                let hit = self.find_any_hit(record, using)?;
                match hit {
                    Some(id) => self.establish_currency(id),
                    None => self.status = StatusCode::NotFound,
                }
            }
            DbtgStmt::FindFirst { record, set } => {
                let owner = match self.occurrence_owner(set)? {
                    Some(o) => o,
                    None => {
                        self.status = StatusCode::NoCurrency;
                        return Ok(());
                    }
                };
                let members = self.db.members_of(set, owner)?;
                match members.first().copied() {
                    Some(id) if self.record_type_of(id)? == *record => self.establish_currency(id),
                    Some(_) | None => self.status = StatusCode::EndOfSet,
                }
            }
            DbtgStmt::FindNext { record, set, using } => {
                let cur = match self.current_of_set.get(set).copied() {
                    Some(c) => c,
                    None => {
                        // No currency yet: try to derive the occurrence from
                        // the current owner (FIND ANY DEPT then FIND NEXT EMP
                        // WITHIN ED, as in the paper's listing).
                        match self.occurrence_owner(set)? {
                            Some(owner) => SetCurrency {
                                owner,
                                member: None,
                            },
                            None => {
                                self.status = StatusCode::NoCurrency;
                                return Ok(());
                            }
                        }
                    }
                };
                let members = self.db.members_of(set, cur.owner)?;
                let start = match cur.member {
                    None => 0,
                    Some(m) => match members.iter().position(|&x| x == m) {
                        Some(i) => i + 1,
                        None => 0,
                    },
                };
                // Single-path plan: set members are only reachable by
                // walking the occurrence, priced at the set's average
                // fan-out so est-vs-actual error is visible in metrics.
                let (occ, links) = self.db.set_fanout(set)?;
                let choice = PlanChoice {
                    path: AccessPath::FullScan,
                    est_cost: if occ > 0 { links.div_ceil(occ) } else { 0 },
                };
                let rest = members[start..].to_vec();
                let actual = rest.len() as u64;
                let mut pipe = Select::new(TableScan::new(rest.into_iter()), |&id| {
                    Ok(self.matches_uwa_allow_missing(id, record, using))
                });
                let hit = pipe.first()?;
                planner::finish("dbtg.find_next", choice, actual);
                match hit {
                    Some(id) => self.establish_currency(id),
                    None => self.status = StatusCode::EndOfSet,
                }
            }
            DbtgStmt::FindOwner { set } => {
                let cur = self.current_of_set.get(set).copied();
                let member = cur.and_then(|c| c.member).or_else(|| {
                    // Fall back to current of the member type.
                    let sd = self.db.schema().set(set)?;
                    self.current_of_type.get(&sd.member).copied()
                });
                let Some(member) = member else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                match self.db.owner_in(set, member)? {
                    Some(owner) if owner != SYSTEM_OWNER => self.establish_currency(owner),
                    _ => self.status = StatusCode::NotFound,
                }
            }
            DbtgStmt::Get { record } => {
                let Some(&id) = self.current_of_type.get(record) else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                let rt = self
                    .db
                    .schema()
                    .record(record)
                    .ok_or_else(|| RunError::Db(DbError::unknown("record", record)))?
                    .clone();
                for f in &rt.fields {
                    let v = self.db.field_value(id, &f.name)?;
                    self.uwa.insert((record.clone(), f.name.clone()), v);
                }
                self.status = StatusCode::Ok;
            }
            DbtgStmt::Print(exprs) => {
                let mut parts = Vec::with_capacity(exprs.len());
                for e in exprs {
                    parts.push(self.eval(e)?.to_string());
                }
                self.trace.push(TraceEvent::TerminalOut(parts.join(" ")));
            }
            DbtgStmt::Accept { field, record } => {
                let line = self.inputs.read_terminal();
                self.trace.push(TraceEvent::TerminalIn(line.clone()));
                let v = match line.trim().parse::<i64>() {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::Str(line),
                };
                self.uwa.insert((record.clone(), field.clone()), v);
                self.status = StatusCode::Ok;
            }
            DbtgStmt::Store { record } => {
                let rt = match self.db.schema().record(record) {
                    Some(r) => r.clone(),
                    None => return Err(RunError::Db(DbError::unknown("record", record))),
                };
                let mut values: Vec<(String, Value)> = Vec::new();
                for f in &rt.fields {
                    if f.is_virtual() {
                        continue;
                    }
                    if let Some(v) = self.uwa.get(&(record.clone(), f.name.clone())) {
                        values.push((f.name.clone(), v.clone()));
                    }
                }
                // Set selection by application: connect to the current
                // occurrence of each record-owned set of this member type.
                let mut connects: Vec<(String, RecordId)> = Vec::new();
                let member_sets: Vec<String> = self
                    .db
                    .schema()
                    .sets_with_member(record)
                    .iter()
                    .filter(|s| !s.is_system())
                    .map(|s| s.name.clone())
                    .collect();
                for set in member_sets {
                    if let Some(owner) = self.occurrence_owner(&set)? {
                        connects.push((set, owner));
                    }
                }
                let vref: Vec<(&str, Value)> = values
                    .iter()
                    .map(|(f, v)| (f.as_str(), v.clone()))
                    .collect();
                let cref: Vec<(&str, RecordId)> =
                    connects.iter().map(|(s, o)| (s.as_str(), *o)).collect();
                match self.db.store(record, &vref, &cref) {
                    Ok(id) => self.establish_currency(id),
                    Err(e) => self.status = e.status(),
                }
            }
            DbtgStmt::Modify { record } => {
                let Some(&id) = self.current_of_type.get(record) else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                let Some(rt) = self.db.schema().record(record).cloned() else {
                    self.status = DbError::unknown("record", record).status();
                    return Ok(());
                };
                let mut assigns: Vec<(String, Value)> = Vec::new();
                for f in &rt.fields {
                    if f.is_virtual() {
                        continue;
                    }
                    if let Some(v) = self.uwa.get(&(record.clone(), f.name.clone())) {
                        assigns.push((f.name.clone(), v.clone()));
                    }
                }
                let aref: Vec<(&str, Value)> = assigns
                    .iter()
                    .map(|(f, v)| (f.as_str(), v.clone()))
                    .collect();
                self.status = match self.db.modify(id, &aref) {
                    Ok(()) => StatusCode::Ok,
                    Err(e) => e.status(),
                };
            }
            DbtgStmt::Erase { record, all } => {
                let Some(&id) = self.current_of_type.get(record) else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                self.status = match self.db.erase(id, *all) {
                    Ok(_) => {
                        self.current_of_type.remove(record);
                        self.invalidate_currency(id);
                        StatusCode::Ok
                    }
                    Err(e) => e.status(),
                };
            }
            DbtgStmt::Connect { record, set } => {
                let Some(&member) = self.current_of_type.get(record) else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                let Some(owner) = self.occurrence_owner(set)? else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                self.status = match self.db.connect(set, owner, member) {
                    Ok(()) => StatusCode::Ok,
                    Err(e) => e.status(),
                };
            }
            DbtgStmt::Disconnect { record, set } => {
                let Some(&member) = self.current_of_type.get(record) else {
                    self.status = StatusCode::NoCurrency;
                    return Ok(());
                };
                self.status = match self.db.disconnect(set, member) {
                    Ok(()) => StatusCode::Ok,
                    Err(e) => e.status(),
                };
            }
            DbtgStmt::Stop | DbtgStmt::Goto(_) | DbtgStmt::IfStatus { .. } => {
                unreachable!("control flow handled by run()")
            }
        }
        Ok(())
    }

    /// The owner occurrence of `set`'s current occurrence: SYSTEM for
    /// system sets, the set currency's owner, or (fallback) the current of
    /// the owner record type.
    fn occurrence_owner(&self, set: &str) -> RunResult<Option<RecordId>> {
        let sd = self
            .db
            .schema()
            .set(set)
            .ok_or_else(|| RunError::Db(DbError::unknown("set", set)))?;
        match sd.owner.record_name() {
            None => Ok(Some(SYSTEM_OWNER)),
            Some(owner_type) => {
                if let Some(c) = self.current_of_set.get(set) {
                    return Ok(Some(c.owner));
                }
                Ok(self.current_of_type.get(owner_type).copied())
            }
        }
    }

    fn record_type_of(&self, id: RecordId) -> RunResult<String> {
        Ok(self.db.get(id)?.rtype.clone())
    }

    /// Make `id` current of run-unit, its record type, and every set it
    /// participates in (as member or owner) — full DBTG currency update.
    fn establish_currency(&mut self, id: RecordId) {
        self.status = StatusCode::Ok;
        self.current_run_unit = Some(id);
        let rtype = match self.db.get(id) {
            Ok(r) => r.rtype.clone(),
            Err(_) => return,
        };
        self.current_of_type.insert(rtype.clone(), id);
        let member_sets: Vec<String> = self
            .db
            .schema()
            .sets_with_member(&rtype)
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for set in member_sets {
            if let Ok(Some(owner)) = self.db.owner_in(&set, id) {
                self.current_of_set.insert(
                    set,
                    SetCurrency {
                        owner,
                        member: Some(id),
                    },
                );
            }
        }
        let owned_sets: Vec<String> = self
            .db
            .schema()
            .sets_owned_by(&rtype)
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for set in owned_sets {
            self.current_of_set.insert(
                set,
                SetCurrency {
                    owner: id,
                    member: None,
                },
            );
        }
    }

    /// Drop currency that referenced an erased record.
    fn invalidate_currency(&mut self, id: RecordId) {
        if self.current_run_unit == Some(id) {
            self.current_run_unit = None;
        }
        self.current_of_type.retain(|_, &mut v| v != id);
        self.current_of_set
            .retain(|_, c| c.owner != id && c.member != Some(id));
    }

    /// Resolve FIND ANY to a record id (or None = NOT FOUND) through the
    /// Scan layer: the planner prices calc-key probe vs type scan and the
    /// chosen candidate list streams through a [`Select`] applying the
    /// full `matches_uwa` vet, so plan choice never changes the outcome.
    fn find_any_hit(&self, record: &str, using: &[String]) -> RunResult<Option<RecordId>> {
        let probe = self.keyed_probe_stats(record, using)?;
        let choice = planner::choose(self.db.type_cardinality(record), probe);
        let ids = match choice.path {
            AccessPath::IndexProbe => self.keyed_candidates(record, using)?.unwrap_or_default(),
            AccessPath::FullScan => self.db.records_of_type(record),
        };
        let actual = ids.len() as u64;
        let mut pipe = Select::new(TableScan::new(ids.into_iter()), |&id| {
            Ok(self.matches_uwa(id, record, using))
        });
        let hit = pipe.first()?;
        planner::finish("dbtg.find_any", choice, actual);
        Ok(hit)
    }

    /// Non-counting mirror of [`Self::keyed_candidates`]' probe-ability
    /// test, yielding the calc-key index's distinct-key count for the
    /// planner. `Ok(None)` exactly when `keyed_candidates` would decline
    /// to probe, so `PlanMode::AlwaysProbe` reproduces the pre-planner
    /// heuristic verbatim.
    fn keyed_probe_stats(&self, record: &str, using: &[String]) -> RunResult<Option<ProbeStats>> {
        if using.is_empty() {
            return Ok(None);
        }
        for f in using {
            if !self.uwa.contains_key(&(record.to_string(), f.clone())) {
                return Ok(None);
            }
        }
        let fields: Vec<&str> = using.iter().map(String::as_str).collect();
        let distinct = self
            .db
            .keyed_distinct(record, &fields)
            .map_err(RunError::Db)?;
        Ok(distinct.map(|distinct_keys| ProbeStats {
            distinct_keys,
            unique: false,
        }))
    }

    /// Candidate ids for a keyed FIND ANY via the calc-key index.
    /// `Ok(None)` = not probeable (no USING fields, a USING field without
    /// a UWA value, or a non-indexable field list) — scan instead.
    fn keyed_candidates(&self, record: &str, using: &[String]) -> RunResult<Option<Vec<RecordId>>> {
        if using.is_empty() {
            return Ok(None);
        }
        let mut key = Vec::with_capacity(using.len());
        for f in using {
            match self.uwa.get(&(record.to_string(), f.clone())) {
                Some(v) => key.push(v.clone()),
                // An unset USING field makes `matches_uwa` uniformly
                // false; the scan path reproduces that NOT-FOUND.
                None => return Ok(None),
            }
        }
        let fields: Vec<&str> = using.iter().map(String::as_str).collect();
        self.db
            .find_keyed(record, &fields, &key)
            .map_err(RunError::Db)
    }

    fn matches_uwa(&self, id: RecordId, record: &str, using: &[String]) -> bool {
        using.iter().all(|f| {
            let uwa = self.uwa.get(&(record.to_string(), f.clone()));
            match (uwa, self.db.field_value(id, f)) {
                (Some(u), Ok(v)) => u.loose_eq(&v),
                _ => false,
            }
        })
    }

    /// Like `matches_uwa` but vacuously true with an empty using list.
    fn matches_uwa_allow_missing(&self, id: RecordId, record: &str, using: &[String]) -> bool {
        if using.is_empty() {
            return true;
        }
        self.matches_uwa(id, record, using)
    }

    fn eval(&self, e: &Expr) -> RunResult<Value> {
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Field { var, field } => self
                .uwa
                .get(&(var.clone(), field.clone()))
                .cloned()
                .ok_or_else(|| RunError::UnboundVar(format!("{var}.{field}"))),
            Expr::Name(n) => Err(RunError::UnboundVar(n.clone())),
            Expr::Count(v) => Err(RunError::UnboundVar(format!("COUNT({v})"))),
            Expr::Bin { op, left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                match (*op, l.as_int(), r.as_int()) {
                    (BinOp::Add, Some(a), Some(b)) => Ok(Value::Int(a + b)),
                    (BinOp::Sub, Some(a), Some(b)) => Ok(Value::Int(a - b)),
                    (BinOp::Mul, Some(a), Some(b)) => Ok(Value::Int(a * b)),
                    (BinOp::Div, Some(a), Some(b)) if b != 0 => Ok(Value::Int(a / b)),
                    _ => Err(RunError::Arith("bad operands in DBTG arithmetic".into())),
                }
            }
        }
    }
}

fn status_matches(status: StatusCode, cond: StatusCond) -> bool {
    matches!(
        (status, cond),
        (StatusCode::Ok, StatusCond::Ok)
            | (StatusCode::NotFound, StatusCond::NotFound)
            | (StatusCode::EndOfSet, StatusCond::EndSet)
            | (StatusCode::IntegrityViolation, StatusCond::Integrity)
            | (StatusCode::Duplicate, StatusCond::Duplicate)
            | (StatusCode::NoCurrency, StatusCond::NoCurrency)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, NetworkSchema, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::dbtg::parse_dbtg;

    /// The §4.1 schema: DEPT —ED→ EMP-DEPT-ish flattened as EMP directly
    /// under DEPT with YEAR-OF-SERVICE on the membership record.
    fn dept_schema() -> NetworkSchema {
        NetworkSchema::new("PERSONNEL")
            .with_record(RecordTypeDef::new(
                "DEPT",
                vec![
                    FieldDef::new("D#", FieldType::Char(4)),
                    FieldDef::new("DNAME", FieldType::Char(12)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("E#", FieldType::Char(4)),
                    FieldDef::new("ENAME", FieldType::Char(20)),
                    FieldDef::new("YEAR-OF-SERVICE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DEPT", "DEPT", vec!["D#"]))
            .with_set(SetDef::owned("ED", "DEPT", "EMP", vec!["E#"]))
    }

    fn dept_db() -> NetworkDb {
        let mut db = NetworkDb::new(dept_schema()).unwrap();
        let d2 = db
            .store(
                "DEPT",
                &[("D#", Value::str("D2")), ("DNAME", Value::str("SALES"))],
                &[],
            )
            .unwrap();
        let d3 = db
            .store(
                "DEPT",
                &[("D#", Value::str("D3")), ("DNAME", Value::str("ENG"))],
                &[],
            )
            .unwrap();
        for (e, name, yos, d) in [
            ("E1", "SMITH", 3, d2),
            ("E2", "JONES", 5, d2),
            ("E3", "BAKER", 3, d2),
            ("E4", "DAVIS", 3, d3),
        ] {
            db.store(
                "EMP",
                &[
                    ("E#", Value::str(e)),
                    ("ENAME", Value::str(name)),
                    ("YEAR-OF-SERVICE", Value::Int(yos)),
                ],
                &[("ED", d)],
            )
            .unwrap();
        }
        db
    }

    /// The paper's listing (B) completed: names of employees in D2 with
    /// three years of service.
    const LISTING_B: &str = "\
DBTG PROGRAM GETEMP.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO NOTFD.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
NOTFD.
  PRINT 'NO SUCH DEPARTMENT'.
FINISH.
  STOP.
END PROGRAM.
";

    #[test]
    fn listing_b_retrieves_matching_employees() {
        let mut db = dept_db();
        let p = parse_dbtg(LISTING_B).unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        // Members of ED under D2 in E# order: E1 SMITH (3), E3 BAKER (3).
        assert_eq!(t.terminal_lines(), vec!["SMITH", "BAKER"]);
    }

    #[test]
    fn not_found_branch_taken() {
        let mut db = dept_db();
        let p = parse_dbtg(&LISTING_B.replace("'D2'", "'D9'")).unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        assert_eq!(t.terminal_lines(), vec!["NO SUCH DEPARTMENT"]);
    }

    #[test]
    fn find_first_and_owner() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM F.
  MOVE 'D3' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  FIND FIRST EMP WITHIN ED.
  GET EMP.
  PRINT EMP.ENAME.
  FIND OWNER WITHIN ED.
  GET DEPT.
  PRINT DEPT.DNAME.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        assert_eq!(t.terminal_lines(), vec!["DAVIS", "ENG"]);
    }

    #[test]
    fn store_connects_to_current_owner() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM S.
  MOVE 'D3' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  MOVE 'E9' TO E# IN EMP.
  MOVE 'NEWMAN' TO ENAME IN EMP.
  MOVE 1 TO YEAR-OF-SERVICE IN EMP.
  STORE EMP.
LOOP.
  FIND NEXT EMP WITHIN ED.
  IF STATUS ENDSET GO TO DONE.
  GET EMP.
  PRINT EMP.E#.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        // After STORE the new record is current; FIND NEXT continues after
        // it (E9 sorts after E4, so the loop sees end-of-set at once)... but
        // currency was established at E9 which is last. So loop prints
        // nothing and exits. Verify the record exists instead.
        assert!(t.terminal_lines().is_empty());
        let emps = db.records_of_type("EMP");
        assert_eq!(emps.len(), 5);
    }

    #[test]
    fn scan_from_first_prints_all_members() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM SCAN.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  FIND FIRST EMP WITHIN ED.
  IF STATUS ENDSET GO TO DONE.
  GET EMP.
  PRINT EMP.ENAME.
LOOP.
  FIND NEXT EMP WITHIN ED.
  IF STATUS ENDSET GO TO DONE.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO LOOP.
DONE.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        assert_eq!(t.terminal_lines(), vec!["SMITH", "JONES", "BAKER"]);
    }

    #[test]
    fn modify_and_erase_with_status() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM M.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  FIND FIRST EMP WITHIN ED.
  GET EMP.
  MOVE 9 TO YEAR-OF-SERVICE IN EMP.
  MODIFY EMP.
  IF STATUS OK GO TO OKAY.
  PRINT 'MODIFY FAILED'.
OKAY.
  ERASE EMP.
  IF STATUS OK GO TO DONE.
  PRINT 'ERASE FAILED'.
DONE.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        assert!(t.terminal_lines().is_empty());
        assert_eq!(db.records_of_type("EMP").len(), 3);
    }

    #[test]
    fn accept_reads_terminal() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM A.
  ACCEPT D# IN DEPT FROM TERMINAL.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO MISS.
  GET DEPT.
  PRINT DEPT.DNAME.
  GO TO DONE.
MISS.
  PRINT 'NO'.
DONE.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new().with_terminal(&["D3"])).unwrap();
        assert_eq!(t.terminal_lines(), vec!["ENG"]);
    }

    #[test]
    fn missing_label_is_malfunction() {
        let mut db = dept_db();
        let p = parse_dbtg("DBTG PROGRAM X.\n  GO TO NOWHERE.\nEND PROGRAM.").unwrap();
        assert!(matches!(
            run_dbtg(&mut db, &p, Inputs::new()),
            Err(RunError::NoSuchLabel(_))
        ));
    }

    #[test]
    fn infinite_loop_guarded() {
        let mut db = dept_db();
        let p = parse_dbtg("DBTG PROGRAM L.\nX.\n  GO TO X.\nEND PROGRAM.").unwrap();
        let r = DbtgMachine::new(&mut db, Inputs::new())
            .with_step_limit(100)
            .run(&p);
        assert_eq!(r.unwrap_err(), RunError::StepLimit);
    }

    #[test]
    fn duplicate_store_sets_status_not_abort() {
        let mut db = dept_db();
        let p = parse_dbtg(
            "DBTG PROGRAM D.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  MOVE 'E1' TO E# IN EMP.
  MOVE 'CLONE' TO ENAME IN EMP.
  STORE EMP.
  IF STATUS DUPLICATE GO TO DUP.
  PRINT 'STORED'.
  GO TO DONE.
DUP.
  PRINT 'DUPLICATE KEY'.
DONE.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let t = run_dbtg(&mut db, &p, Inputs::new()).unwrap();
        assert_eq!(t.terminal_lines(), vec!["DUPLICATE KEY"]);
    }
}
