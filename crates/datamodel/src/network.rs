//! The owner-coupled-set (CODASYL network) data model.
//!
//! This follows the conversion-oriented DDL designed at the University of
//! Maryland (paper §4.2): owner-member-coupled sets with a single owner and
//! a single member record type, a declared ordering (`SET KEYS ARE (…)`),
//! no duplicate members within a set occurrence, plus the DBTG
//! `AUTOMATIC`/`MANUAL` insertion and `MANDATORY`/`OPTIONAL` retention
//! classes the paper's §3.1 uses to discuss existence constraints.
//!
//! Virtual fields (`DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME` in
//! Figure 4.3) materialize an owner's field in the member record; they are
//! the hinge of several conversion rules (a filter on a virtual field can be
//! re-homed onto the owner record's path step).

use crate::constraint::Constraint;
use crate::error::{ModelError, ModelResult};
use crate::types::FieldType;

/// `VIRTUAL VIA <set> USING <field>`: the field's value is sourced from the
/// named field of the owner of `<set>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualVia {
    /// Set through which the owner is reached (this record must be the
    /// set's member type).
    pub set: String,
    /// Field of the owner record supplying the value.
    pub source_field: String,
}

/// A field of a record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: FieldType,
    /// `Some` if this is a virtual (owner-sourced) field.
    pub virtual_via: Option<VirtualVia>,
}

impl FieldDef {
    /// An ordinary stored field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            virtual_via: None,
        }
    }

    /// A virtual field sourced from the owner of `set`.
    pub fn virtual_field(
        name: impl Into<String>,
        ty: FieldType,
        set: impl Into<String>,
        source_field: impl Into<String>,
    ) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            virtual_via: Some(VirtualVia {
                set: set.into(),
                source_field: source_field.into(),
            }),
        }
    }

    pub fn is_virtual(&self) -> bool {
        self.virtual_via.is_some()
    }
}

/// A record type: a named, ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordTypeDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
}

impl RecordTypeDef {
    pub fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        RecordTypeDef {
            name: name.into(),
            fields,
        }
    }

    /// Index of `field` within this record type.
    pub fn field_index(&self, field: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == field)
    }

    pub fn field(&self, field: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == field)
    }

    /// Names of all fields, in declaration order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Indices of the non-virtual (stored) fields.
    pub fn stored_field_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_virtual())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Owner of a set type: the SYSTEM pseudo-record or a declared record type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetOwner {
    /// A singular, system-owned set (entry point; e.g. `ALL-DIV`).
    System,
    /// Owned by occurrences of the named record type.
    Record(String),
}

impl SetOwner {
    pub fn record_name(&self) -> Option<&str> {
        match self {
            SetOwner::System => None,
            SetOwner::Record(r) => Some(r),
        }
    }
}

/// DBTG insertion class: is membership established automatically at STORE
/// time, or manually via an explicit CONNECT?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insertion {
    Automatic,
    Manual,
}

/// DBTG retention class: may a member exist outside the set (OPTIONAL) or
/// must it always have an owner (MANDATORY)?
///
/// §3.1: "if a 'course' instance and a 'semester' instance must exist in
/// order for a 'course offering' to be inserted, then 'course offering' can
/// be made an AUTOMATIC and MANDATORY member…".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    Mandatory,
    Optional,
}

/// A set type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetDef {
    pub name: String,
    pub owner: SetOwner,
    /// Member record type (single member type, per the Maryland DDL).
    pub member: String,
    /// Ordering keys: member record instances are kept sorted by these
    /// member fields within each set occurrence.
    pub keys: Vec<String>,
    pub insertion: Insertion,
    pub retention: Retention,
}

impl SetDef {
    /// A system-owned entry-point set, `AUTOMATIC`/`OPTIONAL` by default.
    pub fn system(name: impl Into<String>, member: impl Into<String>, keys: Vec<&str>) -> Self {
        SetDef {
            name: name.into(),
            owner: SetOwner::System,
            member: member.into(),
            keys: keys.into_iter().map(String::from).collect(),
            insertion: Insertion::Automatic,
            retention: Retention::Optional,
        }
    }

    /// A record-owned set, `AUTOMATIC`/`OPTIONAL` by default.
    pub fn owned(
        name: impl Into<String>,
        owner: impl Into<String>,
        member: impl Into<String>,
        keys: Vec<&str>,
    ) -> Self {
        SetDef {
            name: name.into(),
            owner: SetOwner::Record(owner.into()),
            member: member.into(),
            keys: keys.into_iter().map(String::from).collect(),
            insertion: Insertion::Automatic,
            retention: Retention::Optional,
        }
    }

    pub fn with_insertion(mut self, i: Insertion) -> Self {
        self.insertion = i;
        self
    }

    pub fn with_retention(mut self, r: Retention) -> Self {
        self.retention = r;
        self
    }

    pub fn is_system(&self) -> bool {
        matches!(self.owner, SetOwner::System)
    }
}

/// A complete network schema: record types, set types, and the declarative
/// integrity constraints of §3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSchema {
    pub name: String,
    pub records: Vec<RecordTypeDef>,
    pub sets: Vec<SetDef>,
    pub constraints: Vec<Constraint>,
}

impl NetworkSchema {
    pub fn new(name: impl Into<String>) -> Self {
        NetworkSchema {
            name: name.into(),
            records: Vec::new(),
            sets: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Builder: add a record type.
    pub fn with_record(mut self, r: RecordTypeDef) -> Self {
        self.records.push(r);
        self
    }

    /// Builder: add a set type.
    pub fn with_set(mut self, s: SetDef) -> Self {
        self.sets.push(s);
        self
    }

    /// Builder: add a constraint.
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    pub fn record(&self, name: &str) -> Option<&RecordTypeDef> {
        self.records.iter().find(|r| r.name == name)
    }

    pub fn record_mut(&mut self, name: &str) -> Option<&mut RecordTypeDef> {
        self.records.iter_mut().find(|r| r.name == name)
    }

    pub fn set(&self, name: &str) -> Option<&SetDef> {
        self.sets.iter().find(|s| s.name == name)
    }

    pub fn set_mut(&mut self, name: &str) -> Option<&mut SetDef> {
        self.sets.iter_mut().find(|s| s.name == name)
    }

    /// All sets whose owner is the given record type.
    pub fn sets_owned_by(&self, record: &str) -> Vec<&SetDef> {
        self.sets
            .iter()
            .filter(|s| s.owner.record_name() == Some(record))
            .collect()
    }

    /// All sets whose member is the given record type.
    pub fn sets_with_member(&self, record: &str) -> Vec<&SetDef> {
        self.sets.iter().filter(|s| s.member == record).collect()
    }

    /// The system-owned entry sets for a record type.
    pub fn system_sets_of(&self, record: &str) -> Vec<&SetDef> {
        self.sets
            .iter()
            .filter(|s| s.is_system() && s.member == record)
            .collect()
    }

    /// Full structural validation. Returns the schema's invariants the rest
    /// of the framework relies on:
    ///
    /// * names unique per namespace (records, sets) and fields unique per
    ///   record;
    /// * every set's owner/member record types exist, and owner ≠ member
    ///   (the Maryland DDL has single owner and member types; recursive
    ///   sets are out of scope, as in the paper);
    /// * set keys are fields of the member record;
    /// * virtual fields reference a set in which this record is the member,
    ///   and a stored field of that set's owner;
    /// * constraints reference existing records/fields/sets.
    pub fn validate(&self) -> ModelResult<()> {
        // Unique record names, unique field names per record.
        for (i, r) in self.records.iter().enumerate() {
            if self.records[..i].iter().any(|p| p.name == r.name) {
                return Err(ModelError::duplicate("record", &r.name));
            }
            for (j, f) in r.fields.iter().enumerate() {
                if r.fields[..j].iter().any(|p| p.name == f.name) {
                    return Err(ModelError::duplicate(
                        "field",
                        format!("{}.{}", r.name, f.name),
                    ));
                }
            }
        }
        // Unique set names; owner/member exist; keys are member fields.
        for (i, s) in self.sets.iter().enumerate() {
            if self.sets[..i].iter().any(|p| p.name == s.name) {
                return Err(ModelError::duplicate("set", &s.name));
            }
            let member = self
                .record(&s.member)
                .ok_or_else(|| ModelError::unknown("record", &s.member))?;
            if let SetOwner::Record(owner) = &s.owner {
                if self.record(owner).is_none() {
                    return Err(ModelError::unknown("record", owner));
                }
                if owner == &s.member {
                    return Err(ModelError::invalid(format!(
                        "set '{}' has identical owner and member '{}'",
                        s.name, owner
                    )));
                }
            }
            for k in &s.keys {
                if member.field(k).is_none() {
                    return Err(ModelError::invalid(format!(
                        "set '{}' key '{}' is not a field of member '{}'",
                        s.name, k, s.member
                    )));
                }
            }
        }
        // Virtual fields.
        for r in &self.records {
            for f in &r.fields {
                if let Some(v) = &f.virtual_via {
                    let set = self
                        .set(&v.set)
                        .ok_or_else(|| ModelError::unknown("set", &v.set))?;
                    if set.member != r.name {
                        return Err(ModelError::invalid(format!(
                            "virtual field {}.{} names set '{}' whose member is '{}'",
                            r.name, f.name, v.set, set.member
                        )));
                    }
                    let owner_name = set.owner.record_name().ok_or_else(|| {
                        ModelError::invalid(format!(
                            "virtual field {}.{} via system set '{}'",
                            r.name, f.name, v.set
                        ))
                    })?;
                    let owner = self
                        .record(owner_name)
                        .ok_or_else(|| ModelError::unknown("record", owner_name))?;
                    match owner.field(&v.source_field) {
                        None => {
                            return Err(ModelError::invalid(format!(
                                "virtual field {}.{} sources missing field {}.{}",
                                r.name, f.name, owner_name, v.source_field
                            )))
                        }
                        Some(src) if src.is_virtual() => {
                            return Err(ModelError::invalid(format!(
                                "virtual field {}.{} sources another virtual field",
                                r.name, f.name
                            )))
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        // Constraints.
        for c in &self.constraints {
            c.validate_against(self)?;
        }
        Ok(())
    }

    /// True if `from` reaches `to` through a chain of sets, owner → member
    /// (used to reason about hierarchical embeddings and cascades).
    pub fn reaches_via_sets(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from.to_string()];
        let mut seen = vec![from.to_string()];
        while let Some(cur) = stack.pop() {
            for s in self.sets_owned_by(&cur) {
                if s.member == to {
                    return true;
                }
                if !seen.contains(&s.member) {
                    seen.push(s.member.clone());
                    stack.push(s.member.clone());
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4.2/4.3 schema: DIV —DIV-EMP→ EMP, with EMP
    /// carrying a virtual DIV-NAME.
    pub fn company() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    #[test]
    fn company_schema_validates() {
        company().validate().unwrap();
    }

    #[test]
    fn duplicate_record_rejected() {
        let s = company().with_record(RecordTypeDef::new("DIV", vec![]));
        assert!(matches!(
            s.validate(),
            Err(ModelError::Duplicate { kind: "record", .. })
        ));
    }

    #[test]
    fn bad_set_key_rejected() {
        let mut s = company();
        s.set_mut("DIV-EMP").unwrap().keys = vec!["NO-SUCH".into()];
        assert!(s.validate().is_err());
    }

    #[test]
    fn owner_equals_member_rejected() {
        let s = company().with_set(SetDef::owned("SELF", "EMP", "EMP", vec![]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn virtual_field_must_match_set_member() {
        let mut s = company();
        // Point EMP's virtual field at ALL-DIV (whose member is DIV, not EMP).
        s.record_mut("EMP").unwrap().fields[3]
            .virtual_via
            .as_mut()
            .unwrap()
            .set = "ALL-DIV".into();
        assert!(s.validate().is_err());
    }

    #[test]
    fn set_lookups() {
        let s = company();
        assert!(s.set("DIV-EMP").is_some());
        assert_eq!(s.sets_owned_by("DIV").len(), 1);
        assert_eq!(s.sets_with_member("EMP").len(), 1);
        assert_eq!(s.system_sets_of("DIV").len(), 1);
        assert!(s.system_sets_of("EMP").is_empty());
    }

    #[test]
    fn reachability() {
        let s = company();
        assert!(s.reaches_via_sets("DIV", "EMP"));
        assert!(!s.reaches_via_sets("EMP", "DIV"));
        assert!(s.reaches_via_sets("EMP", "EMP"));
    }
}
