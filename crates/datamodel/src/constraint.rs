//! The integrity-constraint catalogue of §3.1.
//!
//! The paper's diagnosis: "The single most significant deficiency in the
//! existing models is their inability to model integrity constraints to the
//! degree needed." Constraints therefore end up "maintained by the programs
//! that access the database", and converting those programs safely requires
//! knowing about them. This module makes the §3.1 constraint kinds
//! first-class so they can be (a) enforced declaratively by the storage
//! engine, (b) detected procedurally by the program analyzer, and (c) moved
//! between the two forms by the converter.

use crate::error::{ModelError, ModelResult};
use crate::network::NetworkSchema;
use crate::value::Value;
use std::fmt;

/// A declarative integrity constraint over a network schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// §3.1: "a 'course-offering' instance cannot exist unless the 'course'
    /// and 'semester' instances it references do" — the member of `set` must
    /// always be connected to an owner. (Subsumes DBTG
    /// AUTOMATIC/MANDATORY, but kept explicit so it survives restructurings
    /// that remove the set.)
    Existence { set: String },

    /// Su's defined/characterizing entity dependency (§4.1): deleting an
    /// occurrence of the owner of `set` implies deleting its members
    /// ("Deletion of an employee implies deletion of dependents").
    Characterizing { set: String },

    /// §3.1: "numeric limits on relationship participation … a course may
    /// not be offered more than twice in a school year" — each owner of
    /// `set` may have at most `max` members (and at least `min`
    /// at steady state; `min` is checked on disconnect/delete).
    Cardinality {
        set: String,
        min: u32,
        max: Option<u32>,
    },

    /// `record.field` may not be null (§3.1's "CNO and S can not have null
    /// values").
    NotNull { record: String, field: String },

    /// No two occurrences of `record` agree on all of `fields` (tuple
    /// uniqueness, "the only constraint maintained explicitly in the
    /// relational model").
    Unique { record: String, fields: Vec<String> },

    /// `record.field` must lie in `[low, high]` (inclusive); either bound
    /// optional. A simple representative of the "arbitrarily complex"
    /// constraint family.
    Domain {
        record: String,
        field: String,
        low: Option<Value>,
        high: Option<Value>,
    },
}

impl Constraint {
    /// Which record types does enforcement of this constraint touch?
    pub fn touches_records<'a>(&'a self, schema: &'a NetworkSchema) -> Vec<&'a str> {
        match self {
            Constraint::Existence { set }
            | Constraint::Characterizing { set }
            | Constraint::Cardinality { set, .. } => {
                let mut v = Vec::new();
                if let Some(s) = schema.set(set) {
                    if let Some(o) = s.owner.record_name() {
                        v.push(o);
                    }
                    v.push(s.member.as_str());
                }
                v
            }
            Constraint::NotNull { record, .. }
            | Constraint::Unique { record, .. }
            | Constraint::Domain { record, .. } => vec![record.as_str()],
        }
    }

    /// The set this constraint is attached to, if any.
    pub fn set_name(&self) -> Option<&str> {
        match self {
            Constraint::Existence { set }
            | Constraint::Characterizing { set }
            | Constraint::Cardinality { set, .. } => Some(set),
            _ => None,
        }
    }

    /// Check that all names referenced by the constraint exist in `schema`.
    pub fn validate_against(&self, schema: &NetworkSchema) -> ModelResult<()> {
        match self {
            Constraint::Existence { set }
            | Constraint::Characterizing { set }
            | Constraint::Cardinality { set, .. } => {
                let s = schema
                    .set(set)
                    .ok_or_else(|| ModelError::unknown("set", set))?;
                if let (Constraint::Characterizing { .. } | Constraint::Existence { .. }, None) =
                    (self, s.owner.record_name())
                {
                    return Err(ModelError::invalid(format!(
                        "constraint on system set '{set}' is meaningless"
                    )));
                }
                if let Constraint::Cardinality {
                    min, max: Some(mx), ..
                } = self
                {
                    if mx < min {
                        return Err(ModelError::invalid(format!(
                            "cardinality on '{set}': max {mx} < min {min}"
                        )));
                    }
                }
                Ok(())
            }
            Constraint::NotNull { record, field } | Constraint::Domain { record, field, .. } => {
                let r = schema
                    .record(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                if r.field(field).is_none() {
                    return Err(ModelError::unknown("field", format!("{record}.{field}")));
                }
                Ok(())
            }
            Constraint::Unique { record, fields } => {
                let r = schema
                    .record(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                if fields.is_empty() {
                    return Err(ModelError::invalid(format!(
                        "unique constraint on '{record}' with no fields"
                    )));
                }
                for f in fields {
                    if r.field(f).is_none() {
                        return Err(ModelError::unknown("field", format!("{record}.{f}")));
                    }
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Existence { set } => write!(f, "EXISTENCE ON {set}"),
            Constraint::Characterizing { set } => write!(f, "CHARACTERIZING ON {set}"),
            Constraint::Cardinality { set, min, max } => match max {
                Some(mx) => write!(f, "CARDINALITY ON {set} BETWEEN {min} AND {mx}"),
                None => write!(f, "CARDINALITY ON {set} AT LEAST {min}"),
            },
            Constraint::NotNull { record, field } => {
                write!(f, "NOT NULL {record}.{field}")
            }
            Constraint::Unique { record, fields } => {
                write!(f, "UNIQUE {record} ({})", fields.join(", "))
            }
            Constraint::Domain {
                record,
                field,
                low,
                high,
            } => {
                write!(f, "DOMAIN {record}.{field}")?;
                if let Some(l) = low {
                    write!(f, " FROM {l}")?;
                }
                if let Some(h) = high {
                    write!(f, " TO {h}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{FieldDef, RecordTypeDef, SetDef};
    use crate::types::FieldType;

    fn school() -> NetworkSchema {
        // Fig 3.1b: COURSE and SEMESTER own COURSE-OFFERING through two sets.
        NetworkSchema::new("SCHOOL")
            .with_record(RecordTypeDef::new(
                "COURSE",
                vec![
                    FieldDef::new("CNO", FieldType::Char(6)),
                    FieldDef::new("CNAME", FieldType::Char(20)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "SEMESTER",
                vec![
                    FieldDef::new("S", FieldType::Char(4)),
                    FieldDef::new("YEAR", FieldType::Int(4)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "COURSE-OFFERING",
                vec![
                    FieldDef::new("CNO", FieldType::Char(6)),
                    FieldDef::new("S", FieldType::Char(4)),
                ],
            ))
            .with_set(SetDef::system("ALL-COURSE", "COURSE", vec!["CNO"]))
            .with_set(SetDef::system("ALL-SEMESTER", "SEMESTER", vec!["S"]))
            .with_set(SetDef::owned(
                "COURSES-OFFERING",
                "COURSE",
                "COURSE-OFFERING",
                vec!["S"],
            ))
            .with_set(SetDef::owned(
                "SEMESTERS-OFFERING",
                "SEMESTER",
                "COURSE-OFFERING",
                vec!["CNO"],
            ))
    }

    #[test]
    fn school_constraints_validate() {
        let s = school()
            .with_constraint(Constraint::Existence {
                set: "COURSES-OFFERING".into(),
            })
            .with_constraint(Constraint::Cardinality {
                set: "COURSES-OFFERING".into(),
                min: 0,
                max: Some(2),
            })
            .with_constraint(Constraint::NotNull {
                record: "COURSE-OFFERING".into(),
                field: "CNO".into(),
            })
            .with_constraint(Constraint::Unique {
                record: "COURSE".into(),
                fields: vec!["CNO".into()],
            });
        s.validate().unwrap();
    }

    #[test]
    fn unknown_set_rejected() {
        let s = school().with_constraint(Constraint::Existence {
            set: "NO-SET".into(),
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn cardinality_bounds_checked() {
        let s = school().with_constraint(Constraint::Cardinality {
            set: "COURSES-OFFERING".into(),
            min: 3,
            max: Some(2),
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn existence_on_system_set_rejected() {
        let s = school().with_constraint(Constraint::Existence {
            set: "ALL-COURSE".into(),
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn unique_requires_fields() {
        let s = school().with_constraint(Constraint::Unique {
            record: "COURSE".into(),
            fields: vec![],
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn touches_records_for_set_constraints() {
        let s = school();
        let c = Constraint::Characterizing {
            set: "COURSES-OFFERING".into(),
        };
        assert_eq!(c.touches_records(&s), vec!["COURSE", "COURSE-OFFERING"]);
    }

    #[test]
    fn display_round() {
        let c = Constraint::Cardinality {
            set: "S".into(),
            min: 0,
            max: Some(2),
        };
        assert_eq!(c.to_string(), "CARDINALITY ON S BETWEEN 0 AND 2");
    }
}
