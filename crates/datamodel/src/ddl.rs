//! Parser and pretty-printer for the Figure 4.3 schema language.
//!
//! The paper gives a complete example schema (Figure 4.3) in the Maryland
//! conversion-oriented DDL. We reconstruct its grammar:
//!
//! ```text
//! SCHEMA NAME IS COMPANY-NAME.
//! RECORD SECTION.
//!   RECORD NAME IS DIV.
//!   FIELDS ARE.
//!     DIV-NAME PIC X(20).
//!     DIV-LOC PIC X(10).
//!   END RECORD.
//!   RECORD NAME IS EMP.
//!   FIELDS ARE.
//!     EMP-NAME PIC X(25).
//!     AGE PIC 9(2).
//!     DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
//!   END RECORD.
//! END RECORD SECTION.
//! SET SECTION.
//!   SET NAME IS ALL-DIV.
//!   OWNER IS SYSTEM.
//!   MEMBER IS DIV.
//!   SET KEYS ARE (DIV-NAME).
//!   END SET.
//! END SET SECTION.
//! END SCHEMA.
//! ```
//!
//! Extensions beyond the figure, both motivated by the paper itself:
//!
//! * `INSERTION IS AUTOMATIC|MANUAL.` and `RETENTION IS MANDATORY|OPTIONAL.`
//!   clauses in a set declaration (§3.1 uses these DBTG classes);
//! * an optional `CONSTRAINT SECTION.` carrying the §3.1 constraint
//!   catalogue, since the paper argues constraints must be "centralized,
//!   explicitly, as part of the data model".

use crate::constraint::Constraint;
use crate::error::{ModelError, ModelResult};
use crate::network::{
    FieldDef, Insertion, NetworkSchema, RecordTypeDef, Retention, SetDef, SetOwner,
};
use crate::types::FieldType;
use crate::value::Value;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Dot,
    Comma,
    LParen,
    RParen,
    Eof,
}

struct Lexer {
    toks: Vec<(Tok, usize)>, // token, line
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> ModelResult<Lexer> {
        let mut toks = Vec::new();
        for (lineno, line) in src.lines().enumerate() {
            let line_no = lineno + 1;
            let bytes = line.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_whitespace() {
                    i += 1;
                } else if c == '*' && i == 0 {
                    // comment line
                    break;
                } else if c.is_ascii_alphabetic() {
                    let start = i;
                    while i < bytes.len() {
                        let ch = bytes[i] as char;
                        // identifiers may contain '-' and '#' (EMP-NAME, D#)
                        let ident_hyphen = ch == '-'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_alphanumeric();
                        if ch.is_ascii_alphanumeric() || ch == '#' || ident_hyphen {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    toks.push((Tok::Ident(line[start..i].to_string()), line_no));
                } else if c.is_ascii_digit() {
                    let start = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let n: i64 = line[start..i].parse().map_err(|_| ModelError::Syntax {
                        line: line_no,
                        message: "bad number".into(),
                    })?;
                    toks.push((Tok::Num(n), line_no));
                } else {
                    let t = match c {
                        '.' => Tok::Dot,
                        ',' => Tok::Comma,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        _ => {
                            return Err(ModelError::Syntax {
                                line: line_no,
                                message: format!("unexpected character '{c}'"),
                            })
                        }
                    };
                    toks.push((t, line_no));
                    i += 1;
                }
            }
        }
        let last_line = src.lines().count().max(1);
        toks.push((Tok::Eof, last_line));
        Ok(Lexer { toks, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ModelError {
        ModelError::Syntax {
            line: self.line(),
            message: msg.into(),
        }
    }

    /// Consume a keyword (case-insensitive identifier match).
    fn expect_kw(&mut self, kw: &str) -> ModelResult<()> {
        match self.peek() {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> ModelResult<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_num(&mut self) -> ModelResult<i64> {
        match self.next() {
            Tok::Num(n) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Tok) -> ModelResult<()> {
        let got = self.next();
        if got == t {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {got:?}")))
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a network schema from Figure 4.3 DDL text.
///
/// ```
/// use dbpc_datamodel::ddl::parse_network_schema;
/// let schema = parse_network_schema("\
/// SCHEMA NAME IS S.
/// RECORD SECTION.
///   RECORD NAME IS A.
///   FIELDS ARE.
///     K PIC X(4).
///   END RECORD.
/// END RECORD SECTION.
/// SET SECTION.
///   SET NAME IS ALL-A.
///   OWNER IS SYSTEM.
///   MEMBER IS A.
///   SET KEYS ARE (K).
///   END SET.
/// END SET SECTION.
/// END SCHEMA.
/// ").unwrap();
/// assert_eq!(schema.record("A").unwrap().field_names(), vec!["K"]);
/// ```
pub fn parse_network_schema(src: &str) -> ModelResult<NetworkSchema> {
    let mut lx = Lexer::new(src)?;
    lx.expect_kw("SCHEMA")?;
    lx.expect_kw("NAME")?;
    lx.expect_kw("IS")?;
    let name = lx.expect_ident()?;
    // Figure 4.3 shows both "SCHEMA NAME IS X" (no dot) and dotted forms;
    // accept an optional terminator.
    if lx.peek() == &Tok::Dot {
        lx.next();
    }
    let mut schema = NetworkSchema::new(name);

    lx.expect_kw("RECORD")?;
    lx.expect_kw("SECTION")?;
    terminator(&mut lx)?;
    while lx.at_kw("RECORD") {
        schema.records.push(parse_record(&mut lx)?);
    }
    lx.expect_kw("END")?;
    lx.expect_kw("RECORD")?;
    lx.expect_kw("SECTION")?;
    terminator(&mut lx)?;

    lx.expect_kw("SET")?;
    lx.expect_kw("SECTION")?;
    terminator(&mut lx)?;
    while lx.at_kw("SET") {
        schema.sets.push(parse_set(&mut lx)?);
    }
    lx.expect_kw("END")?;
    lx.expect_kw("SET")?;
    lx.expect_kw("SECTION")?;
    terminator(&mut lx)?;

    if lx.at_kw("CONSTRAINT") {
        lx.next();
        lx.expect_kw("SECTION")?;
        terminator(&mut lx)?;
        while !lx.at_kw("END") {
            schema.constraints.push(parse_constraint(&mut lx)?);
        }
        lx.expect_kw("END")?;
        lx.expect_kw("CONSTRAINT")?;
        lx.expect_kw("SECTION")?;
        terminator(&mut lx)?;
    }

    lx.expect_kw("END")?;
    lx.expect_kw("SCHEMA")?;
    terminator(&mut lx)?;
    schema.validate()?;
    Ok(schema)
}

/// Figure 4.3 uses `.` and `;` interchangeably as statement terminators
/// (the paper's own listing mixes them); we accept either.
fn terminator(lx: &mut Lexer) -> ModelResult<()> {
    match lx.peek() {
        Tok::Dot => {
            lx.next();
            Ok(())
        }
        _ => Err(lx.err("expected '.'")),
    }
}

fn parse_record(lx: &mut Lexer) -> ModelResult<RecordTypeDef> {
    lx.expect_kw("RECORD")?;
    lx.expect_kw("NAME")?;
    lx.expect_kw("IS")?;
    let name = lx.expect_ident()?;
    terminator(lx)?;
    lx.expect_kw("FIELDS")?;
    lx.expect_kw("ARE")?;
    terminator(lx)?;
    let mut fields = Vec::new();
    while !lx.at_kw("END") {
        fields.push(parse_field(lx)?);
    }
    lx.expect_kw("END")?;
    lx.expect_kw("RECORD")?;
    terminator(lx)?;
    Ok(RecordTypeDef { name, fields })
}

fn parse_field(lx: &mut Lexer) -> ModelResult<FieldDef> {
    let name = lx.expect_ident()?;
    if lx.at_kw("VIRTUAL") {
        lx.next();
        lx.expect_kw("VIA")?;
        let set = lx.expect_ident()?;
        lx.expect_kw("USING")?;
        let source_field = lx.expect_ident()?;
        terminator(lx)?;
        // Type of a virtual field is resolved from its source at validation
        // time in the engine; declare it permissively here. The printed form
        // matches Figure 4.3, which carries no PIC clause on virtual fields.
        return Ok(FieldDef::virtual_field(
            name,
            FieldType::Char(255),
            set,
            source_field,
        ));
    }
    let ty = parse_pic(lx)?;
    terminator(lx)?;
    Ok(FieldDef::new(name, ty))
}

fn parse_pic(lx: &mut Lexer) -> ModelResult<FieldType> {
    if lx.at_kw("COMP-2") {
        lx.next();
        return Ok(FieldType::Float);
    }
    lx.expect_kw("PIC")?;
    match lx.next() {
        Tok::Ident(s) if s.eq_ignore_ascii_case("X") => {
            lx.expect(Tok::LParen)?;
            let n = lx.expect_num()?;
            lx.expect(Tok::RParen)?;
            Ok(FieldType::Char(n as usize))
        }
        Tok::Num(9) => {
            lx.expect(Tok::LParen)?;
            let n = lx.expect_num()?;
            lx.expect(Tok::RParen)?;
            Ok(FieldType::Int(n as usize))
        }
        other => Err(lx.err(format!("expected X(n) or 9(n) after PIC, found {other:?}"))),
    }
}

fn parse_set(lx: &mut Lexer) -> ModelResult<SetDef> {
    lx.expect_kw("SET")?;
    lx.expect_kw("NAME")?;
    lx.expect_kw("IS")?;
    let name = lx.expect_ident()?;
    terminator(lx)?;
    lx.expect_kw("OWNER")?;
    lx.expect_kw("IS")?;
    let owner_name = lx.expect_ident()?;
    let owner = if owner_name.eq_ignore_ascii_case("SYSTEM") {
        SetOwner::System
    } else {
        SetOwner::Record(owner_name)
    };
    terminator(lx)?;
    lx.expect_kw("MEMBER")?;
    lx.expect_kw("IS")?;
    let member = lx.expect_ident()?;
    terminator(lx)?;
    let mut keys = Vec::new();
    let mut insertion = Insertion::Automatic;
    let mut retention = Retention::Optional;
    loop {
        if lx.at_kw("SET") {
            // SET KEYS ARE (...)
            lx.next();
            lx.expect_kw("KEYS")?;
            lx.expect_kw("ARE")?;
            lx.expect(Tok::LParen)?;
            loop {
                keys.push(lx.expect_ident()?);
                if lx.peek() == &Tok::Comma {
                    lx.next();
                } else {
                    break;
                }
            }
            lx.expect(Tok::RParen)?;
            terminator(lx)?;
        } else if lx.at_kw("INSERTION") {
            lx.next();
            lx.expect_kw("IS")?;
            let v = lx.expect_ident()?;
            insertion = match v.to_ascii_uppercase().as_str() {
                "AUTOMATIC" => Insertion::Automatic,
                "MANUAL" => Insertion::Manual,
                _ => return Err(lx.err(format!("bad insertion class '{v}'"))),
            };
            terminator(lx)?;
        } else if lx.at_kw("RETENTION") {
            lx.next();
            lx.expect_kw("IS")?;
            let v = lx.expect_ident()?;
            retention = match v.to_ascii_uppercase().as_str() {
                "MANDATORY" => Retention::Mandatory,
                "OPTIONAL" => Retention::Optional,
                _ => return Err(lx.err(format!("bad retention class '{v}'"))),
            };
            terminator(lx)?;
        } else {
            break;
        }
    }
    lx.expect_kw("END")?;
    lx.expect_kw("SET")?;
    terminator(lx)?;
    Ok(SetDef {
        name,
        owner,
        member,
        keys,
        insertion,
        retention,
    })
}

fn parse_constraint(lx: &mut Lexer) -> ModelResult<Constraint> {
    let kw = lx.expect_ident()?;
    let c = match kw.to_ascii_uppercase().as_str() {
        "EXISTENCE" => {
            lx.expect_kw("ON")?;
            Constraint::Existence {
                set: lx.expect_ident()?,
            }
        }
        "CHARACTERIZING" => {
            lx.expect_kw("ON")?;
            Constraint::Characterizing {
                set: lx.expect_ident()?,
            }
        }
        "CARDINALITY" => {
            lx.expect_kw("ON")?;
            let set = lx.expect_ident()?;
            if lx.at_kw("BETWEEN") {
                lx.next();
                let min = lx.expect_num()? as u32;
                lx.expect_kw("AND")?;
                let max = lx.expect_num()? as u32;
                Constraint::Cardinality {
                    set,
                    min,
                    max: Some(max),
                }
            } else {
                lx.expect_kw("AT")?;
                lx.expect_kw("LEAST")?;
                let min = lx.expect_num()? as u32;
                Constraint::Cardinality {
                    set,
                    min,
                    max: None,
                }
            }
        }
        "NOT" => {
            lx.expect_kw("NULL")?;
            let record = lx.expect_ident()?;
            lx.expect(Tok::Dot)?;
            let field = lx.expect_ident()?;
            Constraint::NotNull { record, field }
        }
        "UNIQUE" => {
            let record = lx.expect_ident()?;
            lx.expect(Tok::LParen)?;
            let mut fields = Vec::new();
            loop {
                fields.push(lx.expect_ident()?);
                if lx.peek() == &Tok::Comma {
                    lx.next();
                } else {
                    break;
                }
            }
            lx.expect(Tok::RParen)?;
            Constraint::Unique { record, fields }
        }
        "DOMAIN" => {
            let record = lx.expect_ident()?;
            lx.expect(Tok::Dot)?;
            let field = lx.expect_ident()?;
            let mut low = None;
            let mut high = None;
            if lx.at_kw("FROM") {
                lx.next();
                low = Some(Value::Int(lx.expect_num()?));
            }
            if lx.at_kw("TO") {
                lx.next();
                high = Some(Value::Int(lx.expect_num()?));
            }
            Constraint::Domain {
                record,
                field,
                low,
                high,
            }
        }
        other => return Err(lx.err(format!("unknown constraint kind '{other}'"))),
    };
    terminator(lx)?;
    Ok(c)
}

// ---------------------------------------------------------------------------
// Compact relational notation (Figure 3.1a)
// ---------------------------------------------------------------------------

/// Parse the paper's compact relational notation:
///
/// ```text
/// COURSE-OFFERING(CNO,S, .... )
/// COURSE(CNO,CNAME, .... )
/// SEMESTER(S,YEAR, .... )
/// ```
///
/// The notation carries no types or key declarations; by the figure's
/// convention the first column is taken as the key and every column is
/// `PIC X(20)`. Trailing `....` ellipses (the paper writes them) are
/// ignored.
pub fn parse_compact_relational(src: &str) -> ModelResult<crate::relational::RelationalSchema> {
    use crate::relational::{ColumnDef, RelationalSchema, TableDef};
    let mut schema = RelationalSchema::new("RELATIONAL");
    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        let open = line.find('(').ok_or(ModelError::Syntax {
            line: line_no,
            message: "expected '('".into(),
        })?;
        let close = line.rfind(')').ok_or(ModelError::Syntax {
            line: line_no,
            message: "expected ')'".into(),
        })?;
        let name = line[..open].trim();
        if name.is_empty() {
            return Err(ModelError::Syntax {
                line: line_no,
                message: "missing relation name".into(),
            });
        }
        let cols: Vec<&str> = line[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|c| !c.is_empty() && !c.chars().all(|ch| ch == '.'))
            .collect();
        if cols.is_empty() {
            return Err(ModelError::Syntax {
                line: line_no,
                message: format!("relation {name} has no columns"),
            });
        }
        let mut table = TableDef::new(
            name,
            cols.iter()
                .map(|c| ColumnDef::new(*c, FieldType::Char(20)))
                .collect(),
        );
        table.primary_key = vec![cols[0].to_string()];
        schema.tables.push(table);
    }
    schema.validate()?;
    Ok(schema)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

/// Pretty-print a network schema in the Figure 4.3 DDL.
///
/// `parse_network_schema(&print_network_schema(s))` round-trips for every
/// valid schema (property-tested in the workspace test suite).
pub fn print_network_schema(schema: &NetworkSchema) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "SCHEMA NAME IS {}.", schema.name);
    let _ = writeln!(o, "RECORD SECTION.");
    for r in &schema.records {
        let _ = writeln!(o, "  RECORD NAME IS {}.", r.name);
        let _ = writeln!(o, "  FIELDS ARE.");
        for f in &r.fields {
            match &f.virtual_via {
                Some(v) => {
                    let _ = writeln!(
                        o,
                        "    {} VIRTUAL VIA {} USING {}.",
                        f.name, v.set, v.source_field
                    );
                }
                None => {
                    let _ = writeln!(o, "    {} {}.", f.name, f.ty.pic_clause());
                }
            }
        }
        let _ = writeln!(o, "  END RECORD.");
    }
    let _ = writeln!(o, "END RECORD SECTION.");
    let _ = writeln!(o, "SET SECTION.");
    for s in &schema.sets {
        let _ = writeln!(o, "  SET NAME IS {}.", s.name);
        let owner = match &s.owner {
            SetOwner::System => "SYSTEM".to_string(),
            SetOwner::Record(r) => r.clone(),
        };
        let _ = writeln!(o, "  OWNER IS {owner}.");
        let _ = writeln!(o, "  MEMBER IS {}.", s.member);
        if !s.keys.is_empty() {
            let _ = writeln!(o, "  SET KEYS ARE ({}).", s.keys.join(", "));
        }
        if s.insertion != Insertion::Automatic {
            let _ = writeln!(o, "  INSERTION IS MANUAL.");
        }
        if s.retention != Retention::Optional {
            let _ = writeln!(o, "  RETENTION IS MANDATORY.");
        }
        let _ = writeln!(o, "  END SET.");
    }
    let _ = writeln!(o, "END SET SECTION.");
    if !schema.constraints.is_empty() {
        let _ = writeln!(o, "CONSTRAINT SECTION.");
        for c in &schema.constraints {
            let _ = writeln!(o, "  {c}.");
        }
        let _ = writeln!(o, "END CONSTRAINT SECTION.");
    }
    let _ = writeln!(o, "END SCHEMA.");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 4.3 listing, transcribed from the paper (with the AGE
    /// field's PIC X(2) kept verbatim even though 9(2) would be idiomatic).
    pub const FIG_4_3: &str = "\
SCHEMA NAME IS COMPANY-NAME.
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC X(2).
    DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
";

    #[test]
    fn parses_figure_4_3() {
        let s = parse_network_schema(FIG_4_3).unwrap();
        assert_eq!(s.name, "COMPANY-NAME");
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.sets.len(), 2);
        let emp = s.record("EMP").unwrap();
        assert_eq!(emp.fields.len(), 4);
        assert!(emp.field("DIV-NAME").unwrap().is_virtual());
        let de = s.set("DIV-EMP").unwrap();
        assert_eq!(de.keys, vec!["EMP-NAME".to_string()]);
    }

    #[test]
    fn round_trips_figure_4_3() {
        let s1 = parse_network_schema(FIG_4_3).unwrap();
        let printed = print_network_schema(&s1);
        let s2 = parse_network_schema(&printed).unwrap();
        // Virtual fields lose only their (undeclarable) PIC width; everything
        // else must survive exactly.
        assert_eq!(s1.name, s2.name);
        assert_eq!(s1.sets, s2.sets);
        assert_eq!(s1.records.len(), s2.records.len());
        for (a, b) in s1.records.iter().zip(&s2.records) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.field_names(), b.field_names());
        }
    }

    #[test]
    fn parses_insertion_retention_and_constraints() {
        let src = "\
SCHEMA NAME IS S.
RECORD SECTION.
  RECORD NAME IS A.
  FIELDS ARE.
    K PIC 9(4).
  END RECORD.
  RECORD NAME IS B.
  FIELDS ARE.
    N PIC X(8).
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS AB.
  OWNER IS A.
  MEMBER IS B.
  SET KEYS ARE (N).
  INSERTION IS MANUAL.
  RETENTION IS MANDATORY.
  END SET.
END SET SECTION.
CONSTRAINT SECTION.
  EXISTENCE ON AB.
  CARDINALITY ON AB BETWEEN 0 AND 2.
  NOT NULL A.K.
  UNIQUE A (K).
  DOMAIN A.K FROM 0 TO 9999.
END CONSTRAINT SECTION.
END SCHEMA.
";
        let s = parse_network_schema(src).unwrap();
        let ab = s.set("AB").unwrap();
        assert_eq!(ab.insertion, Insertion::Manual);
        assert_eq!(ab.retention, Retention::Mandatory);
        assert_eq!(s.constraints.len(), 5);
        // Round trip keeps everything.
        let s2 = parse_network_schema(&print_network_schema(&s)).unwrap();
        assert_eq!(s.sets, s2.sets);
        assert_eq!(s.constraints, s2.constraints);
    }

    #[test]
    fn syntax_error_reports_line() {
        let src = "SCHEMA NAME IS S.\nRECORD SECTION.\n  BOGUS.\n";
        match parse_network_schema(src) {
            Err(ModelError::Syntax { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn semantic_error_surfaces() {
        // Set member that doesn't exist.
        let src = "\
SCHEMA NAME IS S.
RECORD SECTION.
  RECORD NAME IS A.
  FIELDS ARE.
    K PIC 9(4).
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS AX.
  OWNER IS A.
  MEMBER IS MISSING.
  END SET.
END SET SECTION.
END SCHEMA.
";
        assert!(matches!(
            parse_network_schema(src),
            Err(ModelError::Unknown { .. })
        ));
    }

    #[test]
    fn compact_relational_parses_fig_31a() {
        // As printed in the paper, ellipses included.
        let src =
            "COURSE-OFFERING(CNO,S, .... )\nCOURSE(CNO,CNAME, .... )\nSEMESTER(S,YEAR, .... )\n";
        let s = parse_compact_relational(src).unwrap();
        assert_eq!(s.tables.len(), 3);
        let off = s.table("COURSE-OFFERING").unwrap();
        assert_eq!(off.column_names(), vec!["CNO", "S"]);
        assert_eq!(off.primary_key, vec!["CNO".to_string()]);
        // Round trip through the compact printer.
        let printed = s.to_compact_notation();
        let again = parse_compact_relational(&printed).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn compact_relational_rejects_garbage() {
        assert!(parse_compact_relational("NOPAREN").is_err());
        assert!(parse_compact_relational("X()").is_err());
        assert!(parse_compact_relational("(A,B)").is_err());
    }

    #[test]
    fn pic_9_parses_as_int() {
        let src = "\
SCHEMA NAME IS S.
RECORD SECTION.
  RECORD NAME IS A.
  FIELDS ARE.
    K PIC 9(4).
    F COMP-2.
  END RECORD.
END RECORD SECTION.
SET SECTION.
END SET SECTION.
END SCHEMA.
";
        let s = parse_network_schema(src).unwrap();
        let a = s.record("A").unwrap();
        assert_eq!(a.field("K").unwrap().ty, FieldType::Int(4));
        assert_eq!(a.field("F").unwrap().ty, FieldType::Float);
    }
}
