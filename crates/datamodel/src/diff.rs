//! Structural schema diff.
//!
//! The framework's **Conversion Analyzer** (Figure 4.1) "analyzes the source
//! and target databases in order to classify the types of changes that have
//! been made". When the restructuring is declared as an explicit transform
//! list this classification is redundant; but the paper also anticipates the
//! common case where the DBA simply presents two schemas. This module
//! computes a conservative classified change list from a schema pair, which
//! the converter cross-checks against the declared transforms.

use crate::network::{NetworkSchema, SetOwner};

/// One classified difference between a source and a target schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaChange {
    RecordAdded(String),
    RecordRemoved(String),
    FieldAdded { record: String, field: String },
    FieldRemoved { record: String, field: String },
    FieldTypeChanged { record: String, field: String },
    FieldVirtualityChanged { record: String, field: String },
    SetAdded(String),
    SetRemoved(String),
    SetOwnerChanged { set: String },
    SetMemberChanged { set: String },
    SetKeysChanged { set: String },
    SetInsertionChanged { set: String },
    SetRetentionChanged { set: String },
    ConstraintAdded(String),
    ConstraintRemoved(String),
}

impl SchemaChange {
    /// Changes that can silently alter the observable order of retrievals —
    /// the §3.2 "order dependence" hazard. The converter must compensate
    /// (insert SORT) or warn for programs whose output order is observable.
    pub fn affects_ordering(&self) -> bool {
        matches!(
            self,
            SchemaChange::SetKeysChanged { .. }
                | SchemaChange::SetAdded(_)
                | SchemaChange::SetRemoved(_)
        )
    }

    /// Changes that alter integrity semantics (the §3.1 concern).
    pub fn affects_integrity(&self) -> bool {
        matches!(
            self,
            SchemaChange::SetInsertionChanged { .. }
                | SchemaChange::SetRetentionChanged { .. }
                | SchemaChange::ConstraintAdded(_)
                | SchemaChange::ConstraintRemoved(_)
        )
    }

    /// Changes that may lose information (dropping fields or records): the
    /// paper's "conversion when not all information is preserved is a
    /// different and more difficult conversion problem".
    pub fn may_lose_information(&self) -> bool {
        matches!(
            self,
            SchemaChange::FieldRemoved { .. } | SchemaChange::RecordRemoved(_)
        )
    }
}

/// Compute the classified differences between two network schemas.
pub fn diff_network(source: &NetworkSchema, target: &NetworkSchema) -> Vec<SchemaChange> {
    let mut out = Vec::new();

    for r in &source.records {
        match target.record(&r.name) {
            None => out.push(SchemaChange::RecordRemoved(r.name.clone())),
            Some(t) => {
                for f in &r.fields {
                    match t.field(&f.name) {
                        None => out.push(SchemaChange::FieldRemoved {
                            record: r.name.clone(),
                            field: f.name.clone(),
                        }),
                        Some(tf) => {
                            if tf.ty != f.ty {
                                out.push(SchemaChange::FieldTypeChanged {
                                    record: r.name.clone(),
                                    field: f.name.clone(),
                                });
                            }
                            if tf.is_virtual() != f.is_virtual() {
                                out.push(SchemaChange::FieldVirtualityChanged {
                                    record: r.name.clone(),
                                    field: f.name.clone(),
                                });
                            }
                        }
                    }
                }
                for tf in &t.fields {
                    if r.field(&tf.name).is_none() {
                        out.push(SchemaChange::FieldAdded {
                            record: r.name.clone(),
                            field: tf.name.clone(),
                        });
                    }
                }
            }
        }
    }
    for t in &target.records {
        if source.record(&t.name).is_none() {
            out.push(SchemaChange::RecordAdded(t.name.clone()));
        }
    }

    for s in &source.sets {
        match target.set(&s.name) {
            None => out.push(SchemaChange::SetRemoved(s.name.clone())),
            Some(t) => {
                let owner_eq = match (&s.owner, &t.owner) {
                    (SetOwner::System, SetOwner::System) => true,
                    (SetOwner::Record(a), SetOwner::Record(b)) => a == b,
                    _ => false,
                };
                if !owner_eq {
                    out.push(SchemaChange::SetOwnerChanged {
                        set: s.name.clone(),
                    });
                }
                if s.member != t.member {
                    out.push(SchemaChange::SetMemberChanged {
                        set: s.name.clone(),
                    });
                }
                if s.keys != t.keys {
                    out.push(SchemaChange::SetKeysChanged {
                        set: s.name.clone(),
                    });
                }
                if s.insertion != t.insertion {
                    out.push(SchemaChange::SetInsertionChanged {
                        set: s.name.clone(),
                    });
                }
                if s.retention != t.retention {
                    out.push(SchemaChange::SetRetentionChanged {
                        set: s.name.clone(),
                    });
                }
            }
        }
    }
    for t in &target.sets {
        if source.set(&t.name).is_none() {
            out.push(SchemaChange::SetAdded(t.name.clone()));
        }
    }

    for c in &source.constraints {
        if !target.constraints.contains(c) {
            out.push(SchemaChange::ConstraintRemoved(c.to_string()));
        }
    }
    for c in &target.constraints {
        if !source.constraints.contains(c) {
            out.push(SchemaChange::ConstraintAdded(c.to_string()));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::network::{FieldDef, RecordTypeDef, SetDef};
    use crate::types::FieldType;

    fn base() -> NetworkSchema {
        NetworkSchema::new("S")
            .with_record(RecordTypeDef::new(
                "A",
                vec![FieldDef::new("K", FieldType::Int(4))],
            ))
            .with_record(RecordTypeDef::new(
                "B",
                vec![FieldDef::new("N", FieldType::Char(8))],
            ))
            .with_set(SetDef::owned("AB", "A", "B", vec!["N"]))
    }

    #[test]
    fn identical_schemas_diff_empty() {
        assert!(diff_network(&base(), &base()).is_empty());
    }

    #[test]
    fn detects_field_removal_and_addition() {
        let mut t = base();
        t.record_mut("A").unwrap().fields = vec![FieldDef::new("K2", FieldType::Int(4))];
        let d = diff_network(&base(), &t);
        assert!(d.contains(&SchemaChange::FieldRemoved {
            record: "A".into(),
            field: "K".into()
        }));
        assert!(d.contains(&SchemaChange::FieldAdded {
            record: "A".into(),
            field: "K2".into()
        }));
        assert!(d.iter().any(|c| c.may_lose_information()));
    }

    #[test]
    fn detects_key_change_as_ordering_hazard() {
        let mut t = base();
        t.set_mut("AB").unwrap().keys = vec![];
        let d = diff_network(&base(), &t);
        assert_eq!(d, vec![SchemaChange::SetKeysChanged { set: "AB".into() }]);
        assert!(d[0].affects_ordering());
    }

    #[test]
    fn detects_constraint_changes_as_integrity() {
        let t = base().with_constraint(Constraint::Existence { set: "AB".into() });
        let d = diff_network(&base(), &t);
        assert_eq!(d.len(), 1);
        assert!(d[0].affects_integrity());
    }

    #[test]
    fn detects_record_and_set_addition() {
        let t = base()
            .with_record(RecordTypeDef::new("C", vec![]))
            .with_set(SetDef::owned("AC", "A", "C", vec![]));
        let d = diff_network(&base(), &t);
        assert!(d.contains(&SchemaChange::RecordAdded("C".into())));
        assert!(d.contains(&SchemaChange::SetAdded("AC".into())));
    }

    #[test]
    fn detects_type_change() {
        let mut t = base();
        t.record_mut("A").unwrap().fields[0].ty = FieldType::Char(4);
        let d = diff_network(&base(), &t);
        assert_eq!(
            d,
            vec![SchemaChange::FieldTypeChanged {
                record: "A".into(),
                field: "K".into()
            }]
        );
    }
}
