//! Field types in the COBOL `PICTURE` tradition used by Figure 4.3.

use crate::value::Value;
use std::fmt;

/// Declared type of a field / column / segment field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// `PIC 9(n)` — integer. `n` is the declared digit count (display width).
    Int(usize),
    /// `PIC X(n)` — character data of capacity `n`.
    Char(usize),
    /// Floating point (`COMP-2` in period terms).
    Float,
}

impl FieldType {
    /// Does `v` conform to this type? Null conforms to every type; nullability
    /// is governed by constraints, not by the type (matching the paper's
    /// discussion of nulls as an integrity matter in §3.1).
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => true,
            (FieldType::Int(_), Value::Int(_)) => true,
            (FieldType::Float, Value::Float(_) | Value::Int(_)) => true,
            (FieldType::Char(n), Value::Str(s)) => s.len() <= *n,
            _ => false,
        }
    }

    /// The DDL `PIC` clause for this type.
    pub fn pic_clause(&self) -> String {
        match self {
            FieldType::Int(n) => format!("PIC 9({n})"),
            FieldType::Char(n) => format!("PIC X({n})"),
            FieldType::Float => "COMP-2".to_string(),
        }
    }

    /// A neutral default value of this type (used by `AddField` transforms
    /// when no explicit default is supplied).
    pub fn default_value(&self) -> Value {
        match self {
            FieldType::Int(_) => Value::Int(0),
            FieldType::Float => Value::Float(0.0),
            FieldType::Char(_) => Value::Str(String::new()),
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pic_clause())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_checks_kind_and_width() {
        assert!(FieldType::Char(5).admits(&Value::str("SALES")));
        assert!(!FieldType::Char(4).admits(&Value::str("SALES")));
        assert!(FieldType::Int(4).admits(&Value::Int(1234)));
        assert!(!FieldType::Int(4).admits(&Value::str("1234")));
        assert!(FieldType::Float.admits(&Value::Int(3)));
    }

    #[test]
    fn null_admitted_everywhere() {
        for t in [FieldType::Int(2), FieldType::Char(2), FieldType::Float] {
            assert!(t.admits(&Value::Null));
        }
    }

    #[test]
    fn pic_clauses() {
        assert_eq!(FieldType::Char(20).pic_clause(), "PIC X(20)");
        assert_eq!(FieldType::Int(2).pic_clause(), "PIC 9(2)");
        assert_eq!(FieldType::Float.pic_clause(), "COMP-2");
    }

    #[test]
    fn defaults_conform() {
        for t in [FieldType::Int(2), FieldType::Char(2), FieldType::Float] {
            assert!(t.admits(&t.default_value()));
        }
    }
}
