//! The relational model, in the compact notation of Figure 3.1a:
//!
//! ```text
//! COURSE-OFFERING(CNO, S, ....)
//! COURSE(CNO, CNAME, ....)
//! SEMESTER(S, YEAR, ....)
//! ```
//!
//! Tables with typed columns, declared primary keys (the paper notes tuple
//! uniqueness via key declarations is "the only constraint maintained
//! explicitly in the relational model"), and foreign keys — which 1979
//! relational systems did *not* enforce; our engine enforces them only when
//! a corresponding [`crate::constraint::Constraint`] is carried over, so the
//! §3.1 point about unenforced existence constraints is reproducible.

use crate::error::{ModelError, ModelResult};
use crate::types::FieldType;

/// A column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: FieldType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// A foreign-key declaration: `columns` of this table reference
/// `parent_columns` of `parent_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<String>,
    pub parent_table: String,
    pub parent_columns: Vec<String>,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Primary key column names (may be empty: a keyless 1979-style table).
    pub primary_key: Vec<String>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableDef {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    pub fn with_key(mut self, key: Vec<&str>) -> Self {
        self.primary_key = key.into_iter().map(String::from).collect();
        self
    }

    pub fn with_foreign_key(
        mut self,
        columns: Vec<&str>,
        parent_table: &str,
        parent_columns: Vec<&str>,
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: columns.into_iter().map(String::from).collect(),
            parent_table: parent_table.to_string(),
            parent_columns: parent_columns.into_iter().map(String::from).collect(),
        });
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A relational schema: a named list of tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationalSchema {
    pub name: String,
    pub tables: Vec<TableDef>,
}

impl RelationalSchema {
    pub fn new(name: impl Into<String>) -> Self {
        RelationalSchema {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    pub fn with_table(mut self, t: TableDef) -> Self {
        self.tables.push(t);
        self
    }

    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableDef> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Structural validation: unique table/column names, keys and foreign
    /// keys reference declared columns/tables with matching arity.
    pub fn validate(&self) -> ModelResult<()> {
        for (i, t) in self.tables.iter().enumerate() {
            if self.tables[..i].iter().any(|p| p.name == t.name) {
                return Err(ModelError::duplicate("table", &t.name));
            }
            for (j, c) in t.columns.iter().enumerate() {
                if t.columns[..j].iter().any(|p| p.name == c.name) {
                    return Err(ModelError::duplicate(
                        "column",
                        format!("{}.{}", t.name, c.name),
                    ));
                }
            }
            for k in &t.primary_key {
                if t.column(k).is_none() {
                    return Err(ModelError::unknown("column", format!("{}.{}", t.name, k)));
                }
            }
            for fk in &t.foreign_keys {
                let parent = self
                    .table(&fk.parent_table)
                    .ok_or_else(|| ModelError::unknown("table", &fk.parent_table))?;
                if fk.columns.len() != fk.parent_columns.len() || fk.columns.is_empty() {
                    return Err(ModelError::invalid(format!(
                        "foreign key on '{}' has mismatched arity",
                        t.name
                    )));
                }
                for c in &fk.columns {
                    if t.column(c).is_none() {
                        return Err(ModelError::unknown("column", format!("{}.{}", t.name, c)));
                    }
                }
                for c in &fk.parent_columns {
                    if parent.column(c).is_none() {
                        return Err(ModelError::unknown(
                            "column",
                            format!("{}.{}", parent.name, c),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render in the paper's Figure 3.1a notation, key columns first.
    pub fn to_compact_notation(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.name);
            out.push('(');
            out.push_str(
                &t.columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push_str(")\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3.1a relational school database.
    pub fn school() -> RelationalSchema {
        RelationalSchema::new("SCHOOL")
            .with_table(
                TableDef::new(
                    "COURSE",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("CNAME", FieldType::Char(20)),
                    ],
                )
                .with_key(vec!["CNO"]),
            )
            .with_table(
                TableDef::new(
                    "SEMESTER",
                    vec![
                        ColumnDef::new("S", FieldType::Char(4)),
                        ColumnDef::new("YEAR", FieldType::Int(4)),
                    ],
                )
                .with_key(vec!["S"]),
            )
            .with_table(
                TableDef::new(
                    "COURSE-OFFERING",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("S", FieldType::Char(4)),
                    ],
                )
                .with_key(vec!["CNO", "S"])
                .with_foreign_key(vec!["CNO"], "COURSE", vec!["CNO"])
                .with_foreign_key(vec!["S"], "SEMESTER", vec!["S"]),
            )
    }

    #[test]
    fn school_validates() {
        school().validate().unwrap();
    }

    #[test]
    fn compact_notation_matches_fig_31a() {
        let s = school();
        let txt = s.to_compact_notation();
        assert!(txt.contains("COURSE-OFFERING(CNO,S)"));
        assert!(txt.contains("COURSE(CNO,CNAME)"));
        assert!(txt.contains("SEMESTER(S,YEAR)"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let s = school().with_table(TableDef::new("COURSE", vec![]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn bad_primary_key_rejected() {
        let mut s = school();
        s.table_mut("COURSE").unwrap().primary_key = vec!["NOPE".into()];
        assert!(s.validate().is_err());
    }

    #[test]
    fn fk_arity_checked() {
        let mut s = school();
        s.table_mut("COURSE-OFFERING").unwrap().foreign_keys[0]
            .parent_columns
            .push("CNAME".into());
        assert!(s.validate().is_err());
    }

    #[test]
    fn fk_unknown_parent_rejected() {
        let s = RelationalSchema::new("X").with_table(
            TableDef::new("A", vec![ColumnDef::new("ID", FieldType::Int(4))]).with_foreign_key(
                vec!["ID"],
                "MISSING",
                vec!["ID"],
            ),
        );
        assert!(s.validate().is_err());
    }
}
