//! Field values.
//!
//! A [`Value`] is the unit of data stored in a record field, a tuple
//! attribute, or a segment field. The 1979 systems the paper targets were
//! COBOL-hosted, so the value space is deliberately small: fixed character
//! strings (`PIC X(n)`), integers (`PIC 9(n)`), floats (`COMP-2`-ish), and
//! the null marker whose semantics §3.1 discusses at length (the
//! "null instructor" device).
//!
//! Values carry a **total order** because set occurrences in the network
//! model are ordered by declared set keys and the Maryland DML has
//! `SORT … ON (…)`; an unstable or partial order would make converted-program
//! traces nondeterministic, violating the paper's operational equivalence
//! criterion.

use std::cmp::Ordering;
use std::fmt;

/// A single field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null marker. Sorts before every non-null value.
    Null,
    /// Signed integer (`PIC 9(n)` with implicit sign).
    Int(i64),
    /// Floating point. Compared via total order (`f64::total_cmp`).
    Float(f64),
    /// Character data (`PIC X(n)`).
    Str(String),
}

impl std::hash::Hash for Value {
    /// Manual because of `Float`: hashes the bit pattern, normalizing the
    /// two zero representations so `0.0` and `-0.0` (equal under the derived
    /// `PartialEq`) hash alike. NaN payloads hash distinctly, which is fine —
    /// `Hash` only has to be consistent with equality, and derived equality
    /// already compares NaNs bitwise-never-equal.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => {
                let normalized = if *f == 0.0 { 0.0f64 } else { *f };
                normalized.to_bits().hash(state);
            }
            Value::Str(s) => s.hash(state),
        }
    }
}

impl Value {
    /// String value from anything stringy.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Type name used in error messages and the DDL printer.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "CHAR",
        }
    }

    /// Numeric view: integers widen to floats. `None` for strings/null.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view. `None` unless `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view. `None` unless `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Comparison used by filters, set keys and SORT.
    ///
    /// Rules (documented so that converted programs and source programs
    /// observe the same collation):
    /// * `Null` sorts first and equals only `Null`;
    /// * numeric values compare numerically across `Int`/`Float`;
    /// * strings compare bytewise;
    /// * a number never equals a string; numbers sort before strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// Equality under [`Value::total_cmp`] (so `Int(1) == Float(1.0)` in
    /// filter predicates, matching the loose typing of 1979 DMLs).
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Lexicographic comparison of value tuples (used for multi-field set keys
/// and SORT keys).
pub fn cmp_tuple(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::str("")), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert_eq!(Value::Float(1.5).total_cmp(&Value::Int(2)), Ordering::Less);
    }

    #[test]
    fn numbers_before_strings() {
        assert_eq!(Value::Int(999).total_cmp(&Value::str("0")), Ordering::Less);
        assert!(!Value::Int(0).loose_eq(&Value::str("0")));
    }

    #[test]
    fn string_bytewise() {
        assert_eq!(
            Value::str("APPLE").total_cmp(&Value::str("BANANA")),
            Ordering::Less
        );
    }

    #[test]
    fn tuple_compare_is_lexicographic() {
        let a = vec![Value::str("SALES"), Value::Int(1)];
        let b = vec![Value::str("SALES"), Value::Int(2)];
        assert_eq!(cmp_tuple(&a, &b), Ordering::Less);
        let shorter = vec![Value::str("SALES")];
        assert_eq!(cmp_tuple(&shorter, &a), Ordering::Less);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::str("X").to_string(), "X");
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::str("a").as_f64(), None);
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
    }
}
