//! The hierarchical (IMS-like) data model.
//!
//! Needed for two parts of the paper: the general claim that the framework
//! spans "the relational, owner-coupled-set and hierarchical" models (§3.1),
//! and the Mehl & Wang experiment (ref 11) on converting DL/I programs when
//! "the hierarchical order of an IMS structure" changes.
//!
//! A hierarchical schema is a forest of segment types. Each segment type has
//! typed fields and an ordered list of child segment types; the **hierarchic
//! order** (preorder: parent, then children left-to-right) governs the
//! semantics of get-next (`GN`) calls, which is exactly what the reordering
//! transformation perturbs.

use crate::error::{ModelError, ModelResult};
use crate::network::FieldDef;

/// A segment type: name, fields, ordered children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    /// Optional sequence field: occurrences under one parent are kept
    /// ordered by this field (IMS "sequence field").
    pub seq_field: Option<String>,
    pub children: Vec<SegmentDef>,
}

impl SegmentDef {
    pub fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        SegmentDef {
            name: name.into(),
            fields,
            seq_field: None,
            children: Vec::new(),
        }
    }

    pub fn with_seq_field(mut self, f: impl Into<String>) -> Self {
        self.seq_field = Some(f.into());
        self
    }

    pub fn with_child(mut self, c: SegmentDef) -> Self {
        self.children.push(c);
        self
    }

    pub fn field_index(&self, field: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == field)
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.push(&self.name);
        for c in &self.children {
            c.collect_names(out);
        }
    }
}

/// A hierarchical schema: a named forest of segment-type trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierSchema {
    pub name: String,
    pub roots: Vec<SegmentDef>,
}

impl HierSchema {
    pub fn new(name: impl Into<String>) -> Self {
        HierSchema {
            name: name.into(),
            roots: Vec::new(),
        }
    }

    pub fn with_root(mut self, s: SegmentDef) -> Self {
        self.roots.push(s);
        self
    }

    /// All segment-type names in hierarchic (preorder) order — the order
    /// that defines `GN` traversal.
    pub fn hierarchic_order(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.collect_names(&mut out);
        }
        out
    }

    /// Find a segment type by name anywhere in the forest.
    pub fn segment(&self, name: &str) -> Option<&SegmentDef> {
        fn find<'a>(s: &'a SegmentDef, name: &str) -> Option<&'a SegmentDef> {
            if s.name == name {
                return Some(s);
            }
            s.children.iter().find_map(|c| find(c, name))
        }
        self.roots.iter().find_map(|r| find(r, name))
    }

    /// Find a segment type by name, mutably.
    pub fn segment_mut(&mut self, name: &str) -> Option<&mut SegmentDef> {
        fn find<'a>(s: &'a mut SegmentDef, name: &str) -> Option<&'a mut SegmentDef> {
            if s.name == name {
                return Some(s);
            }
            s.children.iter_mut().find_map(|c| find(c, name))
        }
        self.roots.iter_mut().find_map(|r| find(r, name))
    }

    /// Name of the parent segment type of `name`, if any.
    pub fn parent_of(&self, name: &str) -> Option<&str> {
        fn find<'a>(s: &'a SegmentDef, name: &str) -> Option<&'a str> {
            for c in &s.children {
                if c.name == name {
                    return Some(&s.name);
                }
                if let Some(p) = find(c, name) {
                    return Some(p);
                }
            }
            None
        }
        self.roots.iter().find_map(|r| find(r, name))
    }

    /// Validate: unique segment names, unique field names per segment,
    /// sequence fields exist.
    pub fn validate(&self) -> ModelResult<()> {
        let names = self.hierarchic_order();
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(ModelError::duplicate("segment", *n));
            }
        }
        fn check(s: &SegmentDef) -> ModelResult<()> {
            for (j, f) in s.fields.iter().enumerate() {
                if s.fields[..j].iter().any(|p| p.name == f.name) {
                    return Err(ModelError::duplicate(
                        "field",
                        format!("{}.{}", s.name, f.name),
                    ));
                }
            }
            if let Some(sf) = &s.seq_field {
                if s.field_index(sf).is_none() {
                    return Err(ModelError::unknown("field", format!("{}.{}", s.name, sf)));
                }
            }
            for c in &s.children {
                check(c)?;
            }
            Ok(())
        }
        for r in &self.roots {
            check(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldType;

    fn ims_company() -> HierSchema {
        HierSchema::new("COMPANY").with_root(
            SegmentDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            )
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new(
                    "EMP",
                    vec![
                        FieldDef::new("EMP-NAME", FieldType::Char(25)),
                        FieldDef::new("AGE", FieldType::Int(2)),
                    ],
                )
                .with_seq_field("EMP-NAME"),
            )
            .with_child(SegmentDef::new(
                "PROJ",
                vec![FieldDef::new("PROJ-NAME", FieldType::Char(10))],
            )),
        )
    }

    #[test]
    fn validates() {
        ims_company().validate().unwrap();
    }

    #[test]
    fn hierarchic_order_is_preorder() {
        assert_eq!(ims_company().hierarchic_order(), vec!["DIV", "EMP", "PROJ"]);
    }

    #[test]
    fn parent_lookup() {
        let s = ims_company();
        assert_eq!(s.parent_of("EMP"), Some("DIV"));
        assert_eq!(s.parent_of("DIV"), None);
    }

    #[test]
    fn segment_lookup() {
        let s = ims_company();
        assert!(s.segment("PROJ").is_some());
        assert!(s.segment("NOPE").is_none());
    }

    #[test]
    fn duplicate_segment_rejected() {
        let mut s = ims_company();
        let clone = s.roots[0].children[0].clone();
        s.roots[0].children.push(clone);
        assert!(s.validate().is_err());
    }

    #[test]
    fn bad_seq_field_rejected() {
        let mut s = ims_company();
        s.segment_mut("EMP").unwrap().seq_field = Some("NOPE".into());
        assert!(s.validate().is_err());
    }
}
