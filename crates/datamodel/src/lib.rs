//! # dbpc-datamodel
//!
//! Data-model substrate for the database program conversion framework of the
//! CODASYL Systems Committee's *Database Program Conversion: A Framework for
//! Research* (1979).
//!
//! The paper's framework rests on "a precise description of the data
//! structures, integrity constraints, and permissible operations". This crate
//! provides exactly that description layer for the three 1979-era data models
//! the paper discusses:
//!
//! * the **owner-coupled-set (network/CODASYL)** model — [`network`] — with
//!   `AUTOMATIC`/`MANUAL` insertion and `MANDATORY`/`OPTIONAL` retention
//!   classes, ordered set occurrences, and `VIRTUAL … VIA … USING` fields
//!   exactly as in the paper's Figure 4.3 schema;
//! * the **relational** model — [`relational`] — in the compact
//!   `COURSE(CNO,CNAME,…)` notation of Figure 3.1a;
//! * the **hierarchical (IMS-like)** model — [`hierarchical`] — trees of
//!   segment types, as needed for the Mehl & Wang order-transformation
//!   experiments.
//!
//! On top of the structural description sits the **integrity-constraint
//! catalogue** of the paper's §3.1 ([`constraint`]): existence constraints,
//! Su's defined/characterizing entity dependencies, numeric limits on
//! relationship participation, uniqueness, non-null and domain constraints.
//! The paper's central observation is that current models cannot express
//! these declaratively "to the degree needed", forcing them into program
//! logic; making them first-class here is what lets the converter move them
//! between declarative and procedural form.
//!
//! [`ddl`] provides a parser and pretty-printer for the Figure 4.3 schema
//! language (extended with a `CONSTRAINT SECTION`), and [`diff`] computes the
//! classified schema-change lists consumed by the Conversion Analyzer.

pub mod constraint;
pub mod ddl;
pub mod diff;
pub mod error;
pub mod hierarchical;
pub mod network;
pub mod relational;
pub mod types;
pub mod value;

pub use constraint::Constraint;
pub use error::{ModelError, ModelResult};
pub use hierarchical::{HierSchema, SegmentDef};
pub use network::{
    FieldDef, Insertion, NetworkSchema, RecordTypeDef, Retention, SetDef, SetOwner, VirtualVia,
};
pub use relational::{ColumnDef, ForeignKey, RelationalSchema, TableDef};
pub use types::FieldType;
pub use value::Value;
