//! Error type shared by schema construction, validation, and DDL parsing.

use std::fmt;

/// Errors raised while building or validating schemas and while parsing DDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A record/table/segment/set name was declared twice.
    Duplicate { kind: &'static str, name: String },
    /// A reference to an undeclared record/field/set/table/segment.
    Unknown { kind: &'static str, name: String },
    /// Structural rule violated (e.g. set member equal to owner, cyclic
    /// hierarchy, key field not in record).
    Invalid(String),
    /// DDL syntax error with a line number.
    Syntax { line: usize, message: String },
}

impl ModelError {
    pub fn unknown(kind: &'static str, name: impl Into<String>) -> Self {
        ModelError::Unknown {
            kind,
            name: name.into(),
        }
    }
    pub fn duplicate(kind: &'static str, name: impl Into<String>) -> Self {
        ModelError::Duplicate {
            kind,
            name: name.into(),
        }
    }
    pub fn invalid(msg: impl Into<String>) -> Self {
        ModelError::Invalid(msg.into())
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Duplicate { kind, name } => {
                write!(f, "duplicate {kind} '{name}'")
            }
            ModelError::Unknown { kind, name } => {
                write!(f, "unknown {kind} '{name}'")
            }
            ModelError::Invalid(m) => write!(f, "invalid schema: {m}"),
            ModelError::Syntax { line, message } => {
                write!(f, "DDL syntax error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenient result alias for this crate.
pub type ModelResult<T> = Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            ModelError::duplicate("record", "EMP").to_string(),
            "duplicate record 'EMP'"
        );
        assert_eq!(
            ModelError::unknown("set", "DIV-EMP").to_string(),
            "unknown set 'DIV-EMP'"
        );
        assert!(ModelError::Syntax {
            line: 3,
            message: "expected RECORD".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
