//! Error type shared by schema construction, validation, and DDL parsing.

use std::fmt;

/// Errors raised while building or validating schemas and while parsing DDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A record/table/segment/set name was declared twice.
    Duplicate { kind: &'static str, name: String },
    /// A reference to an undeclared record/field/set/table/segment.
    Unknown { kind: &'static str, name: String },
    /// Structural rule violated (e.g. set member equal to owner, cyclic
    /// hierarchy, key field not in record).
    Invalid(String),
    /// DDL syntax error with a line number.
    Syntax { line: usize, message: String },
}

impl ModelError {
    pub fn unknown(kind: &'static str, name: impl Into<String>) -> Self {
        ModelError::Unknown {
            kind,
            name: name.into(),
        }
    }
    pub fn duplicate(kind: &'static str, name: impl Into<String>) -> Self {
        ModelError::Duplicate {
            kind,
            name: name.into(),
        }
    }
    pub fn invalid(msg: impl Into<String>) -> Self {
        ModelError::Invalid(msg.into())
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Duplicate { kind, name } => {
                write!(f, "duplicate {kind} '{name}'")
            }
            ModelError::Unknown { kind, name } => {
                write!(f, "unknown {kind} '{name}'")
            }
            ModelError::Invalid(m) => write!(f, "invalid schema: {m}"),
            ModelError::Syntax { line, message } => {
                write!(f, "DDL syntax error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenient result alias for this crate.
pub type ModelResult<T> = Result<T, ModelError>;

/// The stages of the conversion pipeline, as supervised by the Figure 4.1
/// conversion program manager. Fault injection, fuel accounting, and the
/// strategy fallback ladder all speak in these terms, so the enum lives in
/// the base crate every pipeline layer already depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Program analysis (§3.2 hazard detection).
    Analyzer,
    /// Rule-based program rewriting (§4).
    Converter,
    /// Post-conversion cleanup (§5.4).
    Optimizer,
    /// Target program text emission.
    Generator,
    /// Data translation of the source database (§1, refs 3–7).
    Translation,
    /// Execution-equivalence checking (§1.1 / §5.2).
    Verification,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Analyzer,
        Stage::Converter,
        Stage::Optimizer,
        Stage::Generator,
        Stage::Translation,
        Stage::Verification,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Analyzer => "analyzer",
            Stage::Converter => "converter",
            Stage::Optimizer => "optimizer",
            Stage::Generator => "generator",
            Stage::Translation => "translation",
            Stage::Verification => "verification",
        }
    }

    /// The `dbpc-obs` span name for this stage boundary (`stage.<name>`).
    /// One canonical mapping, so trace consumers can match spans to the
    /// Figure 4.1 boxes without string assembly at every call site.
    pub fn span_name(&self) -> &'static str {
        match self {
            Stage::Analyzer => "stage.analyzer",
            Stage::Converter => "stage.converter",
            Stage::Optimizer => "stage.optimizer",
            Stage::Generator => "stage.generator",
            Stage::Translation => "stage.translation",
            Stage::Verification => "stage.verification",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The crate-spanning pipeline error: everything a supervision layer may
/// need to report about a failed conversion attempt, regardless of which
/// crate the failure originated in. Engine and storage errors are carried
/// as rendered text to keep the dependency graph acyclic — the datamodel
/// crate sits below both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A schema/mapping error (the conversion analyzer's domain).
    Model(ModelError),
    /// A pipeline stage failed with a typed runtime/storage error,
    /// rendered to text.
    Stage { stage: Stage, detail: String },
    /// A deterministic fault injected by a `FaultPlan` (robustness
    /// testing; never raised in production configurations).
    Injected { stage: Stage, detail: String },
    /// A panic caught at a supervision boundary; `detail` is the rendered
    /// panic payload.
    Panic { detail: String },
    /// An execution exceeded its interpreter fuel (statement budget) —
    /// the runaway-loop guard on supervised verification runs.
    FuelExhausted { stage: Stage },
    /// A concurrency-control wait expired: the conversion service's lock
    /// table resolves deadlocks by bounded waits (SimpleDB-style), and an
    /// expired wait surfaces here so the fallback ladder can retry or
    /// degrade the job instead of wedging it. `resource` is the rendered
    /// lock resource (engine or record type) that could not be acquired.
    LockTimeout { resource: String },
    /// The service refused or evicted the job under overload: admission
    /// control (reject-new or shed-oldest) decided the queue was full, or
    /// a bounded-time drain expired with the job still queued. Terminal —
    /// the client must resubmit; the job never ran.
    Overloaded { detail: String },
    /// The job's retry budget ran out of *time* rather than attempts: its
    /// deadline expired before the deterministic backoff schedule could
    /// retry again. `attempts` is how many attempts had completed when
    /// the deadline cut the schedule short.
    DeadlineExceeded { attempts: u32 },
    /// A per-context circuit breaker was open when the job was picked up:
    /// `trips` consecutive ladder failures on the same context tripped it,
    /// and the job fast-failed without burning worker time. Terminal for
    /// this submission; the breaker re-probes after its cooldown.
    CircuitOpen { trips: u32 },
}

impl PipelineError {
    /// A stage failure carrying a rendered error from another crate.
    pub fn stage(stage: Stage, detail: impl fmt::Display) -> Self {
        PipelineError::Stage {
            stage,
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Model(e) => write!(f, "{e}"),
            PipelineError::Stage { stage, detail } => {
                write!(f, "{stage} stage failed: {detail}")
            }
            PipelineError::Injected { stage, detail } => {
                write!(f, "injected fault at {stage} stage: {detail}")
            }
            PipelineError::Panic { detail } => write!(f, "panic: {detail}"),
            PipelineError::FuelExhausted { stage } => {
                write!(f, "{stage} stage exhausted its interpreter fuel")
            }
            PipelineError::LockTimeout { resource } => {
                write!(f, "lock request timed out on {resource}")
            }
            PipelineError::Overloaded { detail } => {
                write!(f, "service overloaded: {detail}")
            }
            PipelineError::DeadlineExceeded { attempts } => {
                write!(f, "job deadline expired after {attempts} attempt(s)")
            }
            PipelineError::CircuitOpen { trips } => {
                write!(f, "context circuit breaker open after {trips} trip(s)")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ModelError> for PipelineError {
    fn from(e: ModelError) -> Self {
        PipelineError::Model(e)
    }
}

/// Result alias for supervised pipeline operations.
pub type PipelineResult<T> = Result<T, PipelineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            ModelError::duplicate("record", "EMP").to_string(),
            "duplicate record 'EMP'"
        );
        assert_eq!(
            ModelError::unknown("set", "DIV-EMP").to_string(),
            "unknown set 'DIV-EMP'"
        );
        assert!(ModelError::Syntax {
            line: 3,
            message: "expected RECORD".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
