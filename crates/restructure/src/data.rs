//! The data translator: carry a stored database across a transformation.
//!
//! This is the crate's answer to the paper's middle step — "converting the
//! data to reflect the new schema" (§1) — the part the 1970s data-translation
//! projects (EXPRESS, the Michigan translator; refs 3–7) solved and which a
//! program conversion system presupposes.
//!
//! Translation is a *rebuild*: a fresh [`NetworkDb`] under the target schema
//! is populated through the ordinary typed/constrained mutation API, owner
//! types before member types, records in creation order. Rebuilding through
//! the front door means a translation can fail exactly where a 1979 reload
//! would have failed (duplicate keys, cardinality limits), rather than
//! producing a silently inconsistent database.
//!
//! The rebuild is the unit of work of the batch-conversion pipeline (one
//! translation per restructuring class, cloned per verified program), so
//! the per-record path is kept allocation-lean: schema-level resolution —
//! which old field feeds which target field, which target sets the type
//! belongs to — is planned **once per record type** and the per-record loop
//! only clones the values it stores. [`crate::stats`] counts the work so
//! tests can assert translating an N-record database does O(record types)
//! schema-level preparation, not O(N).

use crate::transform::Transform;
use dbpc_datamodel::network::{NetworkSchema, SetOwner};
use dbpc_datamodel::value::Value;
use dbpc_storage::keys::KeyTuple;
use dbpc_storage::{DbError, DbResult, NetworkDb, RecordId, SYSTEM_OWNER};
use std::collections::BTreeMap;

/// Translate `db` across `transform`, producing the restructured database.
pub fn translate(db: &NetworkDb, transform: &Transform) -> DbResult<NetworkDb> {
    let target_schema = transform
        .apply_schema(db.schema())
        .map_err(|e| DbError::constraint(e.to_string()))?;
    match transform {
        Transform::DeleteWhere {
            record,
            field,
            op,
            value,
        } => {
            // Schema unchanged: clone and erase matching occurrences
            // (cascading), the §5.2 information-losing subset.
            let mut out = db.clone();
            crate::stats::count_schema_clone();
            let doomed: Vec<RecordId> = out
                .records_of_type(record)
                .into_iter()
                .filter(|&id| {
                    out.field_value(id, field)
                        .map(|v| op.eval(&v, value))
                        .unwrap_or(false)
                })
                .collect();
            for id in doomed {
                // May already be gone through a cascade.
                match out.erase(id, true) {
                    Ok(_) | Err(DbError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(out)
        }
        Transform::PromoteFieldToOwner {
            record,
            field,
            via_set,
            new_record,
            upper_set,
            lower_set,
        } => translate_promote(
            db,
            target_schema,
            record,
            field,
            via_set,
            new_record,
            upper_set,
            lower_set,
        ),
        Transform::DemoteOwnerToField {
            mid_record,
            field,
            upper_set,
            lower_set,
            record,
            merged_set,
        } => translate_demote(
            db,
            target_schema,
            mid_record,
            field,
            upper_set,
            lower_set,
            record,
            merged_set,
        ),
        // Structure-preserving transforms share the generic rebuild with a
        // per-record mapping.
        other => translate_generic(db, target_schema, other),
    }
}

/// Record types ordered so that set owners precede their members.
fn topo_order(schema: &NetworkSchema) -> DbResult<Vec<String>> {
    let mut order: Vec<String> = Vec::new();
    let mut remaining: Vec<&str> = schema.records.iter().map(|r| r.name.as_str()).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|r| {
            let ready = schema.sets_with_member(r).iter().all(|s| match &s.owner {
                SetOwner::System => true,
                SetOwner::Record(o) => order.iter().any(|x| x == o),
            });
            if ready {
                order.push(r.to_string());
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            return Err(DbError::constraint(format!(
                "ownership cycle among record types: {}",
                remaining.join(", ")
            )));
        }
    }
    Ok(order)
}

/// How a structure-preserving transform maps names and values.
struct NameMap {
    record: BTreeMap<String, String>,
    set: BTreeMap<String, String>,
}

impl NameMap {
    fn identity() -> NameMap {
        NameMap {
            record: BTreeMap::new(),
            set: BTreeMap::new(),
        }
    }

    fn record<'a>(&'a self, name: &'a str) -> &'a str {
        self.record.get(name).map(String::as_str).unwrap_or(name)
    }

    fn set_rev<'a>(&'a self, target_name: &'a str) -> &'a str {
        for (old, new) in &self.set {
            if new == target_name {
                return old;
            }
        }
        target_name
    }
}

/// Where a stored target field's value comes from, resolved once per
/// record type.
enum FieldSrc<'a> {
    /// Index into the source record's stored values.
    Old(usize),
    /// The `AddField` default.
    Default(&'a Value),
}

fn translate_generic(
    db: &NetworkDb,
    target_schema: NetworkSchema,
    transform: &Transform,
) -> DbResult<NetworkDb> {
    let mut map = NameMap::identity();
    if let Transform::RenameRecord { old, new } = transform {
        map.record.insert(old.clone(), new.clone());
    }
    if let Transform::RenameSet { old, new } = transform {
        map.set.insert(old.clone(), new.clone());
    }

    let mut out = NetworkDb::new(target_schema.clone())?;
    crate::stats::count_schema_clone();
    let mut idmap: BTreeMap<RecordId, RecordId> = BTreeMap::new();
    let order = topo_order(db.schema())?;

    for old_type in &order {
        let new_type = map.record(old_type);
        let old_rt = db.schema().record(old_type).unwrap();
        let new_rt = target_schema
            .record(new_type)
            .ok_or_else(|| DbError::unknown("record", new_type))?;
        crate::stats::count_type_prep();
        // Field plan: which old field index (or transform default) supplies
        // each stored target field — per type, so the per-record loop below
        // only clones values.
        let mut field_plan: Vec<(&str, FieldSrc)> = Vec::with_capacity(new_rt.fields.len());
        for nf in &new_rt.fields {
            if nf.is_virtual() {
                continue;
            }
            match transform {
                Transform::RenameField { record, old, new }
                    if record == old_type && *new == nf.name =>
                {
                    if let Some(idx) = old_rt.field_index(old) {
                        if !old_rt.fields[idx].is_virtual() {
                            field_plan.push((nf.name.as_str(), FieldSrc::Old(idx)));
                        }
                    }
                }
                Transform::AddField {
                    record,
                    field,
                    default,
                    ..
                } if record == old_type && *field == nf.name => {
                    field_plan.push((nf.name.as_str(), FieldSrc::Default(default)));
                }
                _ => {
                    if let Some(idx) = old_rt.field_index(&nf.name) {
                        if !old_rt.fields[idx].is_virtual() {
                            field_plan.push((nf.name.as_str(), FieldSrc::Old(idx)));
                        }
                    }
                }
            }
        }
        // Set plan: record-owned target sets the type belongs to, paired
        // with the source set supplying the membership.
        let set_plan: Vec<(&str, &str)> = target_schema
            .sets_with_member(new_type)
            .into_iter()
            .filter(|ns| !ns.is_system())
            .map(|ns| (ns.name.as_str(), map.set_rev(&ns.name)))
            .collect();

        for old_id in db.records_of_type(old_type) {
            let old_rec = db.get(old_id)?;
            let values: Vec<(&str, Value)> = field_plan
                .iter()
                .map(|(name, src)| {
                    let v = match src {
                        FieldSrc::Old(idx) => old_rec.values[*idx].clone(),
                        FieldSrc::Default(d) => (*d).clone(),
                    };
                    (*name, v)
                })
                .collect();
            let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(set_plan.len());
            for (new_set, old_set) in &set_plan {
                if let Some(old_owner) = db.owner_in(old_set, old_id)? {
                    if old_owner != SYSTEM_OWNER {
                        let new_owner = idmap.get(&old_owner).ok_or_else(|| {
                            DbError::constraint(format!(
                                "owner #{} of set {old_set} not yet translated",
                                old_owner.0
                            ))
                        })?;
                        connects.push((*new_set, *new_owner));
                    }
                }
            }
            let new_id = out.store(new_type, &values, &connects)?;
            crate::stats::count_record_stored();
            idmap.insert(old_id, new_id);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn translate_promote(
    db: &NetworkDb,
    target_schema: NetworkSchema,
    record: &str,
    field: &str,
    via_set: &str,
    new_record: &str,
    upper_set: &str,
    lower_set: &str,
) -> DbResult<NetworkDb> {
    let mut out = NetworkDb::new(target_schema.clone())?;
    crate::stats::count_schema_clone();
    let mut idmap: BTreeMap<RecordId, RecordId> = BTreeMap::new();
    // Owner of the split set in the source schema.
    let via_owner_type = db
        .schema()
        .set(via_set)
        .and_then(|s| s.owner.record_name())
        .ok_or_else(|| DbError::unknown("set", via_set))?
        .to_string();

    // 1. Copy every record type except the member of the split set, in
    //    topological order (the new record type is synthesized in step 2).
    let order = topo_order(db.schema())?;
    for rtype in order.iter().filter(|r| *r != record) {
        let rt = db.schema().record(rtype).unwrap();
        crate::stats::count_type_prep();
        let stored_fields: Vec<(usize, &str)> = rt
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_virtual())
            .map(|(i, f)| (i, f.name.as_str()))
            .collect();
        let member_sets: Vec<&str> = db
            .schema()
            .sets_with_member(rtype)
            .into_iter()
            .filter(|s| !s.is_system() && s.name != via_set)
            .map(|s| s.name.as_str())
            .collect();
        for old_id in db.records_of_type(rtype) {
            let old_rec = db.get(old_id)?;
            let values: Vec<(&str, Value)> = stored_fields
                .iter()
                .map(|(i, name)| (*name, old_rec.values[*i].clone()))
                .collect();
            let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(member_sets.len());
            for s in &member_sets {
                if let Some(owner) = db.owner_in(s, old_id)? {
                    if owner != SYSTEM_OWNER {
                        connects.push((*s, idmap[&owner]));
                    }
                }
            }
            let new_id = out.store(rtype, &values, &connects)?;
            crate::stats::count_record_stored();
            idmap.insert(old_id, new_id);
        }
    }

    // 2. For each owner occurrence, create one new-record occurrence per
    //    distinct promoted-field value among its members.
    let mut group_map: BTreeMap<(RecordId, KeyTuple), RecordId> = BTreeMap::new();
    for owner in db.records_of_type(&via_owner_type) {
        for member in db.members_of(via_set, owner)? {
            let v = db.field_value(member, field)?;
            let key = (owner, KeyTuple(vec![v.clone()]));
            if let std::collections::btree_map::Entry::Vacant(slot) = group_map.entry(key) {
                let new_id = out.store(new_record, &[(field, v)], &[(upper_set, idmap[&owner])])?;
                crate::stats::count_record_stored();
                slot.insert(new_id);
            }
        }
    }

    // 3. Copy the member records, re-homed under their group records.
    let rt = db.schema().record(record).unwrap();
    crate::stats::count_type_prep();
    let promoted_idx = rt.field_index(field).unwrap();
    let stored_fields: Vec<(usize, &str)> = rt
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_virtual() && f.name != field)
        .map(|(i, f)| (i, f.name.as_str()))
        .collect();
    let other_sets: Vec<&str> = db
        .schema()
        .sets_with_member(record)
        .into_iter()
        .filter(|s| !s.is_system() && s.name != via_set)
        .map(|s| s.name.as_str())
        .collect();
    for old_id in db.records_of_type(record) {
        let old_rec = db.get(old_id)?;
        let values: Vec<(&str, Value)> = stored_fields
            .iter()
            .map(|(i, name)| (*name, old_rec.values[*i].clone()))
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(other_sets.len() + 1);
        match db.owner_in(via_set, old_id)? {
            Some(owner) => {
                let v = db.field_value(old_id, field)?;
                let group = group_map[&(owner, KeyTuple(vec![v]))];
                connects.push((lower_set, group));
            }
            None => {
                // Disconnected member: its promoted-field value has no group
                // to live in; non-null values would be silently lost.
                if !old_rec.values[promoted_idx].is_null() {
                    return Err(DbError::constraint(format!(
                        "cannot promote {record}.{field}: record #{} is not \
                         connected in {via_set} but carries a value",
                        old_id.0
                    )));
                }
            }
        }
        for s in &other_sets {
            if let Some(owner) = db.owner_in(s, old_id)? {
                if owner != SYSTEM_OWNER {
                    connects.push((*s, idmap[&owner]));
                }
            }
        }
        let new_id = out.store(record, &values, &connects)?;
        crate::stats::count_record_stored();
        idmap.insert(old_id, new_id);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn translate_demote(
    db: &NetworkDb,
    target_schema: NetworkSchema,
    mid_record: &str,
    field: &str,
    _upper_set: &str,
    lower_set: &str,
    record: &str,
    merged_set: &str,
) -> DbResult<NetworkDb> {
    let mut out = NetworkDb::new(target_schema.clone())?;
    crate::stats::count_schema_clone();
    let mut idmap: BTreeMap<RecordId, RecordId> = BTreeMap::new();
    let upper_set_name = db
        .schema()
        .sets_with_member(mid_record)
        .iter()
        .map(|s| s.name.clone())
        .next()
        .ok_or_else(|| DbError::unknown("set", "upper set"))?;

    let order = topo_order(db.schema())?;
    for rtype in order.iter().filter(|r| *r != mid_record && *r != record) {
        let rt = db.schema().record(rtype).unwrap();
        crate::stats::count_type_prep();
        let stored_fields: Vec<(usize, &str)> = rt
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_virtual())
            .map(|(i, f)| (i, f.name.as_str()))
            .collect();
        let member_sets: Vec<&str> = db
            .schema()
            .sets_with_member(rtype)
            .into_iter()
            .filter(|s| !s.is_system())
            .map(|s| s.name.as_str())
            .collect();
        for old_id in db.records_of_type(rtype) {
            let old_rec = db.get(old_id)?;
            let values: Vec<(&str, Value)> = stored_fields
                .iter()
                .map(|(i, name)| (*name, old_rec.values[*i].clone()))
                .collect();
            let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(member_sets.len());
            for s in &member_sets {
                if let Some(owner) = db.owner_in(s, old_id)? {
                    if owner != SYSTEM_OWNER {
                        connects.push((*s, idmap[&owner]));
                    }
                }
            }
            let new_id = out.store(rtype, &values, &connects)?;
            crate::stats::count_record_stored();
            idmap.insert(old_id, new_id);
        }
    }

    // Member records regain the demoted field; membership re-homes to the
    // grand-owner via the merged set.
    let rt = db.schema().record(record).unwrap();
    crate::stats::count_type_prep();
    let stored_fields: Vec<(usize, &str)> = rt
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_virtual())
        .map(|(i, f)| (i, f.name.as_str()))
        .collect();
    let other_sets: Vec<&str> = db
        .schema()
        .sets_with_member(record)
        .into_iter()
        .filter(|s| !s.is_system() && s.name != lower_set)
        .map(|s| s.name.as_str())
        .collect();
    for old_id in db.records_of_type(record) {
        let old_rec = db.get(old_id)?;
        let mut values: Vec<(&str, Value)> = stored_fields
            .iter()
            .map(|(i, name)| (*name, old_rec.values[*i].clone()))
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(other_sets.len() + 1);
        match db.owner_in(lower_set, old_id)? {
            Some(mid) => {
                values.push((field, db.field_value(mid, field)?));
                if let Some(grand) = db.owner_in(&upper_set_name, mid)? {
                    if grand != SYSTEM_OWNER {
                        connects.push((merged_set, idmap[&grand]));
                    }
                }
            }
            None => {
                values.push((field, Value::Null));
            }
        }
        for s in &other_sets {
            if let Some(owner) = db.owner_in(s, old_id)? {
                if owner != SYSTEM_OWNER {
                    connects.push((*s, idmap[&owner]));
                }
            }
        }
        let new_id = out.store(record, &values, &connects)?;
        crate::stats::count_record_stored();
        idmap.insert(old_id, new_id);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::Transform;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::expr::CmpOp;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        let aero = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("AEROSPACE")),
                    ("DIV-LOC", Value::str("SEATTLE")),
                ],
                &[],
            )
            .unwrap();
        for (name, dept, age, div) in [
            ("JONES", "SALES", 34, mach),
            ("ADAMS", "SALES", 28, mach),
            ("BAKER", "MFG", 45, mach),
            ("CLARK", "SALES", 52, aero),
        ] {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(name)),
                    ("DEPT-NAME", Value::str(dept)),
                    ("AGE", Value::Int(age)),
                ],
                &[("DIV-EMP", div)],
            )
            .unwrap();
        }
        db
    }

    fn fig_4_4() -> Transform {
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "DEPT-NAME".into(),
            via_set: "DIV-EMP".into(),
            new_record: "DEPT".into(),
            upper_set: "DIV-DEPT".into(),
            lower_set: "DEPT-EMP".into(),
        }
    }

    #[test]
    fn promote_groups_members_into_new_records() {
        let src = company_db();
        let out = translate(&src, &fig_4_4()).unwrap();
        // MACHINERY has SALES+MFG, AEROSPACE has SALES → 3 DEPTs.
        assert_eq!(out.records_of_type("DEPT").len(), 3);
        assert_eq!(out.records_of_type("EMP").len(), 4);
        // Machinery's SALES dept holds ADAMS and JONES in name order.
        let machinery = out
            .records_of_type("DIV")
            .into_iter()
            .find(|&d| out.field_value(d, "DIV-NAME").unwrap() == Value::str("MACHINERY"))
            .unwrap();
        let depts = out.members_of("DIV-DEPT", machinery).unwrap();
        assert_eq!(depts.len(), 2);
        // DIV-DEPT is keyed on DEPT-NAME: MFG before SALES.
        assert_eq!(
            out.field_value(depts[0], "DEPT-NAME").unwrap(),
            Value::str("MFG")
        );
        let sales = depts[1];
        let emps = out.members_of("DEPT-EMP", sales).unwrap();
        let names: Vec<Value> = emps
            .iter()
            .map(|&e| out.field_value(e, "EMP-NAME").unwrap())
            .collect();
        assert_eq!(names, vec![Value::str("ADAMS"), Value::str("JONES")]);
        // DEPT's migrated virtual field resolves through DIV-DEPT.
        assert_eq!(
            out.field_value(sales, "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
    }

    #[test]
    fn promote_then_demote_round_trips_data() {
        let src = company_db();
        let mid = translate(&src, &fig_4_4()).unwrap();
        let back = translate(&mid, &fig_4_4().inverse().unwrap()).unwrap();
        assert_eq!(back.records_of_type("EMP").len(), 4);
        // Every employee's (name, dept, age, division) quadruple survives.
        let quad = |db: &NetworkDb| -> Vec<(Value, Value, Value, Value)> {
            let mut v: Vec<_> = db
                .records_of_type("EMP")
                .into_iter()
                .map(|e| {
                    (
                        db.field_value(e, "EMP-NAME").unwrap(),
                        db.field_value(e, "DEPT-NAME").unwrap(),
                        db.field_value(e, "AGE").unwrap(),
                        db.field_value(e, "DIV-NAME").unwrap(),
                    )
                })
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            v
        };
        assert_eq!(quad(&src), quad(&back));
    }

    #[test]
    fn rename_record_rebuilds_identically() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::RenameRecord {
                old: "DIV".into(),
                new: "DIVISION".into(),
            },
        )
        .unwrap();
        assert_eq!(out.records_of_type("DIVISION").len(), 2);
        let emps = out.records_of_type("EMP");
        assert_eq!(emps.len(), 4);
        // Virtual field still resolves.
        assert_eq!(
            out.field_value(emps[0], "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
    }

    #[test]
    fn add_field_fills_default() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::AddField {
                record: "EMP".into(),
                field: "SALARY".into(),
                ty: FieldType::Int(6),
                default: Value::Int(100),
            },
        )
        .unwrap();
        for e in out.records_of_type("EMP") {
            assert_eq!(out.field_value(e, "SALARY").unwrap(), Value::Int(100));
        }
    }

    #[test]
    fn drop_field_removes_values() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::DropField {
                record: "EMP".into(),
                field: "AGE".into(),
            },
        )
        .unwrap();
        assert!(out
            .field_value(out.records_of_type("EMP")[0], "AGE")
            .is_err());
    }

    #[test]
    fn change_set_keys_reorders_occurrences() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::ChangeSetKeys {
                set: "DIV-EMP".into(),
                keys: vec!["AGE".into()],
            },
        )
        .unwrap();
        let machinery = out
            .records_of_type("DIV")
            .into_iter()
            .find(|&d| out.field_value(d, "DIV-NAME").unwrap() == Value::str("MACHINERY"))
            .unwrap();
        let ages: Vec<Value> = out
            .members_of("DIV-EMP", machinery)
            .unwrap()
            .iter()
            .map(|&e| out.field_value(e, "AGE").unwrap())
            .collect();
        assert_eq!(ages, vec![Value::Int(28), Value::Int(34), Value::Int(45)]);
    }

    #[test]
    fn delete_where_erases_matching_and_preserves_rest() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::DeleteWhere {
                record: "EMP".into(),
                field: "AGE".into(),
                op: CmpOp::Gt,
                value: Value::Int(40),
            },
        )
        .unwrap();
        assert_eq!(out.records_of_type("EMP").len(), 2);
        // Deleting divisions cascades their employees.
        let out2 = translate(
            &src,
            &Transform::DeleteWhere {
                record: "DIV".into(),
                field: "DIV-NAME".into(),
                op: CmpOp::Eq,
                value: Value::str("MACHINERY"),
            },
        )
        .unwrap();
        assert_eq!(out2.records_of_type("DIV").len(), 1);
        assert_eq!(out2.records_of_type("EMP").len(), 1);
    }

    #[test]
    fn topo_order_owners_first() {
        let order = topo_order(&company_schema()).unwrap();
        let div = order.iter().position(|r| r == "DIV").unwrap();
        let emp = order.iter().position(|r| r == "EMP").unwrap();
        assert!(div < emp);
    }

    fn sized_company_db(emps: usize) -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        for i in 0..emps {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(format!("EMP-{i:05}"))),
                    ("DEPT-NAME", Value::str("SALES")),
                    ("AGE", Value::Int(20 + (i as i64 % 40))),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        }
        db
    }

    /// Clone audit: translating an N-record database does O(record types)
    /// schema-level work — one target-schema clone and one translation plan
    /// per record type — regardless of N. Only the per-record store count
    /// scales with database size.
    #[test]
    fn translation_schema_work_is_o_record_types_not_o_n() {
        let rename = Transform::RenameRecord {
            old: "DIV".into(),
            new: "DIVISION".into(),
        };
        let mut per_n = Vec::new();
        for n in [8usize, 64] {
            let src = sized_company_db(n);
            let before = crate::stats::snapshot();
            translate(&src, &rename).unwrap();
            let work = crate::stats::snapshot().since(&before);
            // One clone to seed the rebuilt target database; one plan per
            // record type (DIV + EMP); one store per record (1 DIV + N EMPs).
            assert_eq!(work.schema_clones, 1, "N = {n}");
            assert_eq!(work.record_type_preps, 2, "N = {n}");
            assert_eq!(work.records_stored, n as u64 + 1, "N = {n}");
            per_n.push(work);
        }
        // Schema-level work identical at both sizes; record work scales.
        assert_eq!(per_n[0].schema_clones, per_n[1].schema_clones);
        assert_eq!(per_n[0].record_type_preps, per_n[1].record_type_preps);
        assert!(per_n[1].records_stored > per_n[0].records_stored);
    }
}
