//! The data translator: carry a stored database across a transformation.
//!
//! This is the crate's answer to the paper's middle step — "converting the
//! data to reflect the new schema" (§1) — the part the 1970s data-translation
//! projects (EXPRESS, the Michigan translator; refs 3–7) solved and which a
//! program conversion system presupposes.
//!
//! Translation is a *rebuild*: a fresh [`NetworkDb`] under the target schema
//! is populated through the ordinary typed/constrained mutation API, owner
//! types before member types, records in creation order. Rebuilding through
//! the front door means a translation can fail exactly where a 1979 reload
//! would have failed (duplicate keys, cardinality limits), rather than
//! producing a silently inconsistent database.
//!
//! The rebuild is the unit of work of the batch-conversion pipeline (one
//! translation per restructuring class, cloned per verified program), so
//! the per-record path is kept allocation-lean: schema-level resolution —
//! which old field feeds which target field, which target sets the type
//! belongs to — is planned **once per record type** and the per-record loop
//! only clones the values it stores. [`crate::stats`] counts the work so
//! tests can assert translating an N-record database does O(record types)
//! schema-level preparation, not O(N).

use crate::transform::Transform;
use dbpc_datamodel::network::{NetworkSchema, SetOwner};
use dbpc_datamodel::value::Value;
use dbpc_storage::keys::KeyTuple;
use dbpc_storage::{DbError, DbResult, NetworkDb, RecordId, SYSTEM_OWNER};
use std::collections::BTreeMap;

/// Default batch size for checkpointed translation: small enough that a
/// simulated crash loses bounded work, large enough that checkpoint
/// bookkeeping is noise against per-record store cost.
pub const TRANSLATION_BATCH: usize = 32;

/// A resumable position inside a translation, captured at a batch
/// boundary. Holds the partially-built output plus the cursors needed to
/// continue: which phase of the rebuild plan was running, how far into
/// its record list it got, and a fingerprint of the *source* database so
/// a checkpoint cannot be resumed against different data.
pub struct TranslationCheckpoint {
    source_fingerprint: u64,
    phase: usize,
    offset: usize,
    batches_done: usize,
    out: NetworkDb,
    idmap: BTreeMap<RecordId, RecordId>,
    group_map: BTreeMap<(RecordId, KeyTuple), RecordId>,
}

impl TranslationCheckpoint {
    /// How many full batches completed before the crash.
    pub fn batches_done(&self) -> usize {
        self.batches_done
    }

    /// The rebuild-plan cursor: (phase index, offset within the phase).
    pub fn position(&self) -> (usize, usize) {
        (self.phase, self.offset)
    }

    /// Reassemble a checkpoint from recovered state — the durable journal
    /// (`crate::durable`) rebuilds these parts from its write-ahead log and
    /// re-enters the translator exactly where [`resume_translation`] would.
    pub(crate) fn from_parts(
        source_fingerprint: u64,
        phase: usize,
        offset: usize,
        batches_done: usize,
        out: NetworkDb,
        idmap: BTreeMap<RecordId, RecordId>,
        group_map: BTreeMap<(RecordId, KeyTuple), RecordId>,
    ) -> TranslationCheckpoint {
        TranslationCheckpoint {
            source_fingerprint,
            phase,
            offset,
            batches_done,
            out,
            idmap,
            group_map,
        }
    }
}

/// Observer of translation batch boundaries. The durable translator
/// (`crate::durable`) implements this to append one write-ahead-log record
/// per boundary; the in-memory paths use [`NoJournal`]. The hook runs
/// *before* the crash plan is consulted, so a run killed at boundary `b`
/// has already made batch `b` durable — the contract the restart-recovery
/// experiment (E20) exercises.
pub(crate) trait TranslationJournal {
    /// One finished batch: the cursor that a resume would restart from and
    /// a view of the translation state at this boundary.
    fn on_batch(
        &mut self,
        phase: usize,
        offset: usize,
        batches_done: usize,
        out: &NetworkDb,
        idmap: &BTreeMap<RecordId, RecordId>,
        group_map: &BTreeMap<(RecordId, KeyTuple), RecordId>,
    ) -> DbResult<()>;
}

/// The no-op journal of the purely in-memory translation paths.
pub(crate) struct NoJournal;

impl TranslationJournal for NoJournal {
    fn on_batch(
        &mut self,
        _phase: usize,
        _offset: usize,
        _batches_done: usize,
        _out: &NetworkDb,
        _idmap: &BTreeMap<RecordId, RecordId>,
        _group_map: &BTreeMap<(RecordId, KeyTuple), RecordId>,
    ) -> DbResult<()> {
        Ok(())
    }
}

/// Outcome of a batched translation: either the finished database or a
/// checkpoint captured at the batch boundary where the crash plan fired.
pub enum BatchedOutcome {
    Complete(NetworkDb),
    Crashed(TranslationCheckpoint),
}

/// Translate `db` across `transform`, producing the restructured database.
pub fn translate(db: &NetworkDb, transform: &Transform) -> DbResult<NetworkDb> {
    match translate_batched(db, transform, usize::MAX, &mut |_| false)? {
        BatchedOutcome::Complete(out) => Ok(out),
        BatchedOutcome::Crashed(_) => Err(DbError::constraint(
            "translation crashed without a crash plan",
        )),
    }
}

/// Translate in bounded batches, consulting `crash` at every batch
/// boundary (with the zero-based batch index). When `crash` returns true
/// the run stops *as a crash would*: the partial output and cursors come
/// back as a [`TranslationCheckpoint`] for [`resume_translation`].
///
/// With a `crash` that never fires this is exactly [`translate`] — both
/// run the same phase plan, so a crashed-and-resumed translation is
/// byte-identical to a one-shot one, including the work counted by
/// [`crate::stats`] (per-type preparation is re-derived but only
/// *counted* when a phase is entered at offset zero).
pub fn translate_batched(
    db: &NetworkDb,
    transform: &Transform,
    batch: usize,
    crash: &mut dyn FnMut(usize) -> bool,
) -> DbResult<BatchedOutcome> {
    translate_journaled(db, transform, batch, crash, &mut NoJournal)
}

/// [`translate_batched`] with a batch-boundary journal — the durable
/// translator's entry point.
pub(crate) fn translate_journaled(
    db: &NetworkDb,
    transform: &Transform,
    batch: usize,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<BatchedOutcome> {
    let target_schema = transform
        .apply_schema(db.schema())
        .map_err(|e| DbError::constraint(e.to_string()))?;
    let phases = plan_phases(db.schema(), transform)?;
    let out = match transform {
        // Schema unchanged: the §5.2 information-losing subset starts from
        // a clone and erases, rather than rebuilding.
        Transform::DeleteWhere { .. } => db.clone(),
        // `fresh_like` keeps the target on the source's backend: a paged
        // (out-of-core) source translates into a paged target, so the
        // translation's footprint stays bounded by the two buffer pools.
        _ => db.fresh_like(target_schema.clone())?,
    };
    crate::stats::count_schema_clone();
    let mut st = RunState {
        out,
        idmap: BTreeMap::new(),
        group_map: BTreeMap::new(),
        batch: batch.max(1),
        in_batch: 0,
        batches_done: 0,
        cur_phase: 0,
    };
    match run_phases(
        db,
        transform,
        &target_schema,
        &phases,
        0,
        0,
        &mut st,
        crash,
        journal,
    )? {
        None => {
            refresh_stats(&st.out);
            Ok(BatchedOutcome::Complete(st.out))
        }
        Some((phase, offset)) => Ok(BatchedOutcome::Crashed(TranslationCheckpoint {
            source_fingerprint: db.fingerprint(),
            phase,
            offset,
            batches_done: st.batches_done,
            out: st.out,
            idmap: st.idmap,
            group_map: st.group_map,
        })),
    }
}

/// Continue a crashed translation from its checkpoint, running to
/// completion. The result is byte-identical to the uncrashed translation.
/// Fails if `db` is not the database the checkpoint was captured against.
pub fn resume_translation(
    db: &NetworkDb,
    transform: &Transform,
    ckpt: TranslationCheckpoint,
) -> DbResult<NetworkDb> {
    match resume_journaled(
        db,
        transform,
        ckpt,
        usize::MAX,
        &mut |_| false,
        &mut NoJournal,
    )? {
        BatchedOutcome::Complete(out) => Ok(out),
        BatchedOutcome::Crashed(_) => Err(DbError::constraint("resumed translation crashed again")),
    }
}

/// [`resume_translation`] with live batching, a crash plan, and a journal:
/// the resumed run keeps journaling its boundaries, so a durable
/// translation can crash and recover any number of times.
pub(crate) fn resume_journaled(
    db: &NetworkDb,
    transform: &Transform,
    ckpt: TranslationCheckpoint,
    batch: usize,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<BatchedOutcome> {
    if ckpt.source_fingerprint != db.fingerprint() {
        return Err(DbError::constraint(
            "translation checkpoint does not match the source database",
        ));
    }
    let target_schema = transform
        .apply_schema(db.schema())
        .map_err(|e| DbError::constraint(e.to_string()))?;
    let phases = plan_phases(db.schema(), transform)?;
    let mut st = RunState {
        out: ckpt.out,
        idmap: ckpt.idmap,
        group_map: ckpt.group_map,
        batch: batch.max(1),
        in_batch: 0,
        batches_done: ckpt.batches_done,
        cur_phase: ckpt.phase,
    };
    match run_phases(
        db,
        transform,
        &target_schema,
        &phases,
        ckpt.phase,
        ckpt.offset,
        &mut st,
        crash,
        journal,
    )? {
        None => {
            refresh_stats(&st.out);
            Ok(BatchedOutcome::Complete(st.out))
        }
        Some((phase, offset)) => Ok(BatchedOutcome::Crashed(TranslationCheckpoint {
            source_fingerprint: db.fingerprint(),
            phase,
            offset,
            batches_done: st.batches_done,
            out: st.out,
            idmap: st.idmap,
            group_map: st.group_map,
        })),
    }
}

/// Snapshot the translated database's statistics catalog so the planner
/// starts from fresh cardinalities, and record the refresh. Runs at every
/// translation completion — one-shot or crash-resumed — so both paths
/// report identical statistics (the catalog is a pure function of the
/// output database).
pub(crate) fn refresh_stats(out: &NetworkDb) {
    let catalog = dbpc_storage::StatCatalog::of_network(out);
    dbpc_obs::count("stats.refreshes", 1);
    if dbpc_obs::in_capture() {
        dbpc_obs::event_with(
            "stats.refresh",
            &[
                ("records", &catalog.total_records().to_string()),
                ("links", &catalog.total_links().to_string()),
            ],
        );
    }
}

/// One step of the rebuild plan. Every phase iterates a record list that
/// is derived from the (immutable) *source* database, so a (phase,
/// offset) cursor identifies the same position before and after a crash.
#[derive(Clone)]
enum Phase {
    /// Generic rebuild of one record type with name/field mapping.
    CopyMapped { rtype: String },
    /// Plain copy of one record type (promote/demote's unaffected types),
    /// optionally skipping membership in the set being split.
    CopyPlain {
        rtype: String,
        skip_set: Option<String>,
    },
    /// Promote step 2: one new-record occurrence per distinct promoted
    /// value per owner.
    PromoteGroups,
    /// Promote step 3: the split set's members, re-homed under groups.
    PromoteMembers,
    /// Demote: members regain the demoted field, re-homed to grand-owners.
    DemoteMembers,
    /// DeleteWhere: cascade-erase matching occurrences from the clone.
    Erase,
}

fn plan_phases(schema: &NetworkSchema, transform: &Transform) -> DbResult<Vec<Phase>> {
    match transform {
        Transform::DeleteWhere { .. } => Ok(vec![Phase::Erase]),
        Transform::PromoteFieldToOwner {
            record, via_set, ..
        } => {
            let mut phases: Vec<Phase> = topo_order(schema)?
                .into_iter()
                .filter(|r| r != record)
                .map(|rtype| Phase::CopyPlain {
                    rtype,
                    skip_set: Some(via_set.clone()),
                })
                .collect();
            phases.push(Phase::PromoteGroups);
            phases.push(Phase::PromoteMembers);
            Ok(phases)
        }
        Transform::DemoteOwnerToField {
            mid_record, record, ..
        } => {
            let mut phases: Vec<Phase> = topo_order(schema)?
                .into_iter()
                .filter(|r| r != mid_record && r != record)
                .map(|rtype| Phase::CopyPlain {
                    rtype,
                    skip_set: None,
                })
                .collect();
            phases.push(Phase::DemoteMembers);
            Ok(phases)
        }
        _ => Ok(topo_order(schema)?
            .into_iter()
            .map(|rtype| Phase::CopyMapped { rtype })
            .collect()),
    }
}

/// Mutable translation state threaded through the phases; exactly what a
/// checkpoint must capture.
struct RunState {
    out: NetworkDb,
    idmap: BTreeMap<RecordId, RecordId>,
    group_map: BTreeMap<(RecordId, KeyTuple), RecordId>,
    batch: usize,
    in_batch: usize,
    batches_done: usize,
    /// Index of the phase currently executing — the phase component of the
    /// cursor a journal record must carry.
    cur_phase: usize,
}

impl RunState {
    /// Count one unit of work. At a batch boundary the journal records the
    /// cursor (`done` = offset a resume would restart from) *first*, then
    /// the crash plan is asked whether to die here — so a run killed at
    /// boundary `b` has already made batch `b` durable.
    fn tick(
        &mut self,
        done: usize,
        crash: &mut dyn FnMut(usize) -> bool,
        journal: &mut dyn TranslationJournal,
    ) -> DbResult<bool> {
        self.in_batch += 1;
        if self.in_batch >= self.batch {
            self.in_batch = 0;
            let b = self.batches_done;
            self.batches_done += 1;
            dbpc_obs::count("restructure.translation_batches", 1);
            dbpc_obs::event_with("translation.batch", &[("index", &b.to_string())]);
            journal.on_batch(
                self.cur_phase,
                done,
                self.batches_done,
                &self.out,
                &self.idmap,
                &self.group_map,
            )?;
            return Ok(crash(b));
        }
        Ok(false)
    }
}

/// Execute the plan from (start_phase, start_offset). Returns the crash
/// cursor, or `None` on completion.
#[allow(clippy::too_many_arguments)]
fn run_phases(
    db: &NetworkDb,
    transform: &Transform,
    target_schema: &NetworkSchema,
    phases: &[Phase],
    start_phase: usize,
    start_offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<(usize, usize)>> {
    for (p, phase) in phases.iter().enumerate().skip(start_phase) {
        let offset = if p == start_phase { start_offset } else { 0 };
        st.cur_phase = p;
        let crashed_at = match phase {
            Phase::CopyMapped { rtype } => phase_copy_mapped(
                db,
                transform,
                target_schema,
                rtype,
                offset,
                st,
                crash,
                journal,
            )?,
            Phase::CopyPlain { rtype, skip_set } => {
                phase_copy_plain(db, rtype, skip_set.as_deref(), offset, st, crash, journal)?
            }
            Phase::PromoteGroups => {
                phase_promote_groups(db, transform, offset, st, crash, journal)?
            }
            Phase::PromoteMembers => {
                phase_promote_members(db, transform, offset, st, crash, journal)?
            }
            Phase::DemoteMembers => {
                phase_demote_members(db, transform, offset, st, crash, journal)?
            }
            Phase::Erase => phase_erase(db, transform, offset, st, crash, journal)?,
        };
        if let Some(off) = crashed_at {
            return Ok(Some((p, off)));
        }
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
fn phase_copy_mapped(
    db: &NetworkDb,
    transform: &Transform,
    target_schema: &NetworkSchema,
    old_type: &str,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let mut map = NameMap::identity();
    if let Transform::RenameRecord { old, new } = transform {
        map.record.insert(old.clone(), new.clone());
    }
    if let Transform::RenameSet { old, new } = transform {
        map.set.insert(old.clone(), new.clone());
    }
    let new_type = map.record(old_type);
    let old_rt = db
        .schema()
        .record(old_type)
        .ok_or_else(|| DbError::unknown("record", old_type))?;
    let new_rt = target_schema
        .record(new_type)
        .ok_or_else(|| DbError::unknown("record", new_type))?;
    if offset == 0 {
        crate::stats::count_type_prep();
    }
    // Field plan: which old field index (or transform default) supplies
    // each stored target field — per type, so the per-record loop below
    // only clones values.
    let mut field_plan: Vec<(&str, FieldSrc)> = Vec::with_capacity(new_rt.fields.len());
    for nf in &new_rt.fields {
        if nf.is_virtual() {
            continue;
        }
        match transform {
            Transform::RenameField { record, old, new }
                if record == old_type && *new == nf.name =>
            {
                if let Some(idx) = old_rt.field_index(old) {
                    if !old_rt.fields[idx].is_virtual() {
                        field_plan.push((nf.name.as_str(), FieldSrc::Old(idx)));
                    }
                }
            }
            Transform::AddField {
                record,
                field,
                default,
                ..
            } if record == old_type && *field == nf.name => {
                field_plan.push((nf.name.as_str(), FieldSrc::Default(default)));
            }
            _ => {
                if let Some(idx) = old_rt.field_index(&nf.name) {
                    if !old_rt.fields[idx].is_virtual() {
                        field_plan.push((nf.name.as_str(), FieldSrc::Old(idx)));
                    }
                }
            }
        }
    }
    // Set plan: record-owned target sets the type belongs to, paired
    // with the source set supplying the membership.
    let set_plan: Vec<(&str, &str)> = target_schema
        .sets_with_member(new_type)
        .into_iter()
        .filter(|ns| !ns.is_system())
        .map(|ns| (ns.name.as_str(), map.set_rev(&ns.name)))
        .collect();

    let items = db.records_of_type(old_type);
    let mut stored = crate::stats::StoredTally::new();
    for (i, &old_id) in items.iter().enumerate().skip(offset) {
        let old_rec = db.get(old_id)?;
        let values: Vec<(&str, Value)> = field_plan
            .iter()
            .map(|(name, src)| {
                let v = match src {
                    FieldSrc::Old(idx) => old_rec.values[*idx].clone(),
                    FieldSrc::Default(d) => (*d).clone(),
                };
                (*name, v)
            })
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(set_plan.len());
        for (new_set, old_set) in &set_plan {
            if let Some(old_owner) = db.owner_in(old_set, old_id)? {
                if old_owner != SYSTEM_OWNER {
                    let new_owner = translated_owner(&st.idmap, old_set, old_owner)?;
                    connects.push((*new_set, new_owner));
                }
            }
        }
        let new_id = st.out.store(new_type, &values, &connects)?;
        stored.bump();
        st.idmap.insert(old_id, new_id);
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

/// Record types ordered so that set owners precede their members.
fn topo_order(schema: &NetworkSchema) -> DbResult<Vec<String>> {
    let mut order: Vec<String> = Vec::new();
    let mut remaining: Vec<&str> = schema.records.iter().map(|r| r.name.as_str()).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|r| {
            let ready = schema.sets_with_member(r).iter().all(|s| match &s.owner {
                SetOwner::System => true,
                SetOwner::Record(o) => order.iter().any(|x| x == o),
            });
            if ready {
                order.push(r.to_string());
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            return Err(DbError::constraint(format!(
                "ownership cycle among record types: {}",
                remaining.join(", ")
            )));
        }
    }
    Ok(order)
}

/// How a structure-preserving transform maps names and values.
struct NameMap {
    record: BTreeMap<String, String>,
    set: BTreeMap<String, String>,
}

impl NameMap {
    fn identity() -> NameMap {
        NameMap {
            record: BTreeMap::new(),
            set: BTreeMap::new(),
        }
    }

    fn record<'a>(&'a self, name: &'a str) -> &'a str {
        self.record.get(name).map(String::as_str).unwrap_or(name)
    }

    fn set_rev<'a>(&'a self, target_name: &'a str) -> &'a str {
        for (old, new) in &self.set {
            if new == target_name {
                return old;
            }
        }
        target_name
    }
}

/// Where a stored target field's value comes from, resolved once per
/// record type.
enum FieldSrc<'a> {
    /// Index into the source record's stored values.
    Old(usize),
    /// The `AddField` default.
    Default(&'a Value),
}

/// Look up the already-translated id of `old_owner` (owners precede
/// members in every phase plan).
fn translated_owner(
    idmap: &BTreeMap<RecordId, RecordId>,
    set: &str,
    old_owner: RecordId,
) -> DbResult<RecordId> {
    idmap.get(&old_owner).copied().ok_or_else(|| {
        DbError::constraint(format!(
            "owner #{} of set {set} not yet translated",
            old_owner.0
        ))
    })
}

fn phase_copy_plain(
    db: &NetworkDb,
    rtype: &str,
    skip_set: Option<&str>,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let rt = db
        .schema()
        .record(rtype)
        .ok_or_else(|| DbError::unknown("record", rtype))?;
    if offset == 0 {
        crate::stats::count_type_prep();
    }
    let stored_fields: Vec<(usize, &str)> = rt
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_virtual())
        .map(|(i, f)| (i, f.name.as_str()))
        .collect();
    let member_sets: Vec<&str> = db
        .schema()
        .sets_with_member(rtype)
        .into_iter()
        .filter(|s| !s.is_system() && Some(s.name.as_str()) != skip_set)
        .map(|s| s.name.as_str())
        .collect();
    let items = db.records_of_type(rtype);
    let mut stored = crate::stats::StoredTally::new();
    for (i, &old_id) in items.iter().enumerate().skip(offset) {
        let old_rec = db.get(old_id)?;
        let values: Vec<(&str, Value)> = stored_fields
            .iter()
            .map(|(i, name)| (*name, old_rec.values[*i].clone()))
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(member_sets.len());
        for s in &member_sets {
            if let Some(owner) = db.owner_in(s, old_id)? {
                if owner != SYSTEM_OWNER {
                    connects.push((*s, translated_owner(&st.idmap, s, owner)?));
                }
            }
        }
        let new_id = st.out.store(rtype, &values, &connects)?;
        stored.bump();
        st.idmap.insert(old_id, new_id);
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

fn phase_promote_groups(
    db: &NetworkDb,
    transform: &Transform,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let Transform::PromoteFieldToOwner {
        field,
        via_set,
        new_record,
        upper_set,
        ..
    } = transform
    else {
        return Err(DbError::constraint("group phase outside a promote"));
    };
    // Owner of the split set in the source schema.
    let via_owner_type = db
        .schema()
        .set(via_set)
        .and_then(|s| s.owner.record_name())
        .ok_or_else(|| DbError::unknown("set", via_set))?
        .to_string();
    // For each owner occurrence, one new-record occurrence per distinct
    // promoted-field value among its members. The work list is the
    // (owner, member) pairs, flattened in set order — derived from the
    // immutable source, so the offset survives a crash.
    let mut pairs: Vec<(RecordId, RecordId)> = Vec::new();
    for owner in db.records_of_type(&via_owner_type) {
        for member in db.members_of(via_set, owner)? {
            pairs.push((owner, member));
        }
    }
    let mut stored = crate::stats::StoredTally::new();
    for (i, &(owner, member)) in pairs.iter().enumerate().skip(offset) {
        let v = db.field_value(member, field)?;
        let key = (owner, KeyTuple(vec![v.clone()]));
        if let std::collections::btree_map::Entry::Vacant(slot) = st.group_map.entry(key) {
            let new_owner = translated_owner(&st.idmap, via_set, owner)?;
            let new_id = st
                .out
                .store(new_record, &[(field, v)], &[(upper_set, new_owner)])?;
            stored.bump();
            slot.insert(new_id);
        }
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

fn phase_promote_members(
    db: &NetworkDb,
    transform: &Transform,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let Transform::PromoteFieldToOwner {
        record,
        field,
        via_set,
        lower_set,
        ..
    } = transform
    else {
        return Err(DbError::constraint("member phase outside a promote"));
    };
    let rt = db
        .schema()
        .record(record)
        .ok_or_else(|| DbError::unknown("record", record))?;
    if offset == 0 {
        crate::stats::count_type_prep();
    }
    let promoted_idx = rt
        .field_index(field)
        .ok_or_else(|| DbError::unknown("field", field))?;
    let stored_fields: Vec<(usize, &str)> = rt
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_virtual() && f.name != *field)
        .map(|(i, f)| (i, f.name.as_str()))
        .collect();
    let other_sets: Vec<&str> = db
        .schema()
        .sets_with_member(record)
        .into_iter()
        .filter(|s| !s.is_system() && s.name != *via_set)
        .map(|s| s.name.as_str())
        .collect();
    let items = db.records_of_type(record);
    let mut stored = crate::stats::StoredTally::new();
    for (i, &old_id) in items.iter().enumerate().skip(offset) {
        let old_rec = db.get(old_id)?;
        let values: Vec<(&str, Value)> = stored_fields
            .iter()
            .map(|(i, name)| (*name, old_rec.values[*i].clone()))
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(other_sets.len() + 1);
        match db.owner_in(via_set, old_id)? {
            Some(owner) => {
                let v = db.field_value(old_id, field)?;
                let group = st
                    .group_map
                    .get(&(owner, KeyTuple(vec![v])))
                    .copied()
                    .ok_or_else(|| DbError::constraint("promoted group not materialized"))?;
                connects.push((lower_set, group));
            }
            None => {
                // Disconnected member: its promoted-field value has no group
                // to live in; non-null values would be silently lost.
                if !old_rec.values[promoted_idx].is_null() {
                    return Err(DbError::constraint(format!(
                        "cannot promote {record}.{field}: record #{} is not \
                         connected in {via_set} but carries a value",
                        old_id.0
                    )));
                }
            }
        }
        for s in &other_sets {
            if let Some(owner) = db.owner_in(s, old_id)? {
                if owner != SYSTEM_OWNER {
                    connects.push((*s, translated_owner(&st.idmap, s, owner)?));
                }
            }
        }
        let new_id = st.out.store(record, &values, &connects)?;
        stored.bump();
        st.idmap.insert(old_id, new_id);
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

fn phase_demote_members(
    db: &NetworkDb,
    transform: &Transform,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let Transform::DemoteOwnerToField {
        mid_record,
        field,
        lower_set,
        record,
        merged_set,
        ..
    } = transform
    else {
        return Err(DbError::constraint("demote phase outside a demote"));
    };
    let upper_set_name = db
        .schema()
        .sets_with_member(mid_record)
        .iter()
        .map(|s| s.name.clone())
        .next()
        .ok_or_else(|| DbError::unknown("set", "upper set"))?;
    // Member records regain the demoted field; membership re-homes to the
    // grand-owner via the merged set.
    let rt = db
        .schema()
        .record(record)
        .ok_or_else(|| DbError::unknown("record", record))?;
    if offset == 0 {
        crate::stats::count_type_prep();
    }
    let stored_fields: Vec<(usize, &str)> = rt
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_virtual())
        .map(|(i, f)| (i, f.name.as_str()))
        .collect();
    let other_sets: Vec<&str> = db
        .schema()
        .sets_with_member(record)
        .into_iter()
        .filter(|s| !s.is_system() && s.name != *lower_set)
        .map(|s| s.name.as_str())
        .collect();
    let items = db.records_of_type(record);
    let mut stored = crate::stats::StoredTally::new();
    for (i, &old_id) in items.iter().enumerate().skip(offset) {
        let old_rec = db.get(old_id)?;
        let mut values: Vec<(&str, Value)> = stored_fields
            .iter()
            .map(|(i, name)| (*name, old_rec.values[*i].clone()))
            .collect();
        let mut connects: Vec<(&str, RecordId)> = Vec::with_capacity(other_sets.len() + 1);
        match db.owner_in(lower_set, old_id)? {
            Some(mid) => {
                values.push((field, db.field_value(mid, field)?));
                if let Some(grand) = db.owner_in(&upper_set_name, mid)? {
                    if grand != SYSTEM_OWNER {
                        connects
                            .push((merged_set, translated_owner(&st.idmap, merged_set, grand)?));
                    }
                }
            }
            None => {
                values.push((field, Value::Null));
            }
        }
        for s in &other_sets {
            if let Some(owner) = db.owner_in(s, old_id)? {
                if owner != SYSTEM_OWNER {
                    connects.push((*s, translated_owner(&st.idmap, s, owner)?));
                }
            }
        }
        let new_id = st.out.store(record, &values, &connects)?;
        stored.bump();
        st.idmap.insert(old_id, new_id);
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

/// The records a `DeleteWhere` dooms, in source order — derived from the
/// immutable source database, so the durable journal can re-derive the
/// same list at recovery and replay erase batches by cursor range alone.
pub(crate) fn erase_victims(
    db: &NetworkDb,
    record: &str,
    field: &str,
    op: &dbpc_dml::expr::CmpOp,
    value: &Value,
) -> Vec<RecordId> {
    db.records_of_type(record)
        .into_iter()
        .filter(|&id| {
            db.field_value(id, field)
                .map(|v| op.eval(&v, value))
                .unwrap_or(false)
        })
        .collect()
}

fn phase_erase(
    db: &NetworkDb,
    transform: &Transform,
    offset: usize,
    st: &mut RunState,
    crash: &mut dyn FnMut(usize) -> bool,
    journal: &mut dyn TranslationJournal,
) -> DbResult<Option<usize>> {
    let Transform::DeleteWhere {
        record,
        field,
        op,
        value,
    } = transform
    else {
        return Err(DbError::constraint("erase phase outside a delete-where"));
    };
    // The doomed list is derived from the *source* database (which the
    // output starts as a clone of), so it is identical before and after
    // a crash even though the output clone is partially erased.
    let doomed = erase_victims(db, record, field, op, value);
    for (i, &id) in doomed.iter().enumerate().skip(offset) {
        // May already be gone through a cascade.
        match st.out.erase(id, true) {
            Ok(_) | Err(DbError::NotFound(_)) => {}
            Err(e) => return Err(e),
        }
        if st.tick(i + 1, crash, journal)? {
            return Ok(Some(i + 1));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::Transform;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::expr::CmpOp;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        let aero = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("AEROSPACE")),
                    ("DIV-LOC", Value::str("SEATTLE")),
                ],
                &[],
            )
            .unwrap();
        for (name, dept, age, div) in [
            ("JONES", "SALES", 34, mach),
            ("ADAMS", "SALES", 28, mach),
            ("BAKER", "MFG", 45, mach),
            ("CLARK", "SALES", 52, aero),
        ] {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(name)),
                    ("DEPT-NAME", Value::str(dept)),
                    ("AGE", Value::Int(age)),
                ],
                &[("DIV-EMP", div)],
            )
            .unwrap();
        }
        db
    }

    fn fig_4_4() -> Transform {
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "DEPT-NAME".into(),
            via_set: "DIV-EMP".into(),
            new_record: "DEPT".into(),
            upper_set: "DIV-DEPT".into(),
            lower_set: "DEPT-EMP".into(),
        }
    }

    #[test]
    fn promote_groups_members_into_new_records() {
        let src = company_db();
        let out = translate(&src, &fig_4_4()).unwrap();
        // MACHINERY has SALES+MFG, AEROSPACE has SALES → 3 DEPTs.
        assert_eq!(out.records_of_type("DEPT").len(), 3);
        assert_eq!(out.records_of_type("EMP").len(), 4);
        // Machinery's SALES dept holds ADAMS and JONES in name order.
        let machinery = out
            .records_of_type("DIV")
            .into_iter()
            .find(|&d| out.field_value(d, "DIV-NAME").unwrap() == Value::str("MACHINERY"))
            .unwrap();
        let depts = out.members_of("DIV-DEPT", machinery).unwrap();
        assert_eq!(depts.len(), 2);
        // DIV-DEPT is keyed on DEPT-NAME: MFG before SALES.
        assert_eq!(
            out.field_value(depts[0], "DEPT-NAME").unwrap(),
            Value::str("MFG")
        );
        let sales = depts[1];
        let emps = out.members_of("DEPT-EMP", sales).unwrap();
        let names: Vec<Value> = emps
            .iter()
            .map(|&e| out.field_value(e, "EMP-NAME").unwrap())
            .collect();
        assert_eq!(names, vec![Value::str("ADAMS"), Value::str("JONES")]);
        // DEPT's migrated virtual field resolves through DIV-DEPT.
        assert_eq!(
            out.field_value(sales, "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
    }

    #[test]
    fn promote_then_demote_round_trips_data() {
        let src = company_db();
        let mid = translate(&src, &fig_4_4()).unwrap();
        let back = translate(&mid, &fig_4_4().inverse().unwrap()).unwrap();
        assert_eq!(back.records_of_type("EMP").len(), 4);
        // Every employee's (name, dept, age, division) quadruple survives.
        let quad = |db: &NetworkDb| -> Vec<(Value, Value, Value, Value)> {
            let mut v: Vec<_> = db
                .records_of_type("EMP")
                .into_iter()
                .map(|e| {
                    (
                        db.field_value(e, "EMP-NAME").unwrap(),
                        db.field_value(e, "DEPT-NAME").unwrap(),
                        db.field_value(e, "AGE").unwrap(),
                        db.field_value(e, "DIV-NAME").unwrap(),
                    )
                })
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            v
        };
        assert_eq!(quad(&src), quad(&back));
    }

    #[test]
    fn rename_record_rebuilds_identically() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::RenameRecord {
                old: "DIV".into(),
                new: "DIVISION".into(),
            },
        )
        .unwrap();
        assert_eq!(out.records_of_type("DIVISION").len(), 2);
        let emps = out.records_of_type("EMP");
        assert_eq!(emps.len(), 4);
        // Virtual field still resolves.
        assert_eq!(
            out.field_value(emps[0], "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
    }

    #[test]
    fn add_field_fills_default() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::AddField {
                record: "EMP".into(),
                field: "SALARY".into(),
                ty: FieldType::Int(6),
                default: Value::Int(100),
            },
        )
        .unwrap();
        for e in out.records_of_type("EMP") {
            assert_eq!(out.field_value(e, "SALARY").unwrap(), Value::Int(100));
        }
    }

    #[test]
    fn drop_field_removes_values() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::DropField {
                record: "EMP".into(),
                field: "AGE".into(),
            },
        )
        .unwrap();
        assert!(out
            .field_value(out.records_of_type("EMP")[0], "AGE")
            .is_err());
    }

    #[test]
    fn change_set_keys_reorders_occurrences() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::ChangeSetKeys {
                set: "DIV-EMP".into(),
                keys: vec!["AGE".into()],
            },
        )
        .unwrap();
        let machinery = out
            .records_of_type("DIV")
            .into_iter()
            .find(|&d| out.field_value(d, "DIV-NAME").unwrap() == Value::str("MACHINERY"))
            .unwrap();
        let ages: Vec<Value> = out
            .members_of("DIV-EMP", machinery)
            .unwrap()
            .iter()
            .map(|&e| out.field_value(e, "AGE").unwrap())
            .collect();
        assert_eq!(ages, vec![Value::Int(28), Value::Int(34), Value::Int(45)]);
    }

    #[test]
    fn delete_where_erases_matching_and_preserves_rest() {
        let src = company_db();
        let out = translate(
            &src,
            &Transform::DeleteWhere {
                record: "EMP".into(),
                field: "AGE".into(),
                op: CmpOp::Gt,
                value: Value::Int(40),
            },
        )
        .unwrap();
        assert_eq!(out.records_of_type("EMP").len(), 2);
        // Deleting divisions cascades their employees.
        let out2 = translate(
            &src,
            &Transform::DeleteWhere {
                record: "DIV".into(),
                field: "DIV-NAME".into(),
                op: CmpOp::Eq,
                value: Value::str("MACHINERY"),
            },
        )
        .unwrap();
        assert_eq!(out2.records_of_type("DIV").len(), 1);
        assert_eq!(out2.records_of_type("EMP").len(), 1);
    }

    #[test]
    fn topo_order_owners_first() {
        let order = topo_order(&company_schema()).unwrap();
        let div = order.iter().position(|r| r == "DIV").unwrap();
        let emp = order.iter().position(|r| r == "EMP").unwrap();
        assert!(div < emp);
    }

    fn sized_company_db(emps: usize) -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        for i in 0..emps {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(format!("EMP-{i:05}"))),
                    ("DEPT-NAME", Value::str("SALES")),
                    ("AGE", Value::Int(20 + (i as i64 % 40))),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        }
        db
    }

    /// Crash at every batch boundary of a promote; each resumed run must
    /// equal the one-shot translation bit for bit, stats included.
    #[test]
    fn crash_and_resume_matches_one_shot_at_every_boundary() {
        let src = company_db();
        let t = fig_4_4();
        let before = crate::stats::snapshot();
        let oneshot = translate(&src, &t).unwrap();
        let oneshot_work = crate::stats::snapshot().since(&before);
        let mut k = 0usize;
        loop {
            let mut fired = false;
            let outcome = translate_batched(&src, &t, 2, &mut |b| {
                if b == k {
                    fired = true;
                }
                b == k
            })
            .unwrap();
            let ckpt = match outcome {
                BatchedOutcome::Complete(out) => {
                    assert!(!fired, "complete run must not have crashed");
                    assert_eq!(out.fingerprint(), oneshot.fingerprint());
                    break;
                }
                BatchedOutcome::Crashed(c) => c,
            };
            let before = crate::stats::snapshot();
            let resumed = resume_translation(&src, &t, ckpt).unwrap();
            let _ = crate::stats::snapshot().since(&before);
            assert_eq!(
                resumed.fingerprint(),
                oneshot.fingerprint(),
                "crash at batch {k} diverged"
            );
            resumed.check_access_structures().unwrap();
            k += 1;
        }
        assert!(k > 0, "batch=2 must produce at least one boundary");
        // Crashed-and-resumed work equals one-shot work: re-running the
        // whole matrix under crashes must not change the audit counters.
        let before = crate::stats::snapshot();
        let outcome = translate_batched(&src, &t, 2, &mut |b| b == 0).unwrap();
        if let BatchedOutcome::Crashed(c) = outcome {
            let _ = resume_translation(&src, &t, c).unwrap();
        }
        let crashed_work = crate::stats::snapshot().since(&before);
        assert_eq!(crashed_work, oneshot_work);
    }

    /// A checkpoint refuses to resume against a different source.
    #[test]
    fn resume_rejects_mismatched_source() {
        let src = company_db();
        let t = fig_4_4();
        let BatchedOutcome::Crashed(ckpt) =
            translate_batched(&src, &t, 1, &mut |b| b == 0).unwrap()
        else {
            panic!("expected a crash at the first boundary");
        };
        let mut other = company_db();
        let id = other.records_of_type("EMP")[0];
        other.erase(id, true).unwrap();
        assert!(resume_translation(&other, &t, ckpt).is_err());
    }

    /// Clone audit: translating an N-record database does O(record types)
    /// schema-level work — one target-schema clone and one translation plan
    /// per record type — regardless of N. Only the per-record store count
    /// scales with database size.
    #[test]
    fn translation_schema_work_is_o_record_types_not_o_n() {
        let rename = Transform::RenameRecord {
            old: "DIV".into(),
            new: "DIVISION".into(),
        };
        let mut per_n = Vec::new();
        for n in [8usize, 64] {
            let src = sized_company_db(n);
            let before = crate::stats::snapshot();
            translate(&src, &rename).unwrap();
            let work = crate::stats::snapshot().since(&before);
            // One clone to seed the rebuilt target database; one plan per
            // record type (DIV + EMP); one store per record (1 DIV + N EMPs).
            assert_eq!(work.schema_clones, 1, "N = {n}");
            assert_eq!(work.record_type_preps, 2, "N = {n}");
            assert_eq!(work.records_stored, n as u64 + 1, "N = {n}");
            per_n.push(work);
        }
        // Schema-level work identical at both sizes; record work scales.
        assert_eq!(per_n[0].schema_clones, per_n[1].schema_clones);
        assert_eq!(per_n[0].record_type_preps, per_n[1].record_type_preps);
        assert!(per_n[1].records_stored > per_n[0].records_stored);
    }
}
