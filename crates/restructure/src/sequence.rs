//! Restructuring sequences.
//!
//! §4.2: "A conversion is considered as a sequence of transformations
//! applied to the source schema which produces a target schema … It is hoped
//! that more complex transformations can be built up from these." A
//! [`Restructuring`] is that sequence, applied in order to schemas and
//! databases alike.

use crate::data::translate;
use crate::transform::Transform;
use dbpc_datamodel::error::ModelResult;
use dbpc_datamodel::network::NetworkSchema;
use dbpc_storage::{DbResult, NetworkDb};
use std::fmt;

/// An ordered sequence of transformations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Restructuring {
    pub transforms: Vec<Transform>,
}

impl Restructuring {
    pub fn new(transforms: Vec<Transform>) -> Restructuring {
        Restructuring { transforms }
    }

    pub fn single(t: Transform) -> Restructuring {
        Restructuring {
            transforms: vec![t],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Apply all transforms to a schema, in order.
    pub fn apply_schema(&self, schema: &NetworkSchema) -> ModelResult<NetworkSchema> {
        let mut s = schema.clone();
        for t in &self.transforms {
            s = t.apply_schema(&s)?;
        }
        Ok(s)
    }

    /// Translate a database across all transforms, in order.
    pub fn translate(&self, db: &NetworkDb) -> DbResult<NetworkDb> {
        let mut d = db.clone();
        for t in &self.transforms {
            d = translate(&d, t)?;
        }
        Ok(d)
    }

    /// Like [`Restructuring::translate`], but each transform's rebuild
    /// runs in bounded batches with `crash` consulted at every batch
    /// boundary (zero-based index, per transform). A crash is recovered
    /// by resuming from the captured checkpoint, so the result — data and
    /// translation-work statistics alike — is identical to the uncrashed
    /// run.
    pub fn translate_checkpointed(
        &self,
        db: &NetworkDb,
        batch: usize,
        crash: &mut dyn FnMut(usize) -> bool,
    ) -> DbResult<NetworkDb> {
        let mut d = db.clone();
        for t in &self.transforms {
            d = match crate::data::translate_batched(&d, t, batch, crash)? {
                crate::data::BatchedOutcome::Complete(out) => out,
                crate::data::BatchedOutcome::Crashed(ckpt) => {
                    crate::data::resume_translation(&d, t, ckpt)?
                }
            };
        }
        Ok(d)
    }

    /// The inverse sequence (reversed inverses), if every step has one.
    pub fn inverse(&self) -> Option<Restructuring> {
        let mut inv = Vec::with_capacity(self.transforms.len());
        for t in self.transforms.iter().rev() {
            inv.push(t.inverse()?);
        }
        Some(Restructuring { transforms: inv })
    }

    /// Does the whole sequence preserve information?
    pub fn preserves_information(&self) -> bool {
        self.transforms.iter().all(|t| t.preserves_information())
    }

    /// Can the sequence perturb observable retrieval order?
    pub fn affects_ordering(&self) -> bool {
        self.transforms.iter().any(|t| t.affects_ordering())
    }

    /// Does the sequence change integrity semantics?
    pub fn affects_integrity(&self) -> bool {
        self.transforms.iter().any(|t| t.affects_integrity())
    }

    /// Check that the declared target schema is in fact what the sequence
    /// produces from `source` — the Conversion Analyzer's sanity check on
    /// its inputs (Figure 4.1 takes both the schemas *and* the
    /// restructuring definition).
    pub fn produces(&self, source: &NetworkSchema, target: &NetworkSchema) -> bool {
        match self.apply_schema(source) {
            Ok(s) => &s == target,
            Err(_) => false,
        }
    }
}

impl fmt::Display for Restructuring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.transforms.iter().enumerate() {
            writeln!(f, "{}. {t}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_datamodel::value::Value;

    fn schema() -> NetworkSchema {
        NetworkSchema::new("S")
            .with_record(RecordTypeDef::new(
                "A",
                vec![
                    FieldDef::new("K", FieldType::Char(4)),
                    FieldDef::new("X", FieldType::Int(4)),
                ],
            ))
            .with_set(SetDef::system("ALL-A", "A", vec!["K"]))
    }

    #[test]
    fn sequence_applies_in_order() {
        let r = Restructuring::new(vec![
            Transform::RenameField {
                record: "A".into(),
                old: "X".into(),
                new: "Y".into(),
            },
            Transform::AddField {
                record: "A".into(),
                field: "Z".into(),
                ty: FieldType::Int(4),
                default: Value::Int(0),
            },
        ]);
        let out = r.apply_schema(&schema()).unwrap();
        let a = out.record("A").unwrap();
        assert!(a.field("Y").is_some());
        assert!(a.field("Z").is_some());
        assert!(a.field("X").is_none());
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let r = Restructuring::new(vec![
            Transform::RenameRecord {
                old: "A".into(),
                new: "B".into(),
            },
            Transform::RenameField {
                record: "B".into(),
                old: "X".into(),
                new: "Y".into(),
            },
        ]);
        let fwd = r.apply_schema(&schema()).unwrap();
        let back = r.inverse().unwrap().apply_schema(&fwd).unwrap();
        assert_eq!(back, schema());
    }

    #[test]
    fn inverse_fails_for_lossy_sequence() {
        let r = Restructuring::new(vec![Transform::DropField {
            record: "A".into(),
            field: "X".into(),
        }]);
        assert!(r.inverse().is_none());
        assert!(!r.preserves_information());
    }

    #[test]
    fn produces_checks_target() {
        let r = Restructuring::single(Transform::RenameRecord {
            old: "A".into(),
            new: "B".into(),
        });
        let target = r.apply_schema(&schema()).unwrap();
        assert!(r.produces(&schema(), &target));
        assert!(!r.produces(&schema(), &schema()));
    }

    #[test]
    fn translate_folds_over_database() {
        let mut db = NetworkDb::new(schema()).unwrap();
        db.store("A", &[("K", Value::str("k1")), ("X", Value::Int(7))], &[])
            .unwrap();
        let r = Restructuring::new(vec![
            Transform::RenameField {
                record: "A".into(),
                old: "X".into(),
                new: "Y".into(),
            },
            Transform::AddField {
                record: "A".into(),
                field: "Z".into(),
                ty: FieldType::Int(4),
                default: Value::Int(1),
            },
        ]);
        let out = r.translate(&db).unwrap();
        let id = out.records_of_type("A")[0];
        assert_eq!(out.field_value(id, "Y").unwrap(), Value::Int(7));
        assert_eq!(out.field_value(id, "Z").unwrap(), Value::Int(1));
    }

    #[test]
    fn display_numbers_steps() {
        let r = Restructuring::new(vec![Transform::RenameRecord {
            old: "A".into(),
            new: "B".into(),
        }]);
        assert!(r.to_string().starts_with("1. RENAME RECORD A TO B"));
    }
}
