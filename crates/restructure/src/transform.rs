//! Schema transformation operators.
//!
//! Each operator knows how to rewrite a network schema
//! ([`Transform::apply_schema`]), whether it can be undone
//! ([`Transform::inverse`], Housel's invertibility condition), and whether
//! it preserves information (the paper's §1.1 caveat: "conversion when not
//! all information is preserved is a different and more difficult conversion
//! problem").
//!
//! The flagship operator is [`Transform::PromoteFieldToOwner`], the paper's
//! own worked example (Figure 4.2 → Figure 4.4): hoist `DEPT-NAME` out of
//! `EMP` into a new `DEPT` record type interposed between `DIV` and `EMP`,
//! replacing the set `DIV-EMP` by `DIV-DEPT` ∘ `DEPT-EMP`.

use dbpc_datamodel::constraint::Constraint;
use dbpc_datamodel::error::{ModelError, ModelResult};
use dbpc_datamodel::network::{
    FieldDef, Insertion, NetworkSchema, RecordTypeDef, Retention, SetDef, SetOwner,
};
use dbpc_datamodel::types::FieldType;
use dbpc_datamodel::value::Value;
use dbpc_dml::expr::CmpOp;
use std::fmt;

/// One schema transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Rename a record type.
    RenameRecord { old: String, new: String },
    /// Rename a set type.
    RenameSet { old: String, new: String },
    /// Rename a field of a record type.
    RenameField {
        record: String,
        old: String,
        new: String,
    },
    /// Add a stored field with a default value for existing occurrences.
    AddField {
        record: String,
        field: String,
        ty: FieldType,
        default: Value,
    },
    /// Drop a field. **Information-losing**; programs referencing the field
    /// cannot be converted (they raise a conversion question instead).
    DropField { record: String, field: String },
    /// The Figure 4.2 → 4.4 operator: hoist `field` of `record` into a new
    /// owner record `new_record`, splitting `via_set` (owner O → record)
    /// into `upper_set` (O → new_record) and `lower_set` (new_record →
    /// record). Virtual fields of `record` routed via the split set migrate
    /// to `new_record`.
    PromoteFieldToOwner {
        record: String,
        field: String,
        via_set: String,
        new_record: String,
        upper_set: String,
        lower_set: String,
    },
    /// The inverse of [`Transform::PromoteFieldToOwner`]: demote the single
    /// stored field of `mid_record` back into `record` and merge
    /// `upper_set` ∘ `lower_set` into `merged_set`.
    DemoteOwnerToField {
        mid_record: String,
        field: String,
        upper_set: String,
        lower_set: String,
        record: String,
        merged_set: String,
    },
    /// Change a set's ordering keys — the §3.2 *order dependence* hazard:
    /// programs that observe member order silently change meaning.
    ChangeSetKeys { set: String, keys: Vec<String> },
    /// Change a set's insertion class (AUTOMATIC ⇄ MANUAL).
    ChangeInsertion { set: String, insertion: Insertion },
    /// Change a set's retention class (MANDATORY ⇄ OPTIONAL) — an
    /// integrity-semantics change (§3.1).
    ChangeRetention { set: String, retention: Retention },
    /// Add a declarative constraint (a procedural check can then be removed
    /// from programs — the §4.1 Florida scenario, reversed).
    AddConstraint(Constraint),
    /// Drop a declarative constraint (programs must now enforce it
    /// procedurally if the application still requires it).
    DropConstraint(Constraint),
    /// Delete occurrences of `record` where `field op value` during
    /// translation (with cascade). Schema is unchanged; **information is
    /// lost** — the §5.2 "employees who retired prior to 1950" example used
    /// for the levels-of-equivalence experiment.
    DeleteWhere {
        record: String,
        field: String,
        op: CmpOp,
        value: Value,
    },
}

impl Transform {
    /// Apply to a schema, producing the restructured schema.
    ///
    /// The paper\'s own example, Figure 4.2 → Figure 4.4:
    ///
    /// ```
    /// use dbpc_restructure::Transform;
    /// use dbpc_datamodel::ddl::parse_network_schema;
    /// let source = parse_network_schema("\
    /// SCHEMA NAME IS C.
    /// RECORD SECTION.
    ///   RECORD NAME IS DIV.
    ///   FIELDS ARE.
    ///     DIV-NAME PIC X(20).
    ///   END RECORD.
    ///   RECORD NAME IS EMP.
    ///   FIELDS ARE.
    ///     EMP-NAME PIC X(25).
    ///     DEPT-NAME PIC X(5).
    ///   END RECORD.
    /// END RECORD SECTION.
    /// SET SECTION.
    ///   SET NAME IS ALL-DIV.
    ///   OWNER IS SYSTEM.
    ///   MEMBER IS DIV.
    ///   SET KEYS ARE (DIV-NAME).
    ///   END SET.
    ///   SET NAME IS DIV-EMP.
    ///   OWNER IS DIV.
    ///   MEMBER IS EMP.
    ///   SET KEYS ARE (EMP-NAME).
    ///   END SET.
    /// END SET SECTION.
    /// END SCHEMA.
    /// ").unwrap();
    /// let target = Transform::PromoteFieldToOwner {
    ///     record: "EMP".into(),
    ///     field: "DEPT-NAME".into(),
    ///     via_set: "DIV-EMP".into(),
    ///     new_record: "DEPT".into(),
    ///     upper_set: "DIV-DEPT".into(),
    ///     lower_set: "DEPT-EMP".into(),
    /// }
    /// .apply_schema(&source)
    /// .unwrap();
    /// assert!(target.record("DEPT").is_some());
    /// assert!(target.set("DIV-EMP").is_none());
    /// ```
    pub fn apply_schema(&self, schema: &NetworkSchema) -> ModelResult<NetworkSchema> {
        let mut s = schema.clone();
        match self {
            Transform::RenameRecord { old, new } => {
                if s.record(old).is_none() {
                    return Err(ModelError::unknown("record", old));
                }
                if s.record(new).is_some() {
                    return Err(ModelError::duplicate("record", new));
                }
                for r in &mut s.records {
                    if r.name == *old {
                        r.name = new.clone();
                    }
                }
                for set in &mut s.sets {
                    if set.member == *old {
                        set.member = new.clone();
                    }
                    if let SetOwner::Record(o) = &mut set.owner {
                        if o == old {
                            *o = new.clone();
                        }
                    }
                }
                for c in &mut s.constraints {
                    rename_constraint_record(c, old, new);
                }
            }
            Transform::RenameSet { old, new } => {
                if s.set(old).is_none() {
                    return Err(ModelError::unknown("set", old));
                }
                if s.set(new).is_some() {
                    return Err(ModelError::duplicate("set", new));
                }
                for set in &mut s.sets {
                    if set.name == *old {
                        set.name = new.clone();
                    }
                }
                for r in &mut s.records {
                    for f in &mut r.fields {
                        if let Some(v) = &mut f.virtual_via {
                            if v.set == *old {
                                v.set = new.clone();
                            }
                        }
                    }
                }
                for c in &mut s.constraints {
                    rename_constraint_set(c, old, new);
                }
            }
            Transform::RenameField { record, old, new } => {
                let r = s
                    .record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                if r.field(new).is_some() {
                    return Err(ModelError::duplicate("field", format!("{record}.{new}")));
                }
                let f = r
                    .fields
                    .iter_mut()
                    .find(|f| f.name == *old)
                    .ok_or_else(|| ModelError::unknown("field", format!("{record}.{old}")))?;
                f.name = new.clone();
                // Set keys referencing the field.
                for set in &mut s.sets {
                    if set.member == *record {
                        for k in &mut set.keys {
                            if k == old {
                                *k = new.clone();
                            }
                        }
                    }
                }
                // Virtual fields sourcing the renamed field.
                let sets_owned: Vec<String> = s
                    .sets
                    .iter()
                    .filter(|st| st.owner.record_name() == Some(record.as_str()))
                    .map(|st| st.name.clone())
                    .collect();
                for r in &mut s.records {
                    for f in &mut r.fields {
                        if let Some(v) = &mut f.virtual_via {
                            if v.source_field == *old && sets_owned.contains(&v.set) {
                                v.source_field = new.clone();
                            }
                        }
                    }
                }
                for c in &mut s.constraints {
                    rename_constraint_field(c, record, old, new);
                }
            }
            Transform::AddField {
                record,
                field,
                ty,
                default,
            } => {
                if !ty.admits(default) {
                    return Err(ModelError::invalid(format!(
                        "default {default} does not fit {ty}"
                    )));
                }
                let r = s
                    .record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                if r.field(field).is_some() {
                    return Err(ModelError::duplicate("field", format!("{record}.{field}")));
                }
                r.fields.push(FieldDef::new(field.clone(), ty.clone()));
            }
            Transform::DropField { record, field } => {
                let r = s
                    .record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                let before = r.fields.len();
                r.fields.retain(|f| f.name != *field);
                if r.fields.len() == before {
                    return Err(ModelError::unknown("field", format!("{record}.{field}")));
                }
                // The field must not be load-bearing elsewhere.
                for set in &s.sets {
                    if set.member == *record && set.keys.contains(field) {
                        return Err(ModelError::invalid(format!(
                            "cannot drop {record}.{field}: it is a key of set {}",
                            set.name
                        )));
                    }
                }
                let sets_owned: Vec<String> = s
                    .sets
                    .iter()
                    .filter(|st| st.owner.record_name() == Some(record.as_str()))
                    .map(|st| st.name.clone())
                    .collect();
                for r2 in &s.records {
                    for f in &r2.fields {
                        if let Some(v) = &f.virtual_via {
                            if v.source_field == *field && sets_owned.contains(&v.set) {
                                return Err(ModelError::invalid(format!(
                                    "cannot drop {record}.{field}: virtual field {}.{} sources it",
                                    r2.name, f.name
                                )));
                            }
                        }
                    }
                }
            }
            Transform::PromoteFieldToOwner {
                record,
                field,
                via_set,
                new_record,
                upper_set,
                lower_set,
            } => {
                let via = s
                    .set(via_set)
                    .ok_or_else(|| ModelError::unknown("set", via_set))?
                    .clone();
                if via.member != *record {
                    return Err(ModelError::invalid(format!(
                        "set {via_set} does not have {record} as member"
                    )));
                }
                let owner_name = via
                    .owner
                    .record_name()
                    .ok_or_else(|| {
                        ModelError::invalid(format!("cannot promote through system set {via_set}"))
                    })?
                    .to_string();
                if s.record(new_record).is_some() {
                    return Err(ModelError::duplicate("record", new_record));
                }
                let rec = s
                    .record(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?
                    .clone();
                let fdef = rec
                    .field(field)
                    .ok_or_else(|| ModelError::unknown("field", format!("{record}.{field}")))?
                    .clone();
                if fdef.is_virtual() {
                    return Err(ModelError::invalid(format!(
                        "cannot promote virtual field {record}.{field}"
                    )));
                }
                if via.keys.contains(field) {
                    return Err(ModelError::invalid(format!(
                        "cannot promote {record}.{field}: it is a key of {via_set}"
                    )));
                }

                // New record: the promoted field plus migrated virtual
                // fields of `record` that were routed via the split set.
                let mut new_fields = vec![FieldDef::new(field.clone(), fdef.ty.clone())];
                for f in &rec.fields {
                    if let Some(v) = &f.virtual_via {
                        if v.set == *via_set {
                            new_fields.push(FieldDef::virtual_field(
                                f.name.clone(),
                                f.ty.clone(),
                                upper_set.clone(),
                                v.source_field.clone(),
                            ));
                        }
                    }
                }
                s.records
                    .push(RecordTypeDef::new(new_record.clone(), new_fields));
                // Member record loses the promoted field and the migrated
                // virtual fields.
                let r = s
                    .record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                r.fields.retain(|f| {
                    f.name != *field && f.virtual_via.as_ref().is_none_or(|v| v.set != *via_set)
                });
                // Replace the set.
                s.sets.retain(|st| st.name != *via_set);
                s.sets.push(SetDef {
                    name: upper_set.clone(),
                    owner: SetOwner::Record(owner_name),
                    member: new_record.clone(),
                    keys: vec![field.clone()],
                    insertion: via.insertion,
                    retention: via.retention,
                });
                s.sets.push(SetDef {
                    name: lower_set.clone(),
                    owner: SetOwner::Record(new_record.clone()),
                    member: record.clone(),
                    keys: via.keys.clone(),
                    insertion: via.insertion,
                    retention: via.retention,
                });
                // Constraints attached to the split set re-attach to the
                // lower set (the member side keeps its semantics).
                for c in &mut s.constraints {
                    rename_constraint_set(c, via_set, lower_set);
                }
            }
            Transform::DemoteOwnerToField {
                mid_record,
                field,
                upper_set,
                lower_set,
                record,
                merged_set,
            } => {
                let upper = s
                    .set(upper_set)
                    .ok_or_else(|| ModelError::unknown("set", upper_set))?
                    .clone();
                let lower = s
                    .set(lower_set)
                    .ok_or_else(|| ModelError::unknown("set", lower_set))?
                    .clone();
                if upper.member != *mid_record
                    || lower.owner.record_name() != Some(mid_record.as_str())
                    || lower.member != *record
                {
                    return Err(ModelError::invalid(format!(
                        "sets {upper_set}/{lower_set} do not sandwich {mid_record}"
                    )));
                }
                let mid = s
                    .record(mid_record)
                    .ok_or_else(|| ModelError::unknown("record", mid_record))?
                    .clone();
                let fdef = mid
                    .field(field)
                    .ok_or_else(|| ModelError::unknown("field", format!("{mid_record}.{field}")))?
                    .clone();
                // Other record types must not reference the mid record.
                for st in &s.sets {
                    if st.name != *upper_set
                        && st.name != *lower_set
                        && (st.member == *mid_record
                            || st.owner.record_name() == Some(mid_record.as_str()))
                    {
                        return Err(ModelError::invalid(format!(
                            "record {mid_record} participates in set {}; cannot demote",
                            st.name
                        )));
                    }
                }
                // The member record regains the stored field, plus virtual
                // fields the mid record carried (re-routed via the merged
                // set).
                let r = s
                    .record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                r.fields.push(FieldDef::new(field.clone(), fdef.ty.clone()));
                let migrated: Vec<FieldDef> = mid
                    .fields
                    .iter()
                    .filter_map(|f| {
                        f.virtual_via.as_ref().map(|v| {
                            FieldDef::virtual_field(
                                f.name.clone(),
                                f.ty.clone(),
                                merged_set.clone(),
                                v.source_field.clone(),
                            )
                        })
                    })
                    .collect();
                s.record_mut(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?
                    .fields
                    .extend(migrated);
                // Remove the mid record and both sets; add the merged set.
                s.records.retain(|r| r.name != *mid_record);
                s.sets
                    .retain(|st| st.name != *upper_set && st.name != *lower_set);
                s.sets.push(SetDef {
                    name: merged_set.clone(),
                    owner: upper.owner.clone(),
                    member: record.clone(),
                    keys: lower.keys.clone(),
                    insertion: lower.insertion,
                    retention: lower.retention,
                });
                for c in &mut s.constraints {
                    rename_constraint_set(c, lower_set, merged_set);
                }
            }
            Transform::ChangeSetKeys { set, keys } => {
                let member = {
                    let sd = s.set(set).ok_or_else(|| ModelError::unknown("set", set))?;
                    sd.member.clone()
                };
                let rec = s
                    .record(&member)
                    .ok_or_else(|| ModelError::unknown("record", &member))?;
                for k in keys {
                    if rec.field(k).is_none() {
                        return Err(ModelError::unknown("field", format!("{member}.{k}")));
                    }
                }
                s.set_mut(set)
                    .ok_or_else(|| ModelError::unknown("set", set))?
                    .keys = keys.clone();
            }
            Transform::ChangeInsertion { set, insertion } => {
                s.set_mut(set)
                    .ok_or_else(|| ModelError::unknown("set", set))?
                    .insertion = *insertion;
            }
            Transform::ChangeRetention { set, retention } => {
                s.set_mut(set)
                    .ok_or_else(|| ModelError::unknown("set", set))?
                    .retention = *retention;
            }
            Transform::AddConstraint(c) => {
                c.validate_against(&s)?;
                if s.constraints.contains(c) {
                    return Err(ModelError::invalid(format!(
                        "constraint already declared: {c}"
                    )));
                }
                s.constraints.push(c.clone());
            }
            Transform::DropConstraint(c) => {
                let before = s.constraints.len();
                s.constraints.retain(|x| x != c);
                if s.constraints.len() == before {
                    return Err(ModelError::invalid(format!("constraint not declared: {c}")));
                }
            }
            Transform::DeleteWhere { record, field, .. } => {
                let r = s
                    .record(record)
                    .ok_or_else(|| ModelError::unknown("record", record))?;
                if r.field(field).is_none() {
                    return Err(ModelError::unknown("field", format!("{record}.{field}")));
                }
                // Schema is unchanged.
            }
        }
        s.validate()?;
        Ok(s)
    }

    /// The inverse operator, when one exists (Housel's condition). `None`
    /// for information-losing transforms.
    pub fn inverse(&self) -> Option<Transform> {
        match self {
            Transform::RenameRecord { old, new } => Some(Transform::RenameRecord {
                old: new.clone(),
                new: old.clone(),
            }),
            Transform::RenameSet { old, new } => Some(Transform::RenameSet {
                old: new.clone(),
                new: old.clone(),
            }),
            Transform::RenameField { record, old, new } => Some(Transform::RenameField {
                record: record.clone(),
                old: new.clone(),
                new: old.clone(),
            }),
            // Dropping the added field recovers the source schema exactly;
            // the default values the forward direction invented are not
            // source information.
            Transform::AddField { record, field, .. } => Some(Transform::DropField {
                record: record.clone(),
                field: field.clone(),
            }),
            Transform::DropField { .. } => None,
            Transform::PromoteFieldToOwner {
                record,
                field,
                via_set,
                new_record,
                upper_set,
                lower_set,
            } => Some(Transform::DemoteOwnerToField {
                mid_record: new_record.clone(),
                field: field.clone(),
                upper_set: upper_set.clone(),
                lower_set: lower_set.clone(),
                record: record.clone(),
                merged_set: via_set.clone(),
            }),
            Transform::DemoteOwnerToField {
                mid_record,
                field,
                upper_set,
                lower_set,
                record,
                merged_set,
            } => Some(Transform::PromoteFieldToOwner {
                record: record.clone(),
                field: field.clone(),
                via_set: merged_set.clone(),
                new_record: mid_record.clone(),
                upper_set: upper_set.clone(),
                lower_set: lower_set.clone(),
            }),
            // Key changes are invertible at schema level but the original
            // keys must be remembered by the caller; Restructuring handles
            // that by recording the prior keys.
            Transform::ChangeSetKeys { .. } => None,
            Transform::ChangeInsertion { set, insertion } => Some(Transform::ChangeInsertion {
                set: set.clone(),
                insertion: match insertion {
                    Insertion::Automatic => Insertion::Manual,
                    Insertion::Manual => Insertion::Automatic,
                },
            }),
            Transform::ChangeRetention { set, retention } => Some(Transform::ChangeRetention {
                set: set.clone(),
                retention: match retention {
                    Retention::Mandatory => Retention::Optional,
                    Retention::Optional => Retention::Mandatory,
                },
            }),
            Transform::AddConstraint(c) => Some(Transform::DropConstraint(c.clone())),
            Transform::DropConstraint(c) => Some(Transform::AddConstraint(c.clone())),
            Transform::DeleteWhere { .. } => None,
        }
    }

    /// Does the transform preserve all source information (§1.1)?
    pub fn preserves_information(&self) -> bool {
        !matches!(
            self,
            Transform::DropField { .. } | Transform::DeleteWhere { .. }
        )
    }

    /// Can the transform silently change the observable order of
    /// retrievals (§3.2 order dependence)?
    pub fn affects_ordering(&self) -> bool {
        matches!(
            self,
            Transform::ChangeSetKeys { .. }
                | Transform::PromoteFieldToOwner { .. }
                | Transform::DemoteOwnerToField { .. }
        )
    }

    /// Does the transform change integrity semantics (§3.1)?
    pub fn affects_integrity(&self) -> bool {
        matches!(
            self,
            Transform::ChangeInsertion { .. }
                | Transform::ChangeRetention { .. }
                | Transform::AddConstraint(_)
                | Transform::DropConstraint(_)
        )
    }
}

fn rename_constraint_set(c: &mut Constraint, old: &str, new: &str) {
    match c {
        Constraint::Existence { set }
        | Constraint::Characterizing { set }
        | Constraint::Cardinality { set, .. }
            if set == old =>
        {
            *set = new.to_string();
        }
        _ => {}
    }
}

fn rename_constraint_record(c: &mut Constraint, old: &str, new: &str) {
    match c {
        Constraint::NotNull { record, .. }
        | Constraint::Unique { record, .. }
        | Constraint::Domain { record, .. }
            if record == old =>
        {
            *record = new.to_string();
        }
        _ => {}
    }
}

fn rename_constraint_field(c: &mut Constraint, rec: &str, old: &str, new: &str) {
    match c {
        Constraint::NotNull { record, field } | Constraint::Domain { record, field, .. }
            if record == rec && field == old =>
        {
            *field = new.to_string();
        }
        Constraint::Unique { record, fields } if record == rec => {
            for f in fields {
                if f == old {
                    *f = new.to_string();
                }
            }
        }
        _ => {}
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::RenameRecord { old, new } => write!(f, "RENAME RECORD {old} TO {new}"),
            Transform::RenameSet { old, new } => write!(f, "RENAME SET {old} TO {new}"),
            Transform::RenameField { record, old, new } => {
                write!(f, "RENAME FIELD {record}.{old} TO {new}")
            }
            Transform::AddField {
                record,
                field,
                ty,
                default,
            } => write!(f, "ADD FIELD {record}.{field} {ty} DEFAULT {default}"),
            Transform::DropField { record, field } => {
                write!(f, "DROP FIELD {record}.{field}")
            }
            Transform::PromoteFieldToOwner {
                record,
                field,
                via_set,
                new_record,
                upper_set,
                lower_set,
            } => write!(
                f,
                "PROMOTE {record}.{field} VIA {via_set} INTO {new_record} \
                 SPLITTING INTO {upper_set}, {lower_set}"
            ),
            Transform::DemoteOwnerToField {
                mid_record,
                field,
                record,
                merged_set,
                ..
            } => write!(
                f,
                "DEMOTE {mid_record}.{field} INTO {record} MERGING AS {merged_set}"
            ),
            Transform::ChangeSetKeys { set, keys } => {
                write!(f, "CHANGE KEYS OF {set} TO ({})", keys.join(", "))
            }
            Transform::ChangeInsertion { set, insertion } => {
                let m = match insertion {
                    Insertion::Automatic => "AUTOMATIC",
                    Insertion::Manual => "MANUAL",
                };
                write!(f, "CHANGE INSERTION OF {set} TO {m}")
            }
            Transform::ChangeRetention { set, retention } => {
                let m = match retention {
                    Retention::Mandatory => "MANDATORY",
                    Retention::Optional => "OPTIONAL",
                };
                write!(f, "CHANGE RETENTION OF {set} TO {m}")
            }
            Transform::AddConstraint(c) => write!(f, "ADD CONSTRAINT {c}"),
            Transform::DropConstraint(c) => write!(f, "DROP CONSTRAINT {c}"),
            Transform::DeleteWhere {
                record,
                field,
                op,
                value,
            } => write!(f, "DELETE {record} WHERE {field} {} {value}", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 4.2/4.3 company schema.
    pub fn company() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    /// The paper's restructuring: Figure 4.2 → Figure 4.4.
    pub fn fig_4_4_transform() -> Transform {
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "DEPT-NAME".into(),
            via_set: "DIV-EMP".into(),
            new_record: "DEPT".into(),
            upper_set: "DIV-DEPT".into(),
            lower_set: "DEPT-EMP".into(),
        }
    }

    #[test]
    fn promote_produces_fig_4_4_schema() {
        let target = fig_4_4_transform().apply_schema(&company()).unwrap();
        // DEPT record with the promoted field and the migrated virtual.
        let dept = target.record("DEPT").unwrap();
        assert_eq!(dept.fields[0].name, "DEPT-NAME");
        assert!(dept.field("DIV-NAME").unwrap().is_virtual());
        // EMP lost DEPT-NAME and the old virtual DIV-NAME.
        let emp = target.record("EMP").unwrap();
        assert!(emp.field("DEPT-NAME").is_none());
        assert!(emp.field("DIV-NAME").is_none());
        // Set structure: DIV-DEPT and DEPT-EMP replace DIV-EMP.
        assert!(target.set("DIV-EMP").is_none());
        let upper = target.set("DIV-DEPT").unwrap();
        assert_eq!(upper.owner, SetOwner::Record("DIV".into()));
        assert_eq!(upper.member, "DEPT");
        assert_eq!(upper.keys, vec!["DEPT-NAME".to_string()]);
        let lower = target.set("DEPT-EMP").unwrap();
        assert_eq!(lower.owner, SetOwner::Record("DEPT".into()));
        assert_eq!(lower.member, "EMP");
        assert_eq!(lower.keys, vec!["EMP-NAME".to_string()]);
    }

    #[test]
    fn promote_then_demote_round_trips_schema() {
        let t = fig_4_4_transform();
        let mid = t.apply_schema(&company()).unwrap();
        let back = t.inverse().unwrap().apply_schema(&mid).unwrap();
        // Same structure up to field ordering within EMP.
        let src = company();
        assert_eq!(back.sets.len(), src.sets.len());
        for s in &src.sets {
            assert_eq!(back.set(&s.name), Some(s));
        }
        let src_emp = src.record("EMP").unwrap();
        let back_emp = back.record("EMP").unwrap();
        let mut a: Vec<&str> = src_emp.field_names();
        let mut b: Vec<&str> = back_emp.field_names();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn renames_cascade_through_references() {
        let s = company();
        let s2 = Transform::RenameRecord {
            old: "DIV".into(),
            new: "DIVISION".into(),
        }
        .apply_schema(&s)
        .unwrap();
        assert_eq!(
            s2.set("DIV-EMP").unwrap().owner,
            SetOwner::Record("DIVISION".into())
        );

        let s3 = Transform::RenameField {
            record: "DIV".into(),
            old: "DIV-NAME".into(),
            new: "DNAME".into(),
        }
        .apply_schema(&s)
        .unwrap();
        // System-set key follows.
        assert_eq!(s3.set("ALL-DIV").unwrap().keys, vec!["DNAME".to_string()]);
        // Virtual source follows.
        let emp = s3.record("EMP").unwrap();
        assert_eq!(
            emp.field("DIV-NAME")
                .unwrap()
                .virtual_via
                .as_ref()
                .unwrap()
                .source_field,
            "DNAME"
        );
    }

    #[test]
    fn rename_set_updates_virtuals_and_constraints() {
        let s = company().with_constraint(Constraint::Cardinality {
            set: "DIV-EMP".into(),
            min: 0,
            max: Some(100),
        });
        let s2 = Transform::RenameSet {
            old: "DIV-EMP".into(),
            new: "STAFF".into(),
        }
        .apply_schema(&s)
        .unwrap();
        let emp = s2.record("EMP").unwrap();
        assert_eq!(
            emp.field("DIV-NAME")
                .unwrap()
                .virtual_via
                .as_ref()
                .unwrap()
                .set,
            "STAFF"
        );
        assert!(matches!(
            &s2.constraints[0],
            Constraint::Cardinality { set, .. } if set == "STAFF"
        ));
    }

    #[test]
    fn drop_field_guards_keys_and_virtual_sources() {
        let s = company();
        // EMP-NAME is a key of DIV-EMP.
        assert!(Transform::DropField {
            record: "EMP".into(),
            field: "EMP-NAME".into(),
        }
        .apply_schema(&s)
        .is_err());
        // DIV.DIV-NAME feeds EMP's virtual field (and is a key).
        assert!(Transform::DropField {
            record: "DIV".into(),
            field: "DIV-NAME".into(),
        }
        .apply_schema(&s)
        .is_err());
        // AGE is free to go.
        let s2 = Transform::DropField {
            record: "EMP".into(),
            field: "AGE".into(),
        }
        .apply_schema(&s)
        .unwrap();
        assert!(s2.record("EMP").unwrap().field("AGE").is_none());
    }

    #[test]
    fn add_field_checks_default_type() {
        assert!(Transform::AddField {
            record: "EMP".into(),
            field: "SALARY".into(),
            ty: FieldType::Int(6),
            default: Value::str("lots"),
        }
        .apply_schema(&company())
        .is_err());
        let s2 = Transform::AddField {
            record: "EMP".into(),
            field: "SALARY".into(),
            ty: FieldType::Int(6),
            default: Value::Int(0),
        }
        .apply_schema(&company())
        .unwrap();
        assert!(s2.record("EMP").unwrap().field("SALARY").is_some());
    }

    #[test]
    fn classification_flags() {
        assert!(fig_4_4_transform().affects_ordering());
        assert!(fig_4_4_transform().preserves_information());
        assert!(!Transform::DropField {
            record: "EMP".into(),
            field: "AGE".into()
        }
        .preserves_information());
        assert!(Transform::ChangeRetention {
            set: "DIV-EMP".into(),
            retention: Retention::Mandatory
        }
        .affects_integrity());
    }

    #[test]
    fn inverses_are_inverses() {
        let t = Transform::RenameRecord {
            old: "DIV".into(),
            new: "D2".into(),
        };
        let fwd = t.apply_schema(&company()).unwrap();
        let back = t.inverse().unwrap().apply_schema(&fwd).unwrap();
        assert_eq!(back, company());
        assert!(Transform::DropField {
            record: "EMP".into(),
            field: "AGE".into()
        }
        .inverse()
        .is_none());
    }

    #[test]
    fn constraint_add_drop() {
        let c = Constraint::Existence {
            set: "DIV-EMP".into(),
        };
        let s2 = Transform::AddConstraint(c.clone())
            .apply_schema(&company())
            .unwrap();
        assert_eq!(s2.constraints.len(), 1);
        // Double add rejected.
        assert!(Transform::AddConstraint(c.clone())
            .apply_schema(&s2)
            .is_err());
        let s3 = Transform::DropConstraint(c.clone())
            .apply_schema(&s2)
            .unwrap();
        assert!(s3.constraints.is_empty());
        assert!(Transform::DropConstraint(c).apply_schema(&s3).is_err());
    }

    #[test]
    fn display_is_informative() {
        assert!(fig_4_4_transform()
            .to_string()
            .contains("PROMOTE EMP.DEPT-NAME"));
    }
}
