//! Cross-model mappings: network ⇄ relational and network → hierarchical.
//!
//! §4.1's central claim is that "since the conversion takes place at a level
//! of abstraction that is removed from an actual DBMS language, conversion
//! from one DBMS to another to account for some schema changes is possible."
//! These mappings provide the *database* side of that story (the program
//! side is the converter's cross-model lowering).
//!
//! The network→relational encoding is the classic database-key encoding:
//! every record type becomes a table carrying a synthetic `DBKEY` column
//! (the record identifier) and, for each record-owned set it belongs to, a
//! `<SET>-OWNER` column holding the owner's `DBKEY` (null when
//! disconnected). The encoding is lossless and mechanically invertible,
//! which is what lets the bridge baseline reconstruct network-form data
//! from a relational target.

use dbpc_datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc_datamodel::network::{NetworkSchema, SetOwner};
use dbpc_datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
use dbpc_datamodel::types::FieldType;
use dbpc_datamodel::value::Value;
use dbpc_storage::{DbError, DbResult, HierDb, NetworkDb, RecordId, RelationalDb, SYSTEM_OWNER};
use std::collections::BTreeMap;

/// Name of the synthetic record-identity column.
pub const DBKEY: &str = "DBKEY";

/// Owner-reference column name for a set.
pub fn owner_column(set: &str) -> String {
    format!("{set}-OWNER")
}

/// Map a network schema to its relational encoding.
pub fn network_schema_to_relational(schema: &NetworkSchema) -> RelationalSchema {
    let mut rel = RelationalSchema::new(schema.name.clone());
    for r in &schema.records {
        let mut cols = vec![ColumnDef::new(DBKEY, FieldType::Int(10))];
        for f in &r.fields {
            if f.is_virtual() {
                // Virtual fields are derivable: they do not materialize.
                continue;
            }
            cols.push(ColumnDef::new(f.name.clone(), f.ty.clone()));
        }
        let mut table = TableDef::new(r.name.clone(), cols).with_key(vec![DBKEY]);
        for s in schema.sets_with_member(&r.name) {
            if let SetOwner::Record(owner) = &s.owner {
                table
                    .columns
                    .push(ColumnDef::new(owner_column(&s.name), FieldType::Int(10)));
                table
                    .foreign_keys
                    .push(dbpc_datamodel::relational::ForeignKey {
                        columns: vec![owner_column(&s.name)],
                        parent_table: owner.clone(),
                        parent_columns: vec![DBKEY.to_string()],
                    });
            }
        }
        rel.tables.push(table);
    }
    rel
}

/// Translate a network database into its relational encoding.
pub fn network_db_to_relational(db: &NetworkDb) -> DbResult<RelationalDb> {
    let rel_schema = network_schema_to_relational(db.schema());
    let mut out = RelationalDb::new(rel_schema)?;
    for r in &db.schema().records {
        let member_sets: Vec<String> = db
            .schema()
            .sets_with_member(&r.name)
            .iter()
            .filter(|s| !s.is_system())
            .map(|s| s.name.clone())
            .collect();
        for id in db.records_of_type(&r.name) {
            let rec = db.get(id)?;
            let mut vals: Vec<(String, Value)> = vec![(DBKEY.to_string(), Value::Int(id.0 as i64))];
            for (i, f) in r.fields.iter().enumerate() {
                if f.is_virtual() {
                    continue;
                }
                vals.push((f.name.clone(), rec.values[i].clone()));
            }
            for set in &member_sets {
                let owner = db.owner_in(set, id)?;
                let v = match owner {
                    Some(o) if o != SYSTEM_OWNER => Value::Int(o.0 as i64),
                    _ => Value::Null,
                };
                vals.push((owner_column(set), v));
            }
            let vref: Vec<(&str, Value)> =
                vals.iter().map(|(c, v)| (c.as_str(), v.clone())).collect();
            out.insert(&r.name, &vref)?;
        }
    }
    Ok(out)
}

/// Reconstruct a network database from its relational encoding — the
/// inverse mapping (Housel's requirement, and the bridge's reconstruction
/// step).
pub fn relational_db_to_network(rel: &RelationalDb, schema: &NetworkSchema) -> DbResult<NetworkDb> {
    let mut out = NetworkDb::new(schema.clone())?;
    let mut idmap: BTreeMap<i64, RecordId> = BTreeMap::new();
    // Owner types before member types.
    let mut order: Vec<&str> = Vec::new();
    let mut remaining: Vec<&str> = schema.records.iter().map(|r| r.name.as_str()).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|r| {
            let ready = schema.sets_with_member(r).iter().all(|s| match &s.owner {
                SetOwner::System => true,
                SetOwner::Record(o) => order.contains(&o.as_str()),
            });
            if ready {
                order.push(r);
            }
            !ready
        });
        if remaining.len() == before {
            return Err(DbError::constraint("ownership cycle".to_string()));
        }
    }
    for rtype in order {
        let rdef = schema.record(rtype).unwrap();
        let tdef = rel
            .schema()
            .table(rtype)
            .ok_or_else(|| DbError::unknown("table", rtype))?
            .clone();
        // Rows sorted by DBKEY reproduce creation order.
        let mut rows = rel.scan(rtype)?;
        let key_idx = tdef
            .column_index(DBKEY)
            .ok_or_else(|| DbError::unknown("column", DBKEY))?;
        rows.sort_by(|a, b| a[key_idx].total_cmp(&b[key_idx]));
        for row in rows {
            let dbkey = row[key_idx]
                .as_int()
                .ok_or_else(|| DbError::constraint("non-integer DBKEY".to_string()))?;
            let mut vals: Vec<(String, Value)> = Vec::new();
            for f in &rdef.fields {
                if f.is_virtual() {
                    continue;
                }
                let idx = tdef
                    .column_index(&f.name)
                    .ok_or_else(|| DbError::unknown("column", &f.name))?;
                vals.push((f.name.clone(), row[idx].clone()));
            }
            let mut connects: Vec<(String, RecordId)> = Vec::new();
            for s in schema.sets_with_member(rtype) {
                if s.is_system() {
                    continue;
                }
                let col = owner_column(&s.name);
                let idx = tdef
                    .column_index(&col)
                    .ok_or_else(|| DbError::unknown("column", &col))?;
                if let Some(owner_key) = row[idx].as_int() {
                    let owner = idmap.get(&owner_key).ok_or_else(|| {
                        DbError::constraint(format!("dangling owner {owner_key}"))
                    })?;
                    connects.push((s.name.clone(), *owner));
                }
            }
            let vref: Vec<(&str, Value)> =
                vals.iter().map(|(c, v)| (c.as_str(), v.clone())).collect();
            let cref: Vec<(&str, RecordId)> =
                connects.iter().map(|(s, o)| (s.as_str(), *o)).collect();
            let new_id = out.store(rtype, &vref, &cref)?;
            idmap.insert(dbkey, new_id);
        }
    }
    Ok(out)
}

/// Map a forest-shaped network schema to a hierarchical schema. Fails when
/// a record type is a member of more than one record-owned set (a genuine
/// network, not expressible as a hierarchy — the structural gap between the
/// two models the paper's §3.1 discusses).
pub fn network_schema_to_hier(schema: &NetworkSchema) -> DbResult<HierSchema> {
    // Find each record's unique parent (via record-owned sets).
    let mut parent: BTreeMap<&str, (&str, Option<String>)> = BTreeMap::new();
    for r in &schema.records {
        let owned: Vec<_> = schema
            .sets_with_member(&r.name)
            .into_iter()
            .filter(|s| !s.is_system())
            .collect();
        if owned.len() > 1 {
            return Err(DbError::constraint(format!(
                "record {} has {} owners; not a hierarchy",
                r.name,
                owned.len()
            )));
        }
        if let Some(s) = owned.first() {
            parent.insert(
                r.name.as_str(),
                (s.owner.record_name().unwrap(), s.keys.first().cloned()),
            );
        }
    }
    fn build(
        schema: &NetworkSchema,
        parent: &BTreeMap<&str, (&str, Option<String>)>,
        name: &str,
    ) -> SegmentDef {
        let r = schema.record(name).unwrap();
        let fields = r
            .fields
            .iter()
            .filter(|f| !f.is_virtual())
            .cloned()
            .collect();
        let mut seg = SegmentDef::new(name, fields);
        if let Some((_, Some(key))) = parent.get(name) {
            seg.seq_field = Some(key.clone());
        } else if let Some(sys) = schema.system_sets_of(name).first() {
            if let Some(k) = sys.keys.first() {
                seg.seq_field = Some(k.clone());
            }
        }
        for child in &schema.records {
            if parent.get(child.name.as_str()).map(|(p, _)| *p) == Some(name) {
                seg.children.push(build(schema, parent, &child.name));
            }
        }
        seg
    }
    let mut hier = HierSchema::new(schema.name.clone());
    for r in &schema.records {
        if !parent.contains_key(r.name.as_str()) {
            hier.roots.push(build(schema, &parent, &r.name));
        }
    }
    hier.validate()
        .map_err(|e| DbError::constraint(e.to_string()))?;
    Ok(hier)
}

/// Translate a forest-shaped network database into a hierarchical one.
pub fn network_db_to_hier(db: &NetworkDb) -> DbResult<HierDb> {
    let hier_schema = network_schema_to_hier(db.schema())?;
    let mut out = HierDb::new(hier_schema.clone())?;
    let mut idmap: BTreeMap<RecordId, u64> = BTreeMap::new();
    // Parents before children: hierarchic order of the segment types.
    let type_order: Vec<String> = hier_schema
        .hierarchic_order()
        .into_iter()
        .map(String::from)
        .collect();
    for rtype in &type_order {
        let rdef = db.schema().record(rtype).unwrap().clone();
        let parent_set: Option<String> = db
            .schema()
            .sets_with_member(rtype)
            .into_iter()
            .filter(|s| !s.is_system())
            .map(|s| s.name.clone())
            .next();
        for id in db.records_of_type(rtype) {
            let rec = db.get(id)?;
            let vals: Vec<(String, Value)> = rdef
                .fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.is_virtual())
                .map(|(i, f)| (f.name.clone(), rec.values[i].clone()))
                .collect();
            let parent_occ = match &parent_set {
                None => None,
                Some(set) => match db.owner_in(set, id)? {
                    Some(o) if o != SYSTEM_OWNER => Some(idmap[&o]),
                    _ => {
                        return Err(DbError::constraint(format!(
                            "record #{} disconnected from {set}; cannot place in hierarchy",
                            id.0
                        )))
                    }
                },
            };
            let vref: Vec<(&str, Value)> =
                vals.iter().map(|(f, v)| (f.as_str(), v.clone())).collect();
            let seg = out.insert(rtype, &vref, parent_occ)?;
            idmap.insert(id, seg);
        }
    }
    Ok(out)
}

/// Reorder the child segment types of `parent` in a hierarchical schema —
/// the Mehl & Wang transformation (paper ref 11): "changes in the
/// hierarchical order of an IMS structure". `new_order` must be a
/// permutation of the existing child type names.
pub fn reorder_hier_children(
    schema: &HierSchema,
    parent: &str,
    new_order: &[&str],
) -> DbResult<HierSchema> {
    let mut out = schema.clone();
    let seg = out
        .segment_mut(parent)
        .ok_or_else(|| DbError::unknown("segment", parent))?;
    if seg.children.len() != new_order.len()
        || !new_order
            .iter()
            .all(|n| seg.children.iter().any(|c| &c.name == n))
    {
        return Err(DbError::constraint(format!(
            "new order is not a permutation of {parent}'s children"
        )));
    }
    let mut reordered = Vec::with_capacity(seg.children.len());
    for n in new_order {
        let idx = seg.children.iter().position(|c| &c.name == n).unwrap();
        reordered.push(seg.children.remove(idx));
    }
    seg.children = reordered;
    out.validate()
        .map_err(|e| DbError::constraint(e.to_string()))?;
    Ok(out)
}

/// Translate a hierarchical database to a reordered schema: same segment
/// occurrences, new hierarchic sequence.
pub fn translate_hier_reorder(db: &HierDb, new_schema: &HierSchema) -> DbResult<HierDb> {
    let mut out = HierDb::new(new_schema.clone())?;
    let mut idmap: BTreeMap<u64, u64> = BTreeMap::new();
    // Reinsert in the OLD preorder; the engine re-groups children by the
    // new type ranks.
    for id in db.preorder() {
        let inst = db.get(id)?;
        let def = db
            .schema()
            .segment(&inst.seg_type)
            .ok_or_else(|| DbError::unknown("segment", &inst.seg_type))?;
        let vals: Vec<(&str, Value)> = def
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), inst.values[i].clone()))
            .collect();
        let parent = inst.parent.map(|p| idmap[&p]);
        let new_id = out.insert(&inst.seg_type, &vals, parent)?;
        idmap.insert(id, new_id);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        for (n, a) in [("JONES", 34), ("ADAMS", 28)] {
            db.store(
                "EMP",
                &[("EMP-NAME", Value::str(n)), ("AGE", Value::Int(a))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn relational_encoding_has_dbkey_and_owner_columns() {
        let rel = network_schema_to_relational(&company_schema());
        let emp = rel.table("EMP").unwrap();
        assert!(emp.column(DBKEY).is_some());
        assert!(emp.column("DIV-EMP-OWNER").is_some());
        // Virtual field does not materialize.
        assert!(emp.column("DIV-NAME").is_none());
        rel.validate().unwrap();
    }

    #[test]
    fn network_to_relational_round_trips() {
        let src = company_db();
        let rel = network_db_to_relational(&src).unwrap();
        assert_eq!(rel.row_count("EMP").unwrap(), 2);
        let back = relational_db_to_network(&rel, src.schema()).unwrap();
        assert_eq!(back.records_of_type("EMP").len(), 2);
        // Set membership and order survive.
        let mach = back.records_of_type("DIV")[0];
        let names: Vec<Value> = back
            .members_of("DIV-EMP", mach)
            .unwrap()
            .iter()
            .map(|&e| back.field_value(e, "EMP-NAME").unwrap())
            .collect();
        assert_eq!(names, vec![Value::str("ADAMS"), Value::str("JONES")]);
        // Virtual field resolves again after reconstruction.
        let emp = back.records_of_type("EMP")[0];
        assert_eq!(
            back.field_value(emp, "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
    }

    #[test]
    fn hier_mapping_builds_forest() {
        let hier = network_schema_to_hier(&company_schema()).unwrap();
        assert_eq!(hier.hierarchic_order(), vec!["DIV", "EMP"]);
        assert_eq!(
            hier.segment("EMP").unwrap().seq_field.as_deref(),
            Some("EMP-NAME")
        );
    }

    #[test]
    fn hier_db_translation_preserves_structure() {
        let src = company_db();
        let h = network_db_to_hier(&src).unwrap();
        assert_eq!(h.segment_count(), 3);
        let emps = h.occurrences_of("EMP");
        let names: Vec<Value> = emps
            .iter()
            .map(|&e| h.field_value(e, "EMP-NAME").unwrap())
            .collect();
        assert_eq!(names, vec![Value::str("ADAMS"), Value::str("JONES")]);
    }

    #[test]
    fn true_network_rejected_by_hier_mapping() {
        // COURSE-OFFERING has two owners: a genuine network.
        let s = NetworkSchema::new("SCHOOL")
            .with_record(RecordTypeDef::new(
                "COURSE",
                vec![FieldDef::new("CNO", FieldType::Char(6))],
            ))
            .with_record(RecordTypeDef::new(
                "SEMESTER",
                vec![FieldDef::new("S", FieldType::Char(4))],
            ))
            .with_record(RecordTypeDef::new(
                "COURSE-OFFERING",
                vec![FieldDef::new("ID", FieldType::Char(8))],
            ))
            .with_set(SetDef::owned("CO", "COURSE", "COURSE-OFFERING", vec![]))
            .with_set(SetDef::owned("SO", "SEMESTER", "COURSE-OFFERING", vec![]));
        assert!(network_schema_to_hier(&s).is_err());
    }
}
