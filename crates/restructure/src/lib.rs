//! # dbpc-restructure
//!
//! The restructuring substrate: schema transformation operators, the data
//! translator that carries a stored database across a transformation, and
//! cross-model mappings.
//!
//! The paper's problem statement (§1.1) takes as *given* "a new database
//! schema and a definition of a restructuring to some new (logical) form";
//! the Maryland approach (§4.2) treats "a conversion … as a sequence of
//! transformations applied to the source schema" where "these same
//! transformations are also used to translate the database and to convert
//! the DML statements". This crate supplies the first two uses — schema and
//! data — while `dbpc-convert` supplies the third (program conversion),
//! keyed off the very same [`Transform`] values.
//!
//! Operator inverses implement Housel's requirement (ref 12) that "the
//! source database can be reconstructed from the target database by
//! applying some inverse operators" — which is also what the bridge-program
//! baseline needs at run time.

pub mod crossmodel;
pub mod data;
pub mod durable;
pub mod sequence;
pub mod stats;
pub mod transform;

pub use data::{
    resume_translation, translate_batched, BatchedOutcome, TranslationCheckpoint, TRANSLATION_BATCH,
};
pub use durable::{translate_durable, DurableOutcome, DurableTranslationOptions};
pub use sequence::Restructuring;
pub use transform::Transform;
