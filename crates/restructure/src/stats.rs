//! Translation-side work counters, recorded through `dbpc-obs`.
//!
//! Same contract as the storage engines' `AccessStats` (PR 1): the
//! counters make the *work done* by a data translation observable —
//! tests and benches assert that translating an N-record database performs
//! O(record types) schema-level work, not O(N) — while staying strictly
//! diagnostic: no translation result or comparison ever depends on them.
//!
//! Since PR 5 the counters live in the ambient `dbpc-obs` metric sheet
//! (thread-local, so parallel study harnesses can bracket a unit of work
//! per worker without locks) under the `restructure.*` names; this module
//! keeps [`TranslationProfile`] as a thin typed view over that sheet for
//! existing call sites.

pub use dbpc_obs::MetricsFrame;

/// Metric name for whole-schema clones (see [`TranslationProfile`]).
pub const SCHEMA_CLONES: &str = "restructure.schema_clones";
/// Metric name for per-record-type translation plans built.
pub const RECORD_TYPE_PREPS: &str = "restructure.record_type_preps";
/// Metric name for records rebuilt through the typed store path.
pub const RECORDS_STORED: &str = "restructure.records_stored";

/// Snapshot of this thread's translation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationProfile {
    /// Whole-schema (or whole-database) clones. One per translation: the
    /// target schema moved into the rebuilt database (or, for `DeleteWhere`,
    /// the single database clone that is then erased in place).
    pub schema_clones: u64,
    /// Per-record-type translation plans built (field-source resolution,
    /// set-connection lookup). O(record types) per translation.
    pub record_type_preps: u64,
    /// Records rebuilt through the typed/constrained store path.
    pub records_stored: u64,
}

impl TranslationProfile {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &TranslationProfile) -> TranslationProfile {
        TranslationProfile {
            schema_clones: self.schema_clones - earlier.schema_clones,
            record_type_preps: self.record_type_preps - earlier.record_type_preps,
            records_stored: self.records_stored - earlier.records_stored,
        }
    }

    /// Read the `restructure.*` counters out of a merged metrics frame.
    pub fn from_frame(frame: &MetricsFrame) -> TranslationProfile {
        TranslationProfile {
            schema_clones: frame.counter(SCHEMA_CLONES),
            record_type_preps: frame.counter(RECORD_TYPE_PREPS),
            records_stored: frame.counter(RECORDS_STORED),
        }
    }
}

pub(crate) fn count_schema_clone() {
    dbpc_obs::count(SCHEMA_CLONES, 1);
}

pub(crate) fn count_type_prep() {
    dbpc_obs::count(RECORD_TYPE_PREPS, 1);
}

/// Batches per-record `records_stored` increments into one ambient-sheet
/// write, flushed on drop. The per-record translation loops are the hottest
/// instrumented path in the workspace (thousands of records per study cell);
/// counting each store individually would dominate the recording premium.
/// Drop-flushing keeps totals exact on every exit: completion, simulated
/// crash, and `?` error returns alike.
pub(crate) struct StoredTally(u64);

impl StoredTally {
    pub(crate) fn new() -> StoredTally {
        StoredTally(0)
    }

    pub(crate) fn bump(&mut self) {
        self.0 += 1;
    }
}

impl Drop for StoredTally {
    fn drop(&mut self) {
        if self.0 > 0 {
            dbpc_obs::count(RECORDS_STORED, self.0);
        }
    }
}

/// This thread's cumulative counters.
pub fn snapshot() -> TranslationProfile {
    TranslationProfile::from_frame(&dbpc_obs::local_snapshot())
}

/// Zero this thread's counters (test/bench isolation).
pub fn reset() {
    dbpc_obs::local_remove(SCHEMA_CLONES);
    dbpc_obs::local_remove(RECORD_TYPE_PREPS);
    dbpc_obs::local_remove(RECORDS_STORED);
}
