//! Translation-side work counters.
//!
//! Same contract as the storage engines' `AccessStats` (PR 1): the
//! counters make the *work done* by a data translation observable —
//! tests and benches assert that translating an N-record database performs
//! O(record types) schema-level work, not O(N) — while staying strictly
//! diagnostic: no translation result or comparison ever depends on them.
//!
//! Counters are thread-local so parallel study harnesses can bracket a
//! unit of work per worker without locks or cross-thread noise.

use std::cell::Cell;

/// Snapshot of this thread's translation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationProfile {
    /// Whole-schema (or whole-database) clones. One per translation: the
    /// target schema moved into the rebuilt database (or, for `DeleteWhere`,
    /// the single database clone that is then erased in place).
    pub schema_clones: u64,
    /// Per-record-type translation plans built (field-source resolution,
    /// set-connection lookup). O(record types) per translation.
    pub record_type_preps: u64,
    /// Records rebuilt through the typed/constrained store path.
    pub records_stored: u64,
}

impl TranslationProfile {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &TranslationProfile) -> TranslationProfile {
        TranslationProfile {
            schema_clones: self.schema_clones - earlier.schema_clones,
            record_type_preps: self.record_type_preps - earlier.record_type_preps,
            records_stored: self.records_stored - earlier.records_stored,
        }
    }
}

thread_local! {
    static SCHEMA_CLONES: Cell<u64> = const { Cell::new(0) };
    static TYPE_PREPS: Cell<u64> = const { Cell::new(0) };
    static RECORDS_STORED: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn count_schema_clone() {
    SCHEMA_CLONES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_type_prep() {
    TYPE_PREPS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_record_stored() {
    RECORDS_STORED.with(|c| c.set(c.get() + 1));
}

/// This thread's cumulative counters.
pub fn snapshot() -> TranslationProfile {
    TranslationProfile {
        schema_clones: SCHEMA_CLONES.with(|c| c.get()),
        record_type_preps: TYPE_PREPS.with(|c| c.get()),
        records_stored: RECORDS_STORED.with(|c| c.get()),
    }
}

/// Zero this thread's counters (test/bench isolation).
pub fn reset() {
    SCHEMA_CLONES.with(|c| c.set(0));
    TYPE_PREPS.with(|c| c.set(0));
    RECORDS_STORED.with(|c| c.set(0));
}
