//! Durable, restartable data translation: the batch checkpoints of
//! [`crate::data`] made crash-safe through a write-ahead log.
//!
//! [`translate_batched`][crate::data::translate_batched] already models a
//! crash as an in-memory [`TranslationCheckpoint`] — useful for studying
//! *bounded rework*, but the checkpoint dies with the process. This module
//! closes that gap: a [`TranslationJournal`] implementation appends one
//! WAL record per batch boundary (through the `dbpc-storage` disk stack —
//! paged [`FileMgr`], framed/checksummed [`LogMgr`], flushed before the
//! crash plan is consulted), and recovery rebuilds the checkpoint from the
//! log in a **fresh process**, then re-enters the translator exactly where
//! the in-memory resume would.
//!
//! One entry point serves both lives of the process:
//! [`translate_durable`] first replays whatever the journal under `root`
//! holds (nothing, some batches, or a completed run), then continues — so
//! the program a supervisor restarts after `kill -9` is the same program
//! it started the first time. The restart-recovery experiment (E20) kills
//! a translation at every WAL boundary and asserts the recovered output's
//! engine and [`StatCatalog`][dbpc_storage::StatCatalog] fingerprints are
//! byte-identical to the one-shot translation's.
//!
//! ## Record design: logical deltas, physical log
//!
//! A batch record does not carry page images; it carries the *front-door
//! calls* the batch performed, in a self-contained form:
//!
//! * **stores** — every record the batch created (`id` above the previous
//!   boundary's high-water mark), with its values and the set connections
//!   re-derived from the output database. Replay issues the same `store`
//!   calls against the rebuilt output and checks the engine assigns the
//!   same ids.
//! * **id/group map deltas** — the translator bookkeeping added this
//!   batch, identified the same way (fresh target ids).
//! * **the cursor** — `(phase, offset, batches_done)`, the exact
//!   [`TranslationCheckpoint`] position.
//!
//! `DeleteWhere` batches erase instead of storing; their records carry the
//! cursor only, and replay re-derives the doomed list from the (immutable)
//! source database and erases the cursor range — the same calls the
//! original run made. Replaying through the mutation API means recovery
//! inherits every constraint check, and the recovered state is *defined*
//! to be call-identical, hence fingerprint-identical, to the pre-crash
//! state.

use crate::data::{
    self, erase_victims, resume_journaled, translate_journaled, BatchedOutcome,
    TranslationCheckpoint, TranslationJournal, TRANSLATION_BATCH,
};
use crate::transform::Transform;
use dbpc_storage::disk::codec::{ByteReader, ByteWriter};
use dbpc_storage::disk::{DiskFaultPlan, FileMgr, LogMgr, DEFAULT_PAGE_SIZE};
use dbpc_storage::keys::KeyTuple;
use dbpc_storage::{DbError, DbResult, NetworkDb, RecordId, StoredRecord, SYSTEM_OWNER};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::Arc;

/// File name of the translation write-ahead log under the journal root.
pub const TRANSLATION_WAL: &str = "translation.wal";

/// Metric: batches replayed from a translation WAL during recovery.
pub const WAL_REPLAYED_BATCHES: &str = "restructure.wal_replayed_batches";

const JOURNAL_MAGIC: u64 = u64::from_le_bytes(*b"DBPCTJN1");
const TAG_HEADER: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_COMPLETE: u8 = 3;

/// Configuration of a durable translation run.
#[derive(Debug, Clone)]
pub struct DurableTranslationOptions {
    /// Units of work per WAL record (see [`TRANSLATION_BATCH`]).
    pub batch: usize,
    /// Page size of the journal's block file.
    pub page_size: usize,
    /// Deterministic disk faults to inject into journal I/O.
    pub faults: Option<DiskFaultPlan>,
}

impl Default for DurableTranslationOptions {
    fn default() -> Self {
        DurableTranslationOptions {
            batch: TRANSLATION_BATCH,
            page_size: DEFAULT_PAGE_SIZE,
            faults: None,
        }
    }
}

/// How a [`translate_durable`] call ended.
#[allow(clippy::large_enum_variant)] // consumed once at the call site; boxing the engine buys nothing
pub enum DurableOutcome {
    /// The translation ran (or recovered) to completion.
    Complete {
        out: NetworkDb,
        /// Batches replayed from the journal before continuing — `0` on an
        /// uninterrupted first run.
        batches_replayed: usize,
    },
    /// The crash plan fired; the journal holds everything up to and
    /// including the boundary it fired at.
    Crashed {
        batches_done: usize,
        batches_replayed: usize,
    },
}

/// Fingerprint pinning a journal to its transform (the source database is
/// pinned by its own fingerprint).
fn transform_fingerprint(transform: &Transform) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{transform:?}").hash(&mut h);
    h.finish()
}

fn disk_err(e: impl std::fmt::Display) -> DbError {
    DbError::constraint(format!("translation journal: {e}"))
}

/// Translate `db` across `transform` with the journal rooted at `root`,
/// recovering first if the journal already holds progress. `crash` is the
/// batch-boundary crash plan (fed the zero-based boundary index); a
/// cross-process harness exits the process inside it — the boundary's
/// record is flushed before the plan is consulted, so the kill loses no
/// committed batch.
pub fn translate_durable(
    db: &NetworkDb,
    transform: &Transform,
    root: &Path,
    opts: &DurableTranslationOptions,
    crash: &mut dyn FnMut(usize) -> bool,
) -> DbResult<DurableOutcome> {
    let fm = Arc::new(
        FileMgr::new(root, opts.page_size)
            .map_err(disk_err)?
            .with_faults(opts.faults.clone()),
    );
    let (log, records) = LogMgr::open(Arc::clone(&fm), TRANSLATION_WAL).map_err(disk_err)?;
    let mut journal = WalJournal {
        log,
        last_max: 0,
        erase_end: erase_extent(db, transform),
    };
    if records.is_empty() {
        // Fresh run: stamp the journal with what it is a journal *of*.
        let mut w = ByteWriter::new();
        w.put_u8(TAG_HEADER);
        w.put_u64(JOURNAL_MAGIC);
        w.put_u64(db.fingerprint());
        w.put_u64(transform_fingerprint(transform));
        journal.log.append(&w.into_bytes()).map_err(disk_err)?;
        journal.log.flush().map_err(disk_err)?;
        journal.last_max = max_id(&initial_out(db, transform)?);
        let outcome = translate_journaled(db, transform, opts.batch, crash, &mut journal)?;
        return finish(outcome, &mut journal, 0);
    }
    let recovered = replay(db, transform, &records)?;
    dbpc_obs::count(WAL_REPLAYED_BATCHES, recovered.batches as u64);
    journal.last_max = max_id(&recovered.out);
    if recovered.complete {
        data::refresh_stats(&recovered.out);
        return Ok(DurableOutcome::Complete {
            out: recovered.out,
            batches_replayed: recovered.batches,
        });
    }
    let ckpt = TranslationCheckpoint::from_parts(
        db.fingerprint(),
        recovered.phase,
        recovered.offset,
        recovered.batches,
        recovered.out,
        recovered.idmap,
        recovered.group_map,
    );
    let outcome = resume_journaled(db, transform, ckpt, opts.batch, crash, &mut journal)?;
    finish(outcome, &mut journal, recovered.batches)
}

/// Seal a finished run (completion record carrying the tail delta) or
/// report the in-process crash — either way the journal already holds
/// every completed batch.
fn finish(
    outcome: BatchedOutcome,
    journal: &mut WalJournal,
    batches_replayed: usize,
) -> DbResult<DurableOutcome> {
    match outcome {
        BatchedOutcome::Complete(out) => {
            // The final units since the last boundary never saw a tick;
            // the completion record carries them the same way a batch
            // record would.
            journal.append_delta(
                TAG_COMPLETE,
                0,
                journal.erase_end,
                0,
                &out,
                &BTreeMap::new(),
                &BTreeMap::new(),
            )?;
            Ok(DurableOutcome::Complete {
                out,
                batches_replayed,
            })
        }
        BatchedOutcome::Crashed(ckpt) => Ok(DurableOutcome::Crashed {
            batches_done: ckpt.batches_done(),
            batches_replayed,
        }),
    }
}

/// The output database a translation starts from (before any batch).
fn initial_out(db: &NetworkDb, transform: &Transform) -> DbResult<NetworkDb> {
    match transform {
        Transform::DeleteWhere { .. } => Ok(db.clone()),
        _ => {
            let schema = transform
                .apply_schema(db.schema())
                .map_err(|e| DbError::constraint(e.to_string()))?;
            NetworkDb::new(schema)
        }
    }
}

/// End offset of the erase plan (`DeleteWhere` only): where the completion
/// record's cursor must point so replay erases the tail range.
fn erase_extent(db: &NetworkDb, transform: &Transform) -> u64 {
    match transform {
        Transform::DeleteWhere {
            record,
            field,
            op,
            value,
        } => erase_victims(db, record, field, op, value).len() as u64,
        _ => 0,
    }
}

fn max_id(out: &NetworkDb) -> u64 {
    out.max_record_id().map(|r| r.0).unwrap_or(0)
}

/// The journaling side: one appended + flushed record per batch boundary.
struct WalJournal {
    log: LogMgr,
    /// Highest output record id already journaled; everything above it is
    /// this batch's store delta.
    last_max: u64,
    /// See [`erase_extent`].
    erase_end: u64,
}

impl WalJournal {
    #[allow(clippy::too_many_arguments)]
    fn append_delta(
        &mut self,
        tag: u8,
        phase: usize,
        offset: u64,
        batches_done: usize,
        out: &NetworkDb,
        idmap: &BTreeMap<RecordId, RecordId>,
        group_map: &BTreeMap<(RecordId, KeyTuple), RecordId>,
    ) -> DbResult<()> {
        let stores: Vec<StoredRecord> = out.records_above(RecordId(self.last_max));
        let mut w = ByteWriter::new();
        w.put_u8(tag);
        w.put_u64(phase as u64);
        w.put_u64(offset);
        w.put_u64(batches_done as u64);
        w.put_u32(stores.len() as u32);
        for rec in &stores {
            w.put_u64(rec.id.0);
            w.put_str(&rec.rtype);
            w.put_u32(rec.values.len() as u32);
            for v in &rec.values {
                w.put_value(v);
            }
            let connects = connects_of(out, rec)?;
            w.put_u32(connects.len() as u32);
            for (set, owner) in &connects {
                w.put_str(set);
                w.put_u64(*owner);
            }
        }
        let id_delta: Vec<(&RecordId, &RecordId)> = idmap
            .iter()
            .filter(|(_, new)| new.0 > self.last_max)
            .collect();
        w.put_u32(id_delta.len() as u32);
        for (old, new) in &id_delta {
            w.put_u64(old.0);
            w.put_u64(new.0);
        }
        let group_delta: Vec<(&(RecordId, KeyTuple), &RecordId)> = group_map
            .iter()
            .filter(|(_, new)| new.0 > self.last_max)
            .collect();
        w.put_u32(group_delta.len() as u32);
        for ((owner, key), new) in &group_delta {
            w.put_u64(owner.0);
            w.put_u32(key.0.len() as u32);
            for v in &key.0 {
                w.put_value(v);
            }
            w.put_u64(new.0);
        }
        self.log.append(&w.into_bytes()).map_err(disk_err)?;
        self.log.flush().map_err(disk_err)?;
        if let Some(rec) = stores.last() {
            self.last_max = rec.id.0;
        }
        Ok(())
    }
}

impl TranslationJournal for WalJournal {
    fn on_batch(
        &mut self,
        phase: usize,
        offset: usize,
        batches_done: usize,
        out: &NetworkDb,
        idmap: &BTreeMap<RecordId, RecordId>,
        group_map: &BTreeMap<(RecordId, KeyTuple), RecordId>,
    ) -> DbResult<()> {
        self.append_delta(
            TAG_BATCH,
            phase,
            offset as u64,
            batches_done,
            out,
            idmap,
            group_map,
        )
    }
}

/// Set connections of one stored output record, re-derived from the set
/// structure (system-set membership is automatic on store and omitted).
/// Owners precede members in every phase plan, so at replay time each
/// owner id already exists.
fn connects_of(out: &NetworkDb, rec: &StoredRecord) -> DbResult<Vec<(String, u64)>> {
    let mut v = Vec::new();
    for set in out.schema().sets_with_member(&rec.rtype) {
        if set.is_system() {
            continue;
        }
        if let Some(owner) = out.owner_in(&set.name, rec.id)? {
            if owner != SYSTEM_OWNER {
                v.push((set.name.clone(), owner.0));
            }
        }
    }
    Ok(v)
}

/// Everything recovery rebuilds from the log.
struct Recovered {
    out: NetworkDb,
    idmap: BTreeMap<RecordId, RecordId>,
    group_map: BTreeMap<(RecordId, KeyTuple), RecordId>,
    phase: usize,
    offset: usize,
    batches: usize,
    complete: bool,
}

/// Rebuild the translation state from the journal's records. Replay is
/// idempotent because [`LogMgr::open`] already cleansed any torn tail —
/// only whole, checksummed records reach this point.
fn replay(
    db: &NetworkDb,
    transform: &Transform,
    records: &[(u64, Vec<u8>)],
) -> DbResult<Recovered> {
    let corrupt = |d: &str| DbError::constraint(format!("translation journal: {d}"));
    let header = &records[0].1;
    let mut r = ByteReader::new(header);
    if r.get_u8("journal tag").map_err(disk_err)? != TAG_HEADER {
        return Err(corrupt("first record is not a header"));
    }
    if r.get_u64("journal magic").map_err(disk_err)? != JOURNAL_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if r.get_u64("source fingerprint").map_err(disk_err)? != db.fingerprint() {
        return Err(corrupt("journal does not match the source database"));
    }
    if r.get_u64("transform fingerprint").map_err(disk_err)? != transform_fingerprint(transform) {
        return Err(corrupt("journal does not match the transform"));
    }
    let victims = match transform {
        Transform::DeleteWhere {
            record,
            field,
            op,
            value,
        } => erase_victims(db, record, field, op, value),
        _ => Vec::new(),
    };
    let mut rec = Recovered {
        out: initial_out(db, transform)?,
        idmap: BTreeMap::new(),
        group_map: BTreeMap::new(),
        phase: 0,
        offset: 0,
        batches: 0,
        complete: false,
    };
    let mut erased_to = 0usize;
    for (_, payload) in &records[1..] {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8("record tag").map_err(disk_err)?;
        if tag != TAG_BATCH && tag != TAG_COMPLETE {
            return Err(corrupt("unknown record tag"));
        }
        let phase = r.get_u64("phase").map_err(disk_err)? as usize;
        let offset = r.get_u64("offset").map_err(disk_err)? as usize;
        let batches = r.get_u64("batches").map_err(disk_err)? as usize;
        let stores = r.get_u32("store count").map_err(disk_err)?;
        for _ in 0..stores {
            let id = r.get_u64("record id").map_err(disk_err)?;
            let rtype = r.get_str("record type").map_err(disk_err)?.to_string();
            let nvals = r.get_u32("value count").map_err(disk_err)?;
            let mut values = Vec::with_capacity(nvals as usize);
            for _ in 0..nvals {
                values.push(r.get_value("value").map_err(disk_err)?);
            }
            let nconn = r.get_u32("connect count").map_err(disk_err)?;
            let mut connects = Vec::with_capacity(nconn as usize);
            for _ in 0..nconn {
                let set = r.get_str("set name").map_err(disk_err)?.to_string();
                let owner = r.get_u64("owner id").map_err(disk_err)?;
                connects.push((set, RecordId(owner)));
            }
            // `StoredRecord::values` is parallel to the *full* field list,
            // with `Null` placeholders in virtual slots; `store` only
            // accepts the non-virtual ones back.
            let fields: Vec<(String, bool)> = rec
                .out
                .schema()
                .record(&rtype)
                .ok_or_else(|| corrupt("journaled record of unknown type"))?
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.is_virtual()))
                .collect();
            if fields.len() != values.len() {
                return Err(corrupt("journaled record arity mismatch"));
            }
            let pairs: Vec<(&str, dbpc_datamodel::value::Value)> = fields
                .iter()
                .zip(values)
                .filter(|((_, virt), _)| !virt)
                .map(|((name, _), v)| (name.as_str(), v))
                .collect();
            let conn_refs: Vec<(&str, RecordId)> =
                connects.iter().map(|(s, o)| (s.as_str(), *o)).collect();
            let new_id = rec.out.store(&rtype, &pairs, &conn_refs)?;
            if new_id.0 != id {
                return Err(corrupt("replayed store assigned a different id"));
            }
        }
        let nids = r.get_u32("idmap delta").map_err(disk_err)?;
        for _ in 0..nids {
            let old = r.get_u64("old id").map_err(disk_err)?;
            let new = r.get_u64("new id").map_err(disk_err)?;
            rec.idmap.insert(RecordId(old), RecordId(new));
        }
        let ngroups = r.get_u32("group delta").map_err(disk_err)?;
        for _ in 0..ngroups {
            let owner = r.get_u64("group owner").map_err(disk_err)?;
            let nkey = r.get_u32("group key arity").map_err(disk_err)?;
            let mut key = Vec::with_capacity(nkey as usize);
            for _ in 0..nkey {
                key.push(r.get_value("group key value").map_err(disk_err)?);
            }
            let new = r.get_u64("group id").map_err(disk_err)?;
            rec.group_map
                .insert((RecordId(owner), KeyTuple(key)), RecordId(new));
        }
        // Erase batches carry no stores; the cursor range against the
        // re-derived doomed list is the whole delta.
        if !victims.is_empty() {
            for &id in victims
                .get(erased_to..offset.min(victims.len()))
                .unwrap_or(&[])
            {
                match rec.out.erase(id, true) {
                    Ok(_) | Err(DbError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            erased_to = offset.min(victims.len());
        }
        rec.phase = phase;
        rec.offset = offset;
        if tag == TAG_COMPLETE {
            // The completion record is a tail delta, not a boundary — it
            // must not disturb the replayed-batch count.
            rec.complete = true;
            break;
        }
        rec.batches = batches;
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::translate;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_datamodel::value::Value;
    use dbpc_dml::expr::CmpOp;
    use dbpc_storage::disk::DiskFault;
    use dbpc_storage::{StatCatalog, TempDir};

    fn company_schema() -> dbpc_datamodel::network::NetworkSchema {
        dbpc_datamodel::network::NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db(emps: usize) -> NetworkDb {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        for i in 0..emps {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(format!("EMP-{i:05}"))),
                    ("DEPT-NAME", Value::str(format!("D{}", i % 3))),
                    ("AGE", Value::Int(20 + (i as i64 % 40))),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        }
        db
    }

    fn promote() -> Transform {
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "DEPT-NAME".into(),
            via_set: "DIV-EMP".into(),
            new_record: "DEPT".into(),
            upper_set: "DIV-DEPT".into(),
            lower_set: "DEPT-EMP".into(),
        }
    }

    fn opts(batch: usize) -> DurableTranslationOptions {
        DurableTranslationOptions {
            batch,
            page_size: 256,
            faults: None,
        }
    }

    /// Kill at every boundary, recover with a fresh journal handle each
    /// time (a new process in miniature): the recovered completion equals
    /// the one-shot translation, engine and statistics fingerprints both.
    #[test]
    fn crash_at_every_boundary_recovers_byte_identical() {
        let src = company_db(20);
        let t = promote();
        let oneshot = translate(&src, &t).unwrap();
        let mut k = 0usize;
        loop {
            let tmp = TempDir::new("durable-xlate").unwrap();
            let fired = matches!(
                translate_durable(&src, &t, tmp.path(), &opts(3), &mut |b| b == k).unwrap(),
                DurableOutcome::Crashed { .. }
            );
            if !fired {
                break;
            }
            // "Restart": same root, no crash plan.
            let DurableOutcome::Complete {
                out,
                batches_replayed,
            } = translate_durable(&src, &t, tmp.path(), &opts(3), &mut |_| false).unwrap()
            else {
                panic!("recovery crashed at k = {k}");
            };
            assert_eq!(batches_replayed, k + 1, "k = {k}");
            assert_eq!(out.fingerprint(), oneshot.fingerprint(), "k = {k}");
            assert_eq!(
                StatCatalog::of_network(&out).fingerprint(),
                StatCatalog::of_network(&oneshot).fingerprint(),
                "k = {k}"
            );
            out.check_access_structures().unwrap();
            k += 1;
        }
        assert!(k > 2, "expected several boundaries, saw {k}");
    }

    /// A completed journal short-circuits: reopening replays to the
    /// completion record without re-translating.
    #[test]
    fn completed_journal_replays_to_the_same_output() {
        let src = company_db(12);
        let t = promote();
        let tmp = TempDir::new("durable-done").unwrap();
        let DurableOutcome::Complete { out: first, .. } =
            translate_durable(&src, &t, tmp.path(), &opts(4), &mut |_| false).unwrap()
        else {
            panic!("first run crashed");
        };
        let DurableOutcome::Complete {
            out: second,
            batches_replayed,
        } = translate_durable(&src, &t, tmp.path(), &opts(4), &mut |_| false).unwrap()
        else {
            panic!("reopen crashed");
        };
        assert!(batches_replayed > 0);
        assert_eq!(first.fingerprint(), second.fingerprint());
    }

    /// Erase-plan (`DeleteWhere`) journals carry cursors, not stores, and
    /// still recover byte-identically.
    #[test]
    fn delete_where_recovers_by_cursor_replay() {
        let src = company_db(15);
        let t = Transform::DeleteWhere {
            record: "EMP".into(),
            field: "AGE".into(),
            op: CmpOp::Gt,
            value: Value::Int(30),
        };
        let oneshot = translate(&src, &t).unwrap();
        let tmp = TempDir::new("durable-erase").unwrap();
        let crashed = translate_durable(&src, &t, tmp.path(), &opts(2), &mut |b| b == 1).unwrap();
        assert!(matches!(crashed, DurableOutcome::Crashed { .. }));
        let DurableOutcome::Complete { out, .. } =
            translate_durable(&src, &t, tmp.path(), &opts(2), &mut |_| false).unwrap()
        else {
            panic!("recovery crashed");
        };
        assert_eq!(out.fingerprint(), oneshot.fingerprint());
    }

    /// A journal written against different source data refuses to resume.
    #[test]
    fn journal_rejects_mismatched_source() {
        let src = company_db(10);
        let t = promote();
        let tmp = TempDir::new("durable-mismatch").unwrap();
        let _ = translate_durable(&src, &t, tmp.path(), &opts(2), &mut |b| b == 0).unwrap();
        let other = company_db(9);
        assert!(translate_durable(&other, &t, tmp.path(), &opts(2), &mut |_| false).is_err());
    }

    /// An injected torn write fails the running translation; reopening the
    /// journal cleanses the torn tail and recovery completes from the last
    /// durable boundary.
    #[test]
    fn torn_journal_write_recovers_from_last_durable_batch() {
        let src = company_db(20);
        let t = promote();
        let oneshot = translate(&src, &t).unwrap();
        let tmp = TempDir::new("durable-torn").unwrap();
        // Find a write op index that actually fires mid-run, then tear it.
        let mut failed_at = None;
        for op in 1..60 {
            let tmp = TempDir::new("durable-torn-probe").unwrap();
            let faulty = DurableTranslationOptions {
                faults: Some(DiskFaultPlan::default().with_fault_at(op, DiskFault::TornWrite)),
                ..opts(3)
            };
            if translate_durable(&src, &t, tmp.path(), &faulty, &mut |_| false).is_err() {
                failed_at = Some(op);
                break;
            }
        }
        let op = failed_at.expect("no journal write to tear in 60 ops");
        let faulty = DurableTranslationOptions {
            faults: Some(DiskFaultPlan::default().with_fault_at(op, DiskFault::TornWrite)),
            ..opts(3)
        };
        assert!(translate_durable(&src, &t, tmp.path(), &faulty, &mut |_| false).is_err());
        let DurableOutcome::Complete { out, .. } =
            translate_durable(&src, &t, tmp.path(), &opts(3), &mut |_| false).unwrap()
        else {
            panic!("recovery after torn write crashed");
        };
        assert_eq!(out.fingerprint(), oneshot.fingerprint());
    }
}
