//! Access-path counters.
//!
//! The paper's Optimizer box (Fig. 4.1) exists because converted programs'
//! "execution-time variability" is dominated by access-path choice. These
//! counters make the chosen path *observable*: tests and benches assert
//! that an index probe actually engaged (or that the DL/I position cache
//! was not rebuilt per call) instead of inferring it from wall time.
//!
//! [`AccessStats`] lives inside each storage engine and uses `Cell` so the
//! read-only query paths (`&self`) can count; [`AccessProfile`] is the
//! plain-data snapshot surfaced in `dbpc_engine::trace::Trace`.

use std::cell::Cell;

/// Interior-mutable counters owned by a storage engine.
#[derive(Debug, Clone, Default)]
pub struct AccessStats {
    rows_scanned: Cell<u64>,
    index_probes: Cell<u64>,
    index_hits: Cell<u64>,
    preorder_rebuilds: Cell<u64>,
}

impl AccessStats {
    /// Count `n` rows (tuples, segments, or records) visited by a scan or
    /// residual filter.
    pub fn scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    /// Count one index lookup (primary, secondary, calc-key, or position
    /// map), and whether it produced at least one candidate.
    pub fn probed(&self, hit: bool) {
        self.index_probes.set(self.index_probes.get() + 1);
        if hit {
            self.index_hits.set(self.index_hits.get() + 1);
        }
    }

    /// Count one full rebuild of the hierarchic preorder cache.
    pub fn rebuilt_preorder(&self) {
        self.preorder_rebuilds.set(self.preorder_rebuilds.get() + 1);
    }

    pub fn snapshot(&self) -> AccessProfile {
        AccessProfile {
            rows_scanned: self.rows_scanned.get(),
            index_probes: self.index_probes.get(),
            index_hits: self.index_hits.get(),
            preorder_rebuilds: self.preorder_rebuilds.get(),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.index_probes.set(0);
        self.index_hits.set(0);
        self.preorder_rebuilds.set(0);
    }
}

/// Snapshot of [`AccessStats`] at a point in time (typically end of run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessProfile {
    /// Rows/segments/records visited by scans and residual predicates.
    pub rows_scanned: u64,
    /// Index lookups attempted (pk, secondary, calc-key, position map).
    pub index_probes: u64,
    /// Index lookups that found at least one candidate.
    pub index_hits: u64,
    /// Full rebuilds of the hierarchic preorder cache.
    pub preorder_rebuilds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = AccessStats::default();
        s.scanned(5);
        s.probed(true);
        s.probed(false);
        s.rebuilt_preorder();
        assert_eq!(
            s.snapshot(),
            AccessProfile {
                rows_scanned: 5,
                index_probes: 2,
                index_hits: 1,
                preorder_rebuilds: 1,
            }
        );
        s.reset();
        assert_eq!(s.snapshot(), AccessProfile::default());
    }
}
