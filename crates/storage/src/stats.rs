//! Access-path counters.
//!
//! The paper's Optimizer box (Fig. 4.1) exists because converted programs'
//! "execution-time variability" is dominated by access-path choice. These
//! counters make the chosen path *observable*: tests and benches assert
//! that an index probe actually engaged (or that the DL/I position cache
//! was not rebuilt per call) instead of inferring it from wall time.
//!
//! [`AccessStats`] lives inside each storage engine and uses `Cell` so the
//! read-only query paths (`&self`) can count; [`AccessProfile`] is the
//! plain-data snapshot surfaced in `dbpc_engine::trace::Trace`.
//!
//! Since PR 5 these counters also flow into the unified `dbpc-obs`
//! metrics sheet under the `storage.*` names below. The engines keep
//! their `Cell`s — query inner loops are far too hot for a map lookup
//! per scanned row — and the executors absorb each run's delta into the
//! ambient sheet once, post-run, via [`AccessProfile::absorb_into_obs`].

use std::cell::Cell;

/// Metric name for rows/segments/records visited by scans.
pub const ROWS_SCANNED: &str = "storage.rows_scanned";
/// Metric name for index lookups attempted.
pub const INDEX_PROBES: &str = "storage.index_probes";
/// Metric name for index lookups that found a candidate.
pub const INDEX_HITS: &str = "storage.index_hits";
/// Metric name for full hierarchic preorder-cache rebuilds.
pub const PREORDER_REBUILDS: &str = "storage.preorder_rebuilds";
/// Metric name for savepoints opened (see `txn.rs`).
pub const SAVEPOINTS_BEGUN: &str = "storage.savepoints_begun";
/// Metric name for savepoints rolled back.
pub const SAVEPOINTS_ROLLED_BACK: &str = "storage.savepoints_rolled_back";
/// Metric name for savepoints committed.
pub const SAVEPOINTS_COMMITTED: &str = "storage.savepoints_committed";

/// Interior-mutable counters owned by a storage engine.
#[derive(Debug, Clone, Default)]
pub struct AccessStats {
    rows_scanned: Cell<u64>,
    index_probes: Cell<u64>,
    index_hits: Cell<u64>,
    preorder_rebuilds: Cell<u64>,
}

impl AccessStats {
    /// Count `n` rows (tuples, segments, or records) visited by a scan or
    /// residual filter.
    pub fn scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    /// Count one index lookup (primary, secondary, calc-key, or position
    /// map), and whether it produced at least one candidate.
    pub fn probed(&self, hit: bool) {
        self.index_probes.set(self.index_probes.get() + 1);
        if hit {
            self.index_hits.set(self.index_hits.get() + 1);
        }
    }

    /// Count one full rebuild of the hierarchic preorder cache.
    pub fn rebuilt_preorder(&self) {
        self.preorder_rebuilds.set(self.preorder_rebuilds.get() + 1);
    }

    pub fn snapshot(&self) -> AccessProfile {
        AccessProfile {
            rows_scanned: self.rows_scanned.get(),
            index_probes: self.index_probes.get(),
            index_hits: self.index_hits.get(),
            preorder_rebuilds: self.preorder_rebuilds.get(),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.index_probes.set(0);
        self.index_hits.set(0);
        self.preorder_rebuilds.set(0);
    }
}

/// Snapshot of [`AccessStats`] at a point in time (typically end of run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessProfile {
    /// Rows/segments/records visited by scans and residual predicates.
    pub rows_scanned: u64,
    /// Index lookups attempted (pk, secondary, calc-key, position map).
    pub index_probes: u64,
    /// Index lookups that found at least one candidate.
    pub index_hits: u64,
    /// Full rebuilds of the hierarchic preorder cache.
    pub preorder_rebuilds: u64,
}

impl AccessProfile {
    /// Push this profile (typically one run's delta) into the ambient
    /// `dbpc-obs` metric sheet under the `storage.*` counter names.
    pub fn absorb_into_obs(&self) {
        dbpc_obs::count(ROWS_SCANNED, self.rows_scanned);
        dbpc_obs::count(INDEX_PROBES, self.index_probes);
        dbpc_obs::count(INDEX_HITS, self.index_hits);
        dbpc_obs::count(PREORDER_REBUILDS, self.preorder_rebuilds);
    }

    /// Read the `storage.*` access counters out of a merged metrics frame.
    pub fn from_frame(frame: &dbpc_obs::MetricsFrame) -> AccessProfile {
        AccessProfile {
            rows_scanned: frame.counter(ROWS_SCANNED),
            index_probes: frame.counter(INDEX_PROBES),
            index_hits: frame.counter(INDEX_HITS),
            preorder_rebuilds: frame.counter(PREORDER_REBUILDS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = AccessStats::default();
        s.scanned(5);
        s.probed(true);
        s.probed(false);
        s.rebuilt_preorder();
        assert_eq!(
            s.snapshot(),
            AccessProfile {
                rows_scanned: 5,
                index_probes: 2,
                index_hits: 1,
                preorder_rebuilds: 1,
            }
        );
        s.reset();
        assert_eq!(s.snapshot(), AccessProfile::default());
    }
}
