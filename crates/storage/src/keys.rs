//! Ordered key tuples.
//!
//! `Value` has no `Ord` implementation (floats), but set ordering, primary
//! keys, and SORT all need totally ordered tuples. [`KeyTuple`] wraps a
//! value vector with the documented total order of
//! [`dbpc_datamodel::value::cmp_tuple`].

use dbpc_datamodel::value::{cmp_tuple, Value};
use std::cmp::Ordering;

/// A totally ordered tuple of values, usable as a `BTreeMap` key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyTuple(pub Vec<Value>);

impl Eq for KeyTuple {}

impl PartialOrd for KeyTuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyTuple {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_tuple(&self.0, &other.0)
    }
}

impl From<Vec<Value>> for KeyTuple {
    fn from(v: Vec<Value>) -> Self {
        KeyTuple(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn usable_as_btree_key() {
        let mut m: BTreeMap<KeyTuple, u32> = BTreeMap::new();
        m.insert(vec![Value::str("B")].into(), 2);
        m.insert(vec![Value::str("A")].into(), 1);
        m.insert(vec![Value::Null].into(), 0);
        let order: Vec<u32> = m.values().copied().collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn float_keys_do_not_panic() {
        let mut m: BTreeMap<KeyTuple, u32> = BTreeMap::new();
        m.insert(vec![Value::Float(f64::NAN)].into(), 1);
        m.insert(vec![Value::Float(0.0)].into(), 2);
        assert_eq!(m.len(), 2);
    }
}
