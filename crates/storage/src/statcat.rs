//! The statistics catalog behind cost-based access-path selection.
//!
//! [`StatCatalog`] is a *derived, deterministic view* over the access
//! structures the engines already maintain incrementally — relational row
//! maps and secondary indexes, network `by_type` lists, calc-key indexes
//! and per-set member maps, hierarchic segment stores — snapshotted into
//! plain numbers a planner can price plans with: per-table/per-type
//! cardinality, per-index distinct-key counts, per-set fan-out.
//!
//! Because every underlying structure is maintained through the undo
//! journal (PR 4), the catalog is **transactional by construction**: a
//! `rollback_to` restores the structures, so a catalog taken after the
//! rollback equals one taken before the savepoint opened. That invariant
//! is what lets the planner consult statistics inside the atomic executor
//! wrappers without any stats-specific undo logic; it is pinned by
//! `tests/stat_catalog.rs` with [`StatCatalog::fingerprint`] checks.
//!
//! All snapshot accessors used here are **non-counting**: building a
//! catalog never bumps `rows_scanned`/`index_probes`, so planning is
//! invisible to the access profiles the PR 1 regression tests assert on.

use crate::{HierDb, NetworkDb, RelationalDb};
use std::hash::{Hash, Hasher};

/// Distinct-key statistics for one index (primary or secondary).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexStats {
    /// Indexed column/field list, in index order.
    pub cols: Vec<String>,
    /// Number of distinct key tuples currently in the index.
    pub distinct_keys: u64,
    /// Whether a key identifies at most one row (primary keys).
    pub unique: bool,
}

/// Statistics for one relational table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableStats {
    pub name: String,
    pub cardinality: u64,
    /// Primary key first (when declared), then secondary indexes in
    /// creation order.
    pub indexes: Vec<IndexStats>,
}

/// Statistics for one network record type or hierarchic segment type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeStats {
    pub name: String,
    pub cardinality: u64,
}

/// Fan-out statistics for one owner-coupled set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SetStats {
    pub name: String,
    /// Owner occurrences that currently have at least one member.
    pub occurrences: u64,
    /// Member links (= connected members) across all occurrences.
    pub links: u64,
}

/// A deterministic snapshot of the statistics relevant to plan choice for
/// one database instance. Exactly one of the three sections is non-empty,
/// matching the data model the catalog was taken from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StatCatalog {
    pub tables: Vec<TableStats>,
    pub types: Vec<TypeStats>,
    pub sets: Vec<SetStats>,
}

impl StatCatalog {
    /// Snapshot a relational database: per-table cardinality plus
    /// distinct-key counts for the primary key and every secondary index.
    pub fn of_relational(db: &RelationalDb) -> StatCatalog {
        let mut tables = Vec::new();
        for def in &db.schema().tables {
            let cardinality = db.table_cardinality(&def.name).unwrap_or(0);
            let mut indexes = Vec::new();
            if !def.primary_key.is_empty() {
                indexes.push(IndexStats {
                    cols: def.primary_key.clone(),
                    // Primary-key tuples are unique: distinct = cardinality.
                    distinct_keys: cardinality,
                    unique: true,
                });
            }
            for (cols, distinct_keys) in db.secondary_index_stats(&def.name).unwrap_or_default() {
                indexes.push(IndexStats {
                    cols,
                    distinct_keys,
                    unique: false,
                });
            }
            tables.push(TableStats {
                name: def.name.clone(),
                cardinality,
                indexes,
            });
        }
        StatCatalog {
            tables,
            ..StatCatalog::default()
        }
    }

    /// Snapshot a network database: per-record-type cardinality plus
    /// per-set occurrence and link counts (fan-out = links/occurrences).
    pub fn of_network(db: &NetworkDb) -> StatCatalog {
        let types = db
            .schema()
            .records
            .iter()
            .map(|r| TypeStats {
                name: r.name.clone(),
                cardinality: db.type_cardinality(&r.name),
            })
            .collect();
        let sets = db
            .schema()
            .sets
            .iter()
            .map(|s| {
                let (occurrences, links) = db.set_fanout(&s.name).unwrap_or((0, 0));
                SetStats {
                    name: s.name.clone(),
                    occurrences,
                    links,
                }
            })
            .collect();
        StatCatalog {
            types,
            sets,
            ..StatCatalog::default()
        }
    }

    /// Snapshot a hierarchic database: per-segment-type cardinality.
    pub fn of_hier(db: &HierDb) -> StatCatalog {
        let types = db
            .segment_types()
            .into_iter()
            .map(|name| {
                let cardinality = db.type_cardinality(&name);
                TypeStats { name, cardinality }
            })
            .collect();
        StatCatalog {
            types,
            ..StatCatalog::default()
        }
    }

    /// Total records/rows/segments across the catalog.
    pub fn total_records(&self) -> u64 {
        let t: u64 = self.tables.iter().map(|t| t.cardinality).sum();
        let y: u64 = self.types.iter().map(|t| t.cardinality).sum();
        t + y
    }

    /// Total set links (network catalogs only; 0 otherwise).
    pub fn total_links(&self) -> u64 {
        self.sets.iter().map(|s| s.links).sum()
    }

    /// Cardinality of a named table/type, if present.
    pub fn cardinality_of(&self, name: &str) -> Option<u64> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.cardinality)
            .or_else(|| {
                self.types
                    .iter()
                    .find(|t| t.name == name)
                    .map(|t| t.cardinality)
            })
    }

    /// Average members per occurrence of a set, rounded up; 1 when the set
    /// is empty (a harmless floor for cost formulas).
    pub fn avg_fanout(&self, set: &str) -> u64 {
        match self.sets.iter().find(|s| s.name == set) {
            Some(s) if s.occurrences > 0 => s.links.div_ceil(s.occurrences).max(1),
            _ => 1,
        }
    }

    /// Deterministic digest of the whole catalog, for savepoint/rollback
    /// regression checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Publish the catalog into a metrics registry as gauges, so a
    /// `RunReport`'s deterministic JSON shows the planner's inputs:
    /// `stats.table.<T>.cardinality`, `stats.index.<T>.<cols>.distinct`,
    /// `stats.type.<T>.cardinality`, `stats.set.<S>.{occurrences,links}`.
    pub fn publish(&self, registry: &mut dbpc_obs::MetricsRegistry) {
        for t in &self.tables {
            registry.set_gauge(
                &format!("stats.table.{}.cardinality", t.name),
                t.cardinality as i64,
            );
            for ix in &t.indexes {
                registry.set_gauge(
                    &format!("stats.index.{}.{}.distinct", t.name, ix.cols.join("+")),
                    ix.distinct_keys as i64,
                );
            }
        }
        for t in &self.types {
            registry.set_gauge(
                &format!("stats.type.{}.cardinality", t.name),
                t.cardinality as i64,
            );
        }
        for s in &self.sets {
            registry.set_gauge(
                &format!("stats.set.{}.occurrences", s.name),
                s.occurrences as i64,
            );
            registry.set_gauge(&format!("stats.set.{}.links", s.name), s.links as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, NetworkSchema, RecordTypeDef, SetDef};
    use dbpc_datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_datamodel::value::Value;

    fn rel_db() -> RelationalDb {
        let schema = RelationalSchema::new("S").with_table(
            TableDef::new(
                "PART",
                vec![
                    ColumnDef::new("P#", FieldType::Int(6)),
                    ColumnDef::new("CLASS", FieldType::Char(4)),
                ],
            )
            .with_key(vec!["P#"]),
        );
        let mut db = RelationalDb::new(schema).unwrap();
        db.create_index("PART", &["CLASS"]).unwrap();
        for i in 0..30 {
            db.insert(
                "PART",
                &[
                    ("P#", Value::Int(i)),
                    ("CLASS", Value::str(format!("C{}", i % 3))),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn relational_catalog_reports_cardinality_and_distincts() {
        let db = rel_db();
        let cat = StatCatalog::of_relational(&db);
        assert_eq!(cat.cardinality_of("PART"), Some(30));
        let part = &cat.tables[0];
        assert_eq!(part.indexes.len(), 2);
        assert!(part.indexes[0].unique);
        assert_eq!(part.indexes[0].distinct_keys, 30);
        assert_eq!(part.indexes[1].cols, vec!["CLASS".to_string()]);
        assert_eq!(part.indexes[1].distinct_keys, 3);
    }

    #[test]
    fn catalog_is_a_pure_function_of_state() {
        let db = rel_db();
        assert_eq!(
            StatCatalog::of_relational(&db).fingerprint(),
            StatCatalog::of_relational(&db).fingerprint()
        );
    }

    #[test]
    fn network_catalog_reports_types_and_fanout() {
        let schema = NetworkSchema::new("N")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![FieldDef::new("EMP-NAME", FieldType::Char(25))],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]));
        let mut db = NetworkDb::new(schema).unwrap();
        let d1 = db
            .store("DIV", &[("DIV-NAME", Value::str("A"))], &[])
            .unwrap();
        let d2 = db
            .store("DIV", &[("DIV-NAME", Value::str("B"))], &[])
            .unwrap();
        for (n, d) in [("X", d1), ("Y", d1), ("Z", d2)] {
            db.store("EMP", &[("EMP-NAME", Value::str(n))], &[("DIV-EMP", d)])
                .unwrap();
        }
        let cat = StatCatalog::of_network(&db);
        assert_eq!(cat.cardinality_of("DIV"), Some(2));
        assert_eq!(cat.cardinality_of("EMP"), Some(3));
        let div_emp = cat.sets.iter().find(|s| s.name == "DIV-EMP").unwrap();
        assert_eq!(div_emp.occurrences, 2);
        assert_eq!(div_emp.links, 3);
        assert_eq!(cat.avg_fanout("DIV-EMP"), 2); // ceil(3/2)
        assert_eq!(cat.total_records(), 5);
        assert_eq!(cat.total_links(), 5); // ALL-DIV (2) + DIV-EMP (3)
    }

    #[test]
    fn publish_exposes_gauges() {
        let db = rel_db();
        let cat = StatCatalog::of_relational(&db);
        let mut registry = dbpc_obs::MetricsRegistry::new();
        cat.publish(&mut registry);
        let frame = registry.into_frame();
        assert_eq!(frame.gauge("stats.table.PART.cardinality"), 30);
        assert_eq!(frame.gauge("stats.index.PART.CLASS.distinct"), 3);
    }
}
