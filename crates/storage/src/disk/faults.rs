//! Deterministic seeded disk-fault injection.
//!
//! The PR 3 supervisor proved out the pattern: a fault plan is a *pure
//! function* of `(seed, op_index)`, so a failing run can be replayed
//! bit-for-bit by re-running with the same seed. This module extends the
//! idea to the physical layer. [`FileMgr`](super::file::FileMgr) numbers
//! every write and sync it performs; before touching the file it asks the
//! plan [`DiskFaultPlan::decide`] whether this op fails, and how:
//!
//! * [`DiskFault::TornWrite`] — only the first half of the page reaches
//!   the platter before the "power cut";
//! * [`DiskFault::ShortWrite`] — only the first quarter does;
//! * [`DiskFault::FsyncFail`] — the sync call fails and nothing is
//!   guaranteed durable.
//!
//! In every case the op also reports an error, so the caller knows the
//! commit did not land — the interesting question, answered by the
//! recovery tests, is whether the *bytes left behind* can confuse a fresh
//! process into recovering the wrong state.

use super::file::DiskOp;

/// What kind of failure to inject into a physical disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Half the page is written, then the operation errors.
    TornWrite,
    /// A quarter of the page is written, then the operation errors.
    ShortWrite,
    /// The sync is skipped entirely and reported as failed.
    FsyncFail,
}

impl DiskFault {
    /// Whether this fault kind can apply to the given physical op.
    fn applies_to(self, op: DiskOp) -> bool {
        match self {
            DiskFault::TornWrite | DiskFault::ShortWrite => op == DiskOp::Write,
            DiskFault::FsyncFail => op == DiskOp::Sync,
        }
    }
}

/// A deterministic schedule of disk faults.
///
/// `decide(op_index, op)` is pure: two `FileMgr`s driven through the same
/// op sequence with the same plan fail at exactly the same points. Faults
/// come from two sources, checked in order:
///
/// 1. **Targeted** faults pin a specific fault to a specific op index —
///    the recovery matrix uses these to hit every WAL boundary exactly.
/// 2. **Seeded** faults fire with probability `probability` per op, the
///    fault kind chosen by a second hash — load tests use these to
///    scatter failures without hand-picking indexes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskFaultPlan {
    seed: u64,
    probability: f64,
    targeted: Vec<(u64, DiskFault)>,
}

impl DiskFaultPlan {
    /// A plan that fires on a `probability` fraction of ops, deterministically
    /// derived from `seed`.
    pub fn seeded(seed: u64, probability: f64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            probability: probability.clamp(0.0, 1.0),
            targeted: Vec::new(),
        }
    }

    /// Pin `fault` to the op with physical index `op_index`. Targeted faults
    /// only fire if the fault kind matches the op kind (a `FsyncFail` aimed
    /// at a write index is inert).
    pub fn with_fault_at(mut self, op_index: u64, fault: DiskFault) -> DiskFaultPlan {
        self.targeted.push((op_index, fault));
        self
    }

    /// True if the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.probability == 0.0 && self.targeted.is_empty()
    }

    /// Decide the fate of physical op number `op_index` of kind `op`.
    pub fn decide(&self, op_index: u64, op: DiskOp) -> Option<DiskFault> {
        for &(at, fault) in &self.targeted {
            if at == op_index && fault.applies_to(op) {
                return Some(fault);
            }
        }
        if self.probability > 0.0 && unit_hash(self.seed, op_index) < self.probability {
            let fault = match op {
                DiskOp::Sync => DiskFault::FsyncFail,
                DiskOp::Write => {
                    if unit_hash(self.seed ^ 0x9e37_79b9, op_index) < 0.5 {
                        DiskFault::TornWrite
                    } else {
                        DiskFault::ShortWrite
                    }
                }
            };
            return Some(fault);
        }
        None
    }
}

/// SplitMix64-derived uniform draw in `[0, 1)` — same construction as the
/// supervisor's `FaultPlan`, so seeds behave consistently across layers.
fn unit_hash(seed: u64, index: u64) -> f64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_faults_fire_only_at_their_index_and_kind() {
        let plan = DiskFaultPlan::default()
            .with_fault_at(3, DiskFault::TornWrite)
            .with_fault_at(5, DiskFault::FsyncFail);
        assert_eq!(plan.decide(3, DiskOp::Write), Some(DiskFault::TornWrite));
        assert_eq!(plan.decide(3, DiskOp::Sync), None);
        assert_eq!(plan.decide(5, DiskOp::Sync), Some(DiskFault::FsyncFail));
        assert_eq!(plan.decide(5, DiskOp::Write), None);
        assert_eq!(plan.decide(4, DiskOp::Write), None);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_roughly_calibrated() {
        let plan = DiskFaultPlan::seeded(42, 0.2);
        let again = DiskFaultPlan::seeded(42, 0.2);
        let mut hits = 0;
        for i in 0..10_000u64 {
            let a = plan.decide(i, DiskOp::Write);
            assert_eq!(a, again.decide(i, DiskOp::Write));
            if a.is_some() {
                hits += 1;
            }
        }
        assert!((1_500..2_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn sync_ops_only_draw_fsync_failures() {
        let plan = DiskFaultPlan::seeded(7, 0.5);
        for i in 0..1_000u64 {
            if let Some(f) = plan.decide(i, DiskOp::Sync) {
                assert_eq!(f, DiskFault::FsyncFail);
            }
        }
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = DiskFaultPlan::default();
        assert!(plan.is_empty());
        for i in 0..100u64 {
            assert_eq!(plan.decide(i, DiskOp::Write), None);
            assert_eq!(plan.decide(i, DiskOp::Sync), None);
        }
    }
}
