//! Paged random-access files: [`Page`], [`BlockId`], and [`FileMgr`].
//!
//! The file manager is the only module that touches the OS filesystem.
//! Every file it manages is an array of fixed-size pages addressed by
//! [`BlockId`]; reads and writes move whole pages. Reading past the end
//! of a file yields a zeroed page (the convention the log manager's
//! recovery scan relies on: a zero length prefix means "no record
//! here"), and writing past the end extends the file.
//!
//! Physical writes and syncs are numbered by a shared op counter, and an
//! optional [`DiskFaultPlan`] consults that number to decide whether the
//! op is allowed to complete — see [`super::faults`]. Counters
//! `disk.reads` / `disk.writes` / `disk.syncs` flow into the ambient
//! `dbpc-obs` metrics sheet.

use super::faults::{DiskFault, DiskFaultPlan};
use super::{DiskError, DiskResult};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Metric: pages read from disk.
pub const DISK_READS: &str = "disk.reads";
/// Metric: pages written to disk (including partially, under a fault).
pub const DISK_WRITES: &str = "disk.writes";
/// Metric: file syncs issued (including ones a fault suppressed).
pub const DISK_SYNCS: &str = "disk.syncs";

/// Default page size — 4 KiB, matching the filesystem block size so a
/// torn page is a physically honest failure unit.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// The kind of physical operation, as seen by the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    Write,
    Sync,
}

/// Address of one page: a file name (relative to the manager's root
/// directory) and a block number within it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    pub file: String,
    pub num: u64,
}

impl BlockId {
    pub fn new(file: impl Into<String>, num: u64) -> BlockId {
        BlockId {
            file: file.into(),
            num,
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.file, self.num)
    }
}

/// A fixed-size in-memory page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Vec<u8>,
}

impl Page {
    pub fn new(size: usize) -> Page {
        Page {
            bytes: vec![0; size],
        }
    }

    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reset every byte to zero.
    pub fn zero(&mut self) {
        self.bytes.fill(0);
    }

    /// Copy `src` into the page starting at `offset`, bounds-checked.
    pub fn write_at(&mut self, offset: usize, src: &[u8]) -> DiskResult<()> {
        let end = offset.checked_add(src.len()).filter(|&e| e <= self.size());
        match end {
            Some(end) => {
                self.bytes[offset..end].copy_from_slice(src);
                Ok(())
            }
            None => Err(DiskError::Bounds {
                offset,
                len: src.len(),
                page: self.size(),
            }),
        }
    }

    /// Borrow `len` bytes starting at `offset`, bounds-checked.
    pub fn read_at(&self, offset: usize, len: usize) -> DiskResult<&[u8]> {
        let end = offset.checked_add(len).filter(|&e| e <= self.size());
        match end {
            Some(end) => Ok(&self.bytes[offset..end]),
            None => Err(DiskError::Bounds {
                offset,
                len,
                page: self.size(),
            }),
        }
    }
}

/// Manages page-granular I/O for every file under one root directory.
///
/// Thread-safe: the open-file cache sits behind a mutex, and reads/writes
/// use positioned I/O (`pread`/`pwrite`) so concurrent accessors never
/// race on a shared file cursor.
#[derive(Debug)]
pub struct FileMgr {
    root: PathBuf,
    page_size: usize,
    files: Mutex<BTreeMap<String, File>>,
    faults: Option<DiskFaultPlan>,
    ops: AtomicU64,
}

impl FileMgr {
    /// Open a manager rooted at `root` (created if absent) with the given
    /// page size.
    pub fn new(root: impl Into<PathBuf>, page_size: usize) -> DiskResult<FileMgr> {
        let root = root.into();
        if page_size < 64 {
            return Err(DiskError::Config(format!(
                "page size {page_size} too small (minimum 64)"
            )));
        }
        std::fs::create_dir_all(&root).map_err(|e| io_err("create root", &root, &e))?;
        Ok(FileMgr {
            root,
            page_size,
            files: Mutex::new(BTreeMap::new()),
            faults: None,
            ops: AtomicU64::new(0),
        })
    }

    /// Attach a fault plan; `None` clears it.
    pub fn with_faults(mut self, faults: Option<DiskFaultPlan>) -> FileMgr {
        self.faults = faults.filter(|p| !p.is_empty());
        self
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of physical write/sync ops issued so far — the index the
    /// fault plan sees for the *next* op.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn with_file<R>(
        &self,
        name: &str,
        op: &'static str,
        f: impl FnOnce(&File) -> std::io::Result<R>,
    ) -> DiskResult<R> {
        let mut files = self.files.lock().map_err(|_| DiskError::Poisoned)?;
        if !files.contains_key(name) {
            let path = self.path_of(name);
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| io_err(op, &path, &e))?;
            files.insert(name.to_string(), file);
        }
        let file = &files[name];
        f(file).map_err(|e| io_err(op, &self.path_of(name), &e))
    }

    /// Read block `blk` into `page`. Pages beyond the current end of file
    /// come back zeroed.
    pub fn read(&self, blk: &BlockId, page: &mut Page) -> DiskResult<()> {
        if page.size() != self.page_size {
            return Err(DiskError::Config(format!(
                "page size {} does not match manager page size {}",
                page.size(),
                self.page_size
            )));
        }
        let off = blk.num * self.page_size as u64;
        self.with_file(&blk.file, "read", |file| {
            let buf = page.as_mut_slice();
            buf.fill(0);
            let mut done = 0;
            while done < buf.len() {
                match file.read_at(&mut buf[done..], off + done as u64) {
                    Ok(0) => break,
                    Ok(n) => done += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        dbpc_obs::racy(DISK_READS, 1);
        Ok(())
    }

    /// Write `page` to block `blk`, extending the file if needed. Subject
    /// to fault injection: a torn or short write persists a prefix of the
    /// page and reports [`DiskError::Injected`].
    pub fn write(&self, blk: &BlockId, page: &Page) -> DiskResult<()> {
        if page.size() != self.page_size {
            return Err(DiskError::Config(format!(
                "page size {} does not match manager page size {}",
                page.size(),
                self.page_size
            )));
        }
        let op_index = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.decide(op_index, DiskOp::Write));
        let prefix = match fault {
            None => page.size(),
            Some(DiskFault::TornWrite) => page.size() / 2,
            Some(DiskFault::ShortWrite) => page.size() / 4,
            // Cannot happen: the plan only returns sync faults for sync ops.
            Some(DiskFault::FsyncFail) => page.size(),
        };
        let off = blk.num * self.page_size as u64;
        self.with_file(&blk.file, "write", |file| {
            file.write_all_at(&page.as_slice()[..prefix], off)
        })?;
        dbpc_obs::racy(DISK_WRITES, 1);
        match fault {
            Some(f @ (DiskFault::TornWrite | DiskFault::ShortWrite)) => {
                Err(DiskError::Injected { fault: f, op_index })
            }
            _ => Ok(()),
        }
    }

    /// Flush `name`'s data to stable storage. Subject to fault injection:
    /// an injected fsync failure skips the sync and reports
    /// [`DiskError::Injected`].
    pub fn sync(&self, name: &str) -> DiskResult<()> {
        let op_index = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.decide(op_index, DiskOp::Sync));
        dbpc_obs::racy(DISK_SYNCS, 1);
        if let Some(f) = fault {
            return Err(DiskError::Injected { fault: f, op_index });
        }
        self.with_file(name, "sync", |file| file.sync_all())
    }

    /// Number of pages currently in `name` (rounding a partial tail page
    /// up, so a torn final page is still visible to recovery).
    pub fn block_count(&self, name: &str) -> DiskResult<u64> {
        let len = self.with_file(name, "stat", |file| file.metadata().map(|m| m.len()))?;
        Ok(len.div_ceil(self.page_size as u64))
    }

    /// Whether `name` exists under the root.
    pub fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    /// Delete `name` if present (used for retired snapshot/log
    /// generations). Missing files are fine; other errors surface.
    pub fn remove(&self, name: &str) -> DiskResult<()> {
        let mut files = self.files.lock().map_err(|_| DiskError::Poisoned)?;
        files.remove(name);
        let path = self.path_of(name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &path, &e)),
        }
    }
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> DiskError {
    DiskError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::tempdir::TempDir;
    use super::*;

    #[test]
    fn pages_round_trip_and_eof_reads_zero() {
        let dir = TempDir::new("filemgr-roundtrip").unwrap();
        let fm = FileMgr::new(dir.path(), 128).unwrap();
        let mut page = Page::new(128);
        page.write_at(0, b"hello pages").unwrap();
        let blk = BlockId::new("data", 3);
        fm.write(&blk, &page).unwrap();
        assert_eq!(fm.block_count("data").unwrap(), 4);

        let mut back = Page::new(128);
        fm.read(&blk, &mut back).unwrap();
        assert_eq!(back.read_at(0, 11).unwrap(), b"hello pages");

        // Block 1 was never written: the file has a hole there, read as zeros.
        fm.read(&BlockId::new("data", 1), &mut back).unwrap();
        assert!(back.as_slice().iter().all(|&b| b == 0));
        // Fully past EOF too.
        fm.read(&BlockId::new("data", 99), &mut back).unwrap();
        assert!(back.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn torn_write_persists_half_and_errors() {
        let dir = TempDir::new("filemgr-torn").unwrap();
        let plan = DiskFaultPlan::default().with_fault_at(0, DiskFault::TornWrite);
        let fm = FileMgr::new(dir.path(), 128)
            .unwrap()
            .with_faults(Some(plan));
        let mut page = Page::new(128);
        page.as_mut_slice().fill(0xAB);
        let blk = BlockId::new("data", 0);
        let err = fm.write(&blk, &page).unwrap_err();
        assert!(matches!(
            err,
            DiskError::Injected {
                fault: DiskFault::TornWrite,
                ..
            }
        ));
        let mut back = Page::new(128);
        fm.read(&blk, &mut back).unwrap();
        assert!(back.as_slice()[..64].iter().all(|&b| b == 0xAB));
        assert!(back.as_slice()[64..].iter().all(|&b| b == 0));
    }

    #[test]
    fn fsync_fault_reports_and_page_bounds_are_checked() {
        let dir = TempDir::new("filemgr-fsync").unwrap();
        let plan = DiskFaultPlan::default().with_fault_at(1, DiskFault::FsyncFail);
        let fm = FileMgr::new(dir.path(), 128)
            .unwrap()
            .with_faults(Some(plan));
        let page = Page::new(128);
        fm.write(&BlockId::new("data", 0), &page).unwrap(); // op 0
        assert!(matches!(
            fm.sync("data").unwrap_err(), // op 1
            DiskError::Injected {
                fault: DiskFault::FsyncFail,
                ..
            }
        ));
        fm.sync("data").unwrap(); // op 2: clean

        let mut small = Page::new(128);
        assert!(small.write_at(120, &[0u8; 16]).is_err());
        assert!(small.read_at(120, 16).is_err());
    }
}
