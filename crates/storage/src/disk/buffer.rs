//! Pinning buffer manager with clock replacement.
//!
//! A fixed pool of page frames mediates all data-page I/O (the snapshot
//! reader/writer in [`super::durable`] goes through it). Clients pin a
//! block — faulting it in from the file manager on a miss — mutate the
//! frame image, mark it dirty with the LSN of the log record describing
//! the change, and unpin. Eviction uses the clock (second-chance)
//! algorithm over unpinned frames only; a pool where every frame is
//! pinned aborts with [`DiskError::BufferAbort`] rather than evicting
//! under someone's feet.
//!
//! **WAL discipline.** Flushing a dirty frame first calls
//! [`LogMgr::flush_before`] with the frame's recorded LSN, so a data page
//! can never reach disk ahead of the log records that explain it.
//!
//! Counters: `buffer.pins`, `buffer.hits`, `buffer.evictions`,
//! `buffer.flushes`.

use super::file::{BlockId, FileMgr, Page};
use super::log::{LogMgr, Lsn};
use super::{DiskError, DiskResult};
use std::sync::Arc;

/// Metric: pin requests served. Like every physical-I/O metric in the
/// disk layer this is recorded in the racy class — cache hit rates and
/// page placement depend on pool state and worker scheduling, so these
/// totals are real but not thread-count invariant.
pub const BUFFER_PINS: &str = "buffer.pins";
/// Metric: pin requests satisfied without disk I/O.
pub const BUFFER_HITS: &str = "buffer.hits";
/// Metric: frames evicted to make room.
pub const BUFFER_EVICTIONS: &str = "buffer.evictions";
/// Metric: dirty frames written back.
pub const BUFFER_FLUSHES: &str = "buffer.flushes";

#[derive(Debug)]
struct Frame {
    page: Page,
    blk: Option<BlockId>,
    pins: u32,
    dirty: bool,
    /// LSN of the newest log record describing this frame's contents.
    lsn: Lsn,
    /// Clock reference bit: second chance before eviction.
    referenced: bool,
}

/// Handle to a pinned frame, by pool index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameId(usize);

/// A fixed pool of page frames over one [`FileMgr`].
///
/// In **no-steal** mode ([`BufferMgr::set_no_steal`]) dirty frames are
/// never eviction victims: the pool grows one frame at a time instead,
/// and [`BufferMgr::trim`] shrinks it back to the base capacity once the
/// dirty set has been checkpointed. This is what keeps the on-disk image
/// of a durable heap exactly at its last checkpoint between checkpoints.
#[derive(Debug)]
pub struct BufferMgr {
    fm: Arc<FileMgr>,
    frames: Vec<Frame>,
    hand: usize,
    /// Capacity requested at construction; `trim` shrinks back to it.
    base_capacity: usize,
    /// Never evict dirty frames; grow the pool instead.
    no_steal: bool,
}

impl BufferMgr {
    /// Create a pool of `capacity` frames (at least 1).
    pub fn new(fm: Arc<FileMgr>, capacity: usize) -> DiskResult<BufferMgr> {
        if capacity == 0 {
            return Err(DiskError::Config("buffer pool capacity 0".to_string()));
        }
        let ps = fm.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                page: Page::new(ps),
                blk: None,
                pins: 0,
                dirty: false,
                lsn: 0,
                referenced: false,
            })
            .collect();
        Ok(BufferMgr {
            fm,
            frames,
            hand: 0,
            base_capacity: capacity,
            no_steal: false,
        })
    }

    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Page size of the underlying file manager.
    pub fn page_size(&self) -> usize {
        self.fm.page_size()
    }

    /// The file manager this pool reads and writes through.
    pub fn file_mgr(&self) -> &Arc<FileMgr> {
        &self.fm
    }

    /// Number of frames currently pinned at least once.
    pub fn pinned(&self) -> usize {
        self.frames.iter().filter(|f| f.pins > 0).count()
    }

    /// Enable/disable no-steal replacement: with it on, dirty frames are
    /// never evicted — the pool grows by one frame when no clean victim
    /// exists, so un-checkpointed changes can only live in RAM.
    pub fn set_no_steal(&mut self, on: bool) {
        self.no_steal = on;
    }

    /// Blocks currently held in dirty frames, in block order.
    pub fn dirty_blocks(&self) -> Vec<BlockId> {
        let mut blks: Vec<BlockId> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .filter_map(|f| f.blk.clone())
            .collect();
        blks.sort();
        blks
    }

    /// Drop clean, unpinned frames until the pool is back at its base
    /// capacity (a no-op while it is not above it). Outstanding
    /// [`FrameId`]s are invalidated, so callers only trim at quiescent
    /// points — after a checkpoint, with nothing pinned.
    pub fn trim(&mut self) {
        let mut i = self.frames.len();
        while self.frames.len() > self.base_capacity && i > 0 {
            i -= 1;
            if self.frames[i].pins == 0 && !self.frames[i].dirty {
                self.frames.remove(i);
            }
        }
        self.hand = 0;
    }

    /// Pin `blk` into a frame, reading it from disk on a miss. Evicting a
    /// victim flushes it first (honoring WAL order via `log`). Fails with
    /// [`DiskError::BufferAbort`] when every frame is pinned.
    pub fn pin(&mut self, blk: &BlockId, log: Option<&mut LogMgr>) -> DiskResult<FrameId> {
        dbpc_obs::racy(BUFFER_PINS, 1);
        if let Some(i) = self.frames.iter().position(|f| f.blk.as_ref() == Some(blk)) {
            dbpc_obs::racy(BUFFER_HITS, 1);
            self.frames[i].pins += 1;
            self.frames[i].referenced = true;
            return Ok(FrameId(i));
        }
        let i = self.victim()?;
        if self.frames[i].blk.is_some() {
            dbpc_obs::racy(BUFFER_EVICTIONS, 1);
        }
        self.flush_frame(i, log)?;
        let frame = &mut self.frames[i];
        self.fm.read(blk, &mut frame.page)?;
        frame.blk = Some(blk.clone());
        frame.pins = 1;
        frame.dirty = false;
        frame.lsn = 0;
        frame.referenced = true;
        Ok(FrameId(i))
    }

    /// Clock sweep for an unpinned victim frame. In no-steal mode dirty
    /// frames are also skipped, and an exhausted sweep grows the pool by
    /// one frame instead of aborting.
    fn victim(&mut self) -> DiskResult<usize> {
        // First preference: a frame never used at all.
        if let Some(i) = self.frames.iter().position(|f| f.blk.is_none()) {
            return Ok(i);
        }
        // Two full sweeps: the first clears reference bits, the second
        // must then find any eligible frame if one exists.
        for _ in 0..self.frames.len() * 2 {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if f.pins > 0 || (self.no_steal && f.dirty) {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Ok(i);
        }
        if self.no_steal {
            self.frames.push(Frame {
                page: Page::new(self.fm.page_size()),
                blk: None,
                pins: 0,
                dirty: false,
                lsn: 0,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        Err(DiskError::BufferAbort {
            capacity: self.frames.len(),
        })
    }

    fn check(&self, id: FrameId) -> DiskResult<()> {
        match self.frames.get(id.0) {
            Some(f) if f.pins > 0 => Ok(()),
            _ => Err(DiskError::Config(format!("frame {} not pinned", id.0))),
        }
    }

    /// Read the pinned frame's page image.
    pub fn page(&self, id: FrameId) -> DiskResult<&Page> {
        self.check(id)?;
        Ok(&self.frames[id.0].page)
    }

    /// Mutate the pinned frame's page image. The caller must follow up
    /// with [`BufferMgr::mark_dirty`] for the change to ever be written.
    pub fn page_mut(&mut self, id: FrameId) -> DiskResult<&mut Page> {
        self.check(id)?;
        Ok(&mut self.frames[id.0].page)
    }

    /// Record that the frame was modified, described by log record `lsn`
    /// (0 for changes outside the log, e.g. snapshot bulk writes that are
    /// fenced by a manifest instead).
    pub fn mark_dirty(&mut self, id: FrameId, lsn: Lsn) -> DiskResult<()> {
        self.check(id)?;
        let f = &mut self.frames[id.0];
        f.dirty = true;
        f.lsn = f.lsn.max(lsn);
        Ok(())
    }

    /// Release one pin. Unpinning an unpinned frame is an error.
    pub fn unpin(&mut self, id: FrameId) -> DiskResult<()> {
        self.check(id)?;
        self.frames[id.0].pins -= 1;
        Ok(())
    }

    fn flush_frame(&mut self, i: usize, log: Option<&mut LogMgr>) -> DiskResult<()> {
        let (dirty, lsn) = (self.frames[i].dirty, self.frames[i].lsn);
        if !dirty {
            return Ok(());
        }
        if let Some(log) = log {
            log.flush_before(lsn)?;
        } else if lsn > 0 {
            return Err(DiskError::Config(
                "flushing a logged page without a log manager".to_string(),
            ));
        }
        let blk = self.frames[i]
            .blk
            .clone()
            .ok_or_else(|| DiskError::Config("dirty frame with no block".to_string()))?;
        self.fm.write(&blk, &self.frames[i].page)?;
        self.frames[i].dirty = false;
        dbpc_obs::racy(BUFFER_FLUSHES, 1);
        Ok(())
    }

    /// Write back every dirty frame (honoring WAL order), leaving pins
    /// untouched. Does not fsync — the caller owns the sync boundary.
    pub fn flush_all(&mut self, mut log: Option<&mut LogMgr>) -> DiskResult<()> {
        for i in 0..self.frames.len() {
            self.flush_frame(i, log.as_deref_mut())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tempdir::TempDir;
    use super::*;

    fn setup(cap: usize) -> (TempDir, BufferMgr) {
        let dir = TempDir::new("buffer").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), 128).unwrap());
        let bm = BufferMgr::new(fm, cap).unwrap();
        (dir, bm)
    }

    #[test]
    fn pin_mutate_flush_round_trips() {
        let (_dir, mut bm) = setup(2);
        let blk = BlockId::new("data", 0);
        let id = bm.pin(&blk, None).unwrap();
        bm.page_mut(id).unwrap().write_at(0, b"buffered").unwrap();
        bm.mark_dirty(id, 0).unwrap();
        bm.unpin(id).unwrap();
        bm.flush_all(None).unwrap();

        // Force the frame out, then re-pin: bytes must come back from disk.
        for n in 1..=2 {
            let id = bm.pin(&BlockId::new("data", n), None).unwrap();
            bm.unpin(id).unwrap();
        }
        let id = bm.pin(&blk, None).unwrap();
        assert_eq!(bm.page(id).unwrap().read_at(0, 8).unwrap(), b"buffered");
        bm.unpin(id).unwrap();
    }

    #[test]
    fn fully_pinned_pool_aborts_instead_of_evicting() {
        let (_dir, mut bm) = setup(2);
        let a = bm.pin(&BlockId::new("data", 0), None).unwrap();
        let _b = bm.pin(&BlockId::new("data", 1), None).unwrap();
        let err = bm.pin(&BlockId::new("data", 2), None).unwrap_err();
        assert!(matches!(err, DiskError::BufferAbort { capacity: 2 }));
        bm.unpin(a).unwrap();
        // Now there is a victim.
        bm.pin(&BlockId::new("data", 2), None).unwrap();
    }

    #[test]
    fn eviction_writes_dirty_victim_back() {
        let (_dir, mut bm) = setup(1);
        let blk0 = BlockId::new("data", 0);
        let id = bm.pin(&blk0, None).unwrap();
        bm.page_mut(id).unwrap().write_at(0, b"victim").unwrap();
        bm.mark_dirty(id, 0).unwrap();
        bm.unpin(id).unwrap();

        // Pinning another block evicts frame 0, flushing it.
        let id = bm.pin(&BlockId::new("data", 1), None).unwrap();
        bm.unpin(id).unwrap();
        let id = bm.pin(&blk0, None).unwrap();
        assert_eq!(bm.page(id).unwrap().read_at(0, 6).unwrap(), b"victim");
        bm.unpin(id).unwrap();
    }

    #[test]
    fn stale_frame_ids_are_rejected() {
        let (_dir, mut bm) = setup(1);
        let id = bm.pin(&BlockId::new("data", 0), None).unwrap();
        bm.unpin(id).unwrap();
        assert!(bm.page(id).is_err());
        assert!(bm.unpin(id).is_err());
        assert!(bm.mark_dirty(id, 0).is_err());
    }

    #[test]
    fn repinning_counts_nested_pins() {
        let (_dir, mut bm) = setup(2);
        let blk = BlockId::new("data", 0);
        let a = bm.pin(&blk, None).unwrap();
        let b = bm.pin(&blk, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(bm.pinned(), 1);
        bm.unpin(a).unwrap();
        // Still pinned once: not evictable.
        assert_eq!(bm.pinned(), 1);
        bm.unpin(b).unwrap();
        assert_eq!(bm.pinned(), 0);
    }
}
