//! # Durable storage substrate
//!
//! The paper's conversion pipeline assumes long-running translation of
//! real databases; everything above this module was pure in-memory and
//! evaporated on process exit. This subsystem adds the classic disk
//! stack — paged files, a pinning buffer pool, and a write-ahead log —
//! and layers the existing undo-journal savepoints on top so that
//! commits survive a `kill -9` and a fresh process recovers a state
//! whose engine and `StatCatalog` fingerprints are byte-identical to the
//! last committed one.
//!
//! Layer map (each layer only speaks to the one below):
//!
//! * [`file`] — [`FileMgr`]: fixed-size pages, random-access block I/O,
//!   numbered physical ops with seeded fault injection ([`faults`]);
//! * [`log`] — [`LogMgr`]: checksummed WAL records, LSNs, idempotent
//!   torn-tail recovery;
//! * [`buffer`] — [`BufferMgr`]: pin/unpin accounting, clock
//!   replacement, flush-before-write WAL discipline;
//! * [`durable`] — [`DurableNetworkDb`]: a [`crate::NetworkDb`] whose
//!   outermost savepoint commits are logical redo records in the WAL,
//!   checkpointed into paged snapshots behind a ping-pong manifest;
//! * [`codec`] / [`tempdir`] — byte framing and self-cleaning scratch
//!   directories shared by all of the above.
//!
//! Failures are typed ([`DiskError`]) end to end: recovery code reads
//! bytes a crash may have torn arbitrarily, so nothing in this subsystem
//! panics on bad input.

pub mod buffer;
pub mod codec;
pub mod durable;
pub mod faults;
pub mod file;
pub mod heap;
pub mod log;
pub mod tempdir;

pub use buffer::{BufferMgr, FrameId, BUFFER_EVICTIONS, BUFFER_FLUSHES, BUFFER_HITS, BUFFER_PINS};
pub use durable::{DurableNetworkDb, DurableOptions, SyncPolicy};
pub use faults::{DiskFault, DiskFaultPlan};
pub use file::{
    BlockId, DiskOp, FileMgr, Page, DEFAULT_PAGE_SIZE, DISK_READS, DISK_SYNCS, DISK_WRITES,
};
pub use heap::{HeapFile, HeapId, HeapStats};
pub use log::{LogMgr, Lsn, WAL_APPENDS, WAL_BYTES, WAL_FLUSHES, WAL_RECOVERED, WAL_TRUNCATIONS};
pub use tempdir::TempDir;

use crate::error::DbError;
use std::fmt;

/// Typed failure from the disk subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum DiskError {
    /// An OS-level I/O failure.
    Io {
        op: &'static str,
        path: String,
        detail: String,
    },
    /// A page-offset access outside the page.
    Bounds {
        offset: usize,
        len: usize,
        page: usize,
    },
    /// Misuse of the API (wrong page size, empty record, unpinned frame…).
    Config(String),
    /// Every buffer frame is pinned; nothing can be evicted.
    BufferAbort { capacity: usize },
    /// A deterministic injected fault fired (see [`faults`]).
    Injected { fault: DiskFault, op_index: u64 },
    /// On-disk bytes failed validation during recovery.
    Corrupt(String),
    /// The durable engine refused an operation in its current state
    /// (wedged after a failed flush, checkpoint inside a transaction…).
    State(String),
    /// The logical engine under the durable wrapper rejected the op.
    Engine(DbError),
    /// A disk-layer mutex was poisoned by a panicking thread.
    Poisoned,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io { op, path, detail } => {
                write!(f, "io error during {op} on {path}: {detail}")
            }
            DiskError::Bounds { offset, len, page } => {
                write!(
                    f,
                    "page access [{offset}..+{len}] outside page of {page} bytes"
                )
            }
            DiskError::Config(msg) => write!(f, "disk config error: {msg}"),
            DiskError::BufferAbort { capacity } => {
                write!(f, "buffer abort: all {capacity} frames pinned")
            }
            DiskError::Injected { fault, op_index } => {
                write!(f, "injected {fault:?} at disk op {op_index}")
            }
            DiskError::Corrupt(msg) => write!(f, "corrupt on-disk state: {msg}"),
            DiskError::State(msg) => write!(f, "invalid durable-engine state: {msg}"),
            DiskError::Engine(e) => write!(f, "engine error: {e}"),
            DiskError::Poisoned => write!(f, "disk mutex poisoned"),
        }
    }
}

impl std::error::Error for DiskError {}

impl From<codec::CodecError> for DiskError {
    fn from(e: codec::CodecError) -> DiskError {
        DiskError::Corrupt(e.to_string())
    }
}

impl DiskError {
    /// Whether this failure came from the deterministic fault injector.
    pub fn is_injected(&self) -> bool {
        matches!(self, DiskError::Injected { .. })
    }
}

pub type DiskResult<T> = Result<T, DiskError>;
