//! Byte-level serialization for the disk layer.
//!
//! Everything that reaches a page — WAL records, snapshot images, the
//! manifest — goes through this module's little-endian writer/reader
//! pair. The build environment vendors no serde, and a hand-rolled codec
//! is an advantage here anyway: the byte layout is part of the recovery
//! contract (a torn tail must fail the checksum, not deserialize into
//! garbage), so it is spelled out explicitly and covered by round-trip
//! tests.
//!
//! Decoding is total: every getter returns a typed [`CodecError`] instead
//! of panicking, because recovery reads bytes that a crash may have torn
//! arbitrarily.

use dbpc_datamodel::value::Value;
use std::fmt;

/// A decode failure: what was being read and why it could not be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the reader was trying to decode.
    pub context: &'static str,
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode {}: {}", self.context, self.detail)
    }
}

impl std::error::Error for CodecError {}

pub type CodecResult<T> = Result<T, CodecError>;

fn fail(context: &'static str, detail: impl Into<String>) -> CodecError {
    CodecError {
        context,
        detail: detail.into(),
    }
}

/// FNV-1a-style 64-bit digest — the record checksum — folded over
/// little-endian 8-byte lanes (byte-wise for the tail), which cuts the
/// serial multiply chain 8x versus byte-at-a-time FNV on the WAL commit
/// path. Not cryptographic; it only needs to make a torn or short write
/// overwhelmingly likely to fail verification. Every step is a bijection
/// of the running state, so any single-bit flip (and any zeroed suffix a
/// torn page leaves behind) changes the digest.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        let mut w = [0u8; 8];
        w.copy_from_slice(lane);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(PRIME);
    }
    for &b in lanes.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Little-endian append-only writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Resume writing at the end of an existing buffer, reusing its
    /// allocation; pair with [`ByteWriter::into_bytes`] to hand the
    /// buffer back. This keeps hot append paths allocation-free.
    pub fn over(buf: Vec<u8>) -> ByteWriter {
        ByteWriter { buf }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Tagged [`Value`]: 0 = Null, 1 = Int, 2 = Float (IEEE bits), 3 = Str.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(2);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }
}

/// Little-endian cursor reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(fail(
                context,
                format!("need {n} bytes, have {}", self.remaining()),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self, context: &'static str) -> CodecResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    pub fn get_u32(&mut self, context: &'static str) -> CodecResult<u32> {
        let s = self.take(4, context)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    pub fn get_u64(&mut self, context: &'static str) -> CodecResult<u64> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    pub fn get_i64(&mut self, context: &'static str) -> CodecResult<i64> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(i64::from_le_bytes(b))
    }

    pub fn get_f64(&mut self, context: &'static str) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    pub fn get_bytes(&mut self, context: &'static str) -> CodecResult<&'a [u8]> {
        let n = self.get_u32(context)? as usize;
        self.take(n, context)
    }

    pub fn get_str(&mut self, context: &'static str) -> CodecResult<String> {
        let raw = self.get_bytes(context)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|e| fail(context, format!("invalid utf-8: {e}")))
    }

    pub fn get_value(&mut self, context: &'static str) -> CodecResult<Value> {
        match self.get_u8(context)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.get_i64(context)?)),
            2 => Ok(Value::Float(self.get_f64(context)?)),
            3 => Ok(Value::Str(self.get_str(context)?)),
            t => Err(fail(context, format!("unknown value tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.5);
        w.put_str("owner-coupled");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 7);
        assert_eq!(r.get_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64("t").unwrap(), -42);
        assert_eq!(r.get_f64("t").unwrap(), -0.5);
        assert_eq!(r.get_str("t").unwrap(), "owner-coupled");
        assert_eq!(r.get_bytes("t").unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::str("DETROIT"),
        ];
        let mut w = ByteWriter::new();
        for v in &vals {
            w.put_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.get_value("t").unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_fails_typed_not_panics() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 2]);
        let err = r.get_str("greeting").unwrap_err();
        assert_eq!(err.context, "greeting");
    }

    #[test]
    fn bad_value_tag_is_an_error() {
        let mut r = ByteReader::new(&[9]);
        assert!(r.get_value("v").is_err());
    }

    #[test]
    fn fnv_differs_on_single_bit_flip() {
        let a = fnv64(b"write-ahead");
        let mut flipped = b"write-ahead".to_vec();
        flipped[3] ^= 1;
        assert_ne!(a, fnv64(&flipped));
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
