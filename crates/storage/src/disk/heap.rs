//! Slotted-page heap files under the buffer pool.
//!
//! A [`HeapFile`] stores variable-length record payloads in fixed-size
//! pages mediated by a [`BufferMgr`], addressed by stable
//! [`HeapId`]`{ block, slot }` handles. Each page carries:
//!
//! ```text
//! [0]        kind tag: 0x00 virgin, 0xA5 slotted, 0xB7 overflow
//! [1..3]     u16 nslots          (slotted pages)
//! [3..5]     u16 free_ptr        (start of the data area, grows down)
//! [5..]      slot directory: nslots × (u16 off, u16 len); off 0 = free
//! [free_ptr..page] record payloads, allocated high-to-low
//! ```
//!
//! Payloads that do not fit a page inline spill into **overflow chains**:
//! the slot keeps a small stub (`0x01` marker + total length + first
//! block) and the bytes live in dedicated `0xB7` blocks of shape
//! `[kind][u32 next][u16 chunk_len][chunk]`, linked until `next == 0`.
//! Erased overflow blocks are zeroed back to virgin and recycled.
//!
//! Two structures are RAM-resident and rebuilt by [`HeapFile::open`]'s
//! page scan rather than persisted: the **free-space map** (per-page free
//! and dead byte counts, driving first-fit placement with in-page
//! compaction when a page's free space is fragmented) and the virgin
//! block free list. Placement is deterministic — lowest eligible block
//! first — so identical operation sequences produce identical files.
//!
//! The heap marks frames dirty with LSN 0: its crash consistency is
//! fenced by the owner's checkpoint protocol (see `disk::durable`), not
//! by per-page WAL coupling.

use super::buffer::BufferMgr;
use super::file::{BlockId, FileMgr, Page};
use super::{DiskError, DiskResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Page kind tags (byte 0 of every block).
const KIND_VIRGIN: u8 = 0x00;
const KIND_SLOTTED: u8 = 0xA5;
const KIND_OVERFLOW: u8 = 0xB7;

/// Slotted-page header: kind + nslots + free_ptr.
const HDR: usize = 5;
/// Bytes per slot-directory entry (u16 off, u16 len).
const SLOT: usize = 4;
/// Overflow-page header: kind + next block (u32) + chunk length (u16).
const OVF_HDR: usize = 7;

/// Payload markers (first byte of every stored slot body).
const INLINE: u8 = 0x00;
const SPILLED: u8 = 0x01;
/// Slot body of a spilled record: marker + u32 total len + u32 first blk.
const STUB: usize = 9;
/// Overflow-chain terminator (block numbers are real from 0 up).
const NO_BLOCK: u32 = u32::MAX;

/// Stable handle to one stored payload: block number and slot index.
/// Handles survive in-page compaction (slots rebind to moved bytes) and
/// in-place updates; only an update that no longer fits its page returns
/// a fresh handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapId {
    pub block: u32,
    pub slot: u16,
}

impl std::fmt::Display for HeapId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.block, self.slot)
    }
}

/// Physical occupancy statistics, published as `heap.*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total blocks in the file (slotted + overflow + recycled virgin).
    pub pages: u64,
    /// Live records (inline or spilled), i.e. live slots.
    pub records: u64,
    /// Sum of live payload lengths (markers, stubs, and page headers
    /// excluded — this is the caller's bytes, not the file's).
    pub live_bytes: u64,
    /// Fill factor in percent: live bytes over total file bytes.
    pub fill_pct: u64,
}

/// Per-slotted-page free-space map entry.
#[derive(Debug, Clone, Copy, Default)]
struct PageSpace {
    /// Contiguous free bytes between the slot directory and `free_ptr`.
    free: u16,
    /// Dead bytes inside the data area (erased payloads), reclaimable by
    /// in-page compaction.
    dead: u16,
    /// Slots currently free for reuse (off == 0).
    free_slots: u16,
}

/// A heap file: slotted record pages + overflow chains in one paged file.
#[derive(Debug)]
pub struct HeapFile {
    bm: BufferMgr,
    file: String,
    /// Number of blocks currently in the file.
    blocks: u32,
    /// Free-space map over slotted pages.
    space: BTreeMap<u32, PageSpace>,
    /// Virgin blocks (erased overflow pages) available for reuse.
    virgin: Vec<u32>,
    /// Live record count.
    records: u64,
    /// Live payload bytes.
    live_bytes: u64,
}

impl HeapFile {
    /// Open (or create) heap file `file` with a pool of `pool` frames.
    /// Existing pages are scanned once to rebuild the free-space map.
    pub fn open(fm: Arc<FileMgr>, file: impl Into<String>, pool: usize) -> DiskResult<HeapFile> {
        let file = file.into();
        let blocks = u32::try_from(fm.block_count(&file)?)
            .map_err(|_| DiskError::Config(format!("heap {file} exceeds u32 blocks")))?;
        let bm = BufferMgr::new(fm, pool)?;
        let mut heap = HeapFile {
            bm,
            file,
            blocks,
            space: BTreeMap::new(),
            virgin: Vec::new(),
            records: 0,
            live_bytes: 0,
        };
        heap.rescan()?;
        Ok(heap)
    }

    /// Rebuild the free-space map, virgin list, and occupancy counters by
    /// scanning every page. Also used after recovery rolls pages back.
    pub fn rescan(&mut self) -> DiskResult<()> {
        self.space.clear();
        self.virgin.clear();
        self.records = 0;
        self.live_bytes = 0;
        for b in 0..self.blocks {
            let (kind, entries) = self.with_page(b, |page| {
                let kind = page.as_slice()[0];
                let mut entries = Vec::new();
                if kind == KIND_SLOTTED {
                    let n = read_u16(page, 1)?;
                    for s in 0..n {
                        entries.push((read_u16(page, HDR + s as usize * SLOT)?, {
                            read_u16(page, HDR + s as usize * SLOT + 2)?
                        }));
                    }
                }
                Ok((kind, entries))
            })?;
            match kind {
                KIND_VIRGIN => self.virgin.push(b),
                KIND_OVERFLOW => {}
                KIND_SLOTTED => {
                    for (slot, &(off, len)) in entries.iter().enumerate() {
                        if off == 0 {
                            continue;
                        }
                        self.records += 1;
                        let id = HeapId {
                            block: b,
                            slot: slot as u16,
                        };
                        let body = self.read_slot(id, off, len)?;
                        self.live_bytes += match body.first() {
                            Some(&SPILLED) => parse_stub(&body)?.0 as u64,
                            _ => u64::from(len).saturating_sub(1),
                        };
                    }
                    self.recompute_space(b, &entries);
                }
                other => {
                    return Err(DiskError::Corrupt(format!(
                        "heap {}[{b}]: unknown page kind 0x{other:02x}",
                        self.file
                    )))
                }
            }
        }
        Ok(())
    }

    /// The underlying buffer pool (for policy flips, flushes, and dirty
    /// tracking by the durable owner).
    pub fn buffer(&mut self) -> &mut BufferMgr {
        &mut self.bm
    }

    /// Physical statistics for gauges and benches.
    pub fn stats(&self) -> HeapStats {
        let page = self.page_size() as u64;
        let total = u64::from(self.blocks) * page;
        HeapStats {
            pages: u64::from(self.blocks),
            records: self.records,
            live_bytes: self.live_bytes,
            fill_pct: (self.live_bytes * 100).checked_div(total).unwrap_or(0),
        }
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        u64::from(self.blocks) * self.page_size() as u64
    }

    fn page_size(&self) -> usize {
        self.bm.page_size()
    }

    /// Largest payload stored inline; anything bigger spills.
    fn inline_max(&self) -> usize {
        // A fresh page must hold the marker + payload after header + slot.
        self.page_size() - HDR - SLOT - 1
    }

    fn blk(&self, b: u32) -> BlockId {
        BlockId::new(self.file.clone(), u64::from(b))
    }

    /// Pin block `b`, run `f` on its page, unpin. Read-only.
    fn with_page<T>(&mut self, b: u32, f: impl FnOnce(&Page) -> DiskResult<T>) -> DiskResult<T> {
        let fid = self.bm.pin(&self.blk(b), None)?;
        let out = f(self.bm.page(fid)?);
        self.bm.unpin(fid)?;
        out
    }

    /// Pin block `b`, run `f` mutably on its page, mark dirty, unpin.
    fn with_page_mut<T>(
        &mut self,
        b: u32,
        f: impl FnOnce(&mut Page) -> DiskResult<T>,
    ) -> DiskResult<T> {
        let fid = self.bm.pin(&self.blk(b), None)?;
        let out = f(self.bm.page_mut(fid)?);
        if out.is_ok() {
            self.bm.mark_dirty(fid, 0)?;
        }
        self.bm.unpin(fid)?;
        out
    }

    /// Append a fresh block (or recycle a virgin one) and return its id.
    fn alloc_block(&mut self, kind: u8) -> DiskResult<u32> {
        if let Some(b) = self.virgin.pop() {
            self.with_page_mut(b, |page| {
                page.zero();
                page.as_mut_slice()[0] = kind;
                Ok(())
            })?;
            return Ok(b);
        }
        let b = self.blocks;
        self.blocks = self
            .blocks
            .checked_add(1)
            .ok_or_else(|| DiskError::Config("heap grew past u32 blocks".to_string()))?;
        self.with_page_mut(b, |page| {
            page.zero();
            page.as_mut_slice()[0] = kind;
            Ok(())
        })?;
        Ok(b)
    }

    fn recompute_space(&mut self, b: u32, entries: &[(u16, u16)]) {
        let ps = self.page_size() as u16;
        let n = entries.len() as u16;
        let free_ptr = entries
            .iter()
            .filter(|(off, _)| *off != 0)
            .map(|(off, _)| *off)
            .min()
            .unwrap_or(ps);
        let dir_end = HDR as u16 + n * SLOT as u16;
        let live: u16 = entries
            .iter()
            .filter(|(off, _)| *off != 0)
            .map(|(_, len)| *len)
            .sum();
        let free_slots = entries.iter().filter(|(off, _)| *off == 0).count() as u16;
        self.space.insert(
            b,
            PageSpace {
                free: free_ptr - dir_end,
                dead: (ps - free_ptr) - live,
                free_slots,
            },
        );
    }

    /// Find (or create) a slotted page able to take `need` payload bytes,
    /// compacting a fragmented page in place when that suffices. First
    /// fit in block order keeps placement deterministic.
    fn place(&mut self, need: u16) -> DiskResult<u32> {
        let cost_new_slot = need + SLOT as u16;
        let candidate = self.space.iter().find_map(|(&b, sp)| {
            let cost = if sp.free_slots > 0 {
                need
            } else {
                cost_new_slot
            };
            if sp.free >= cost {
                Some((b, false))
            } else if sp.free + sp.dead >= cost {
                Some((b, true))
            } else {
                None
            }
        });
        match candidate {
            Some((b, false)) => Ok(b),
            Some((b, true)) => {
                self.compact(b)?;
                Ok(b)
            }
            None => {
                let b = self.alloc_block(KIND_SLOTTED)?;
                let ps = self.page_size() as u16;
                self.with_page_mut(b, |page| {
                    write_u16(page, 3, ps) // free_ptr = page end
                })?;
                self.space.insert(
                    b,
                    PageSpace {
                        free: ps - HDR as u16,
                        dead: 0,
                        free_slots: 0,
                    },
                );
                Ok(b)
            }
        }
    }

    /// Slide live payloads of page `b` to the high end, turning dead
    /// bytes into contiguous free space. Slot offsets rebind, so
    /// [`HeapId`]s are unaffected.
    fn compact(&mut self, b: u32) -> DiskResult<()> {
        let entries = self.with_page_mut(b, |page| {
            let ps = page.size();
            let n = read_u16(page, 1)? as usize;
            let mut entries: Vec<(u16, u16)> = (0..n)
                .map(|s| {
                    Ok((
                        read_u16(page, HDR + s * SLOT)?,
                        read_u16(page, HDR + s * SLOT + 2)?,
                    ))
                })
                .collect::<DiskResult<_>>()?;
            // Move highest-offset payloads first so writes never overlap
            // unmoved live bytes.
            let mut order: Vec<usize> = (0..n).filter(|&s| entries[s].0 != 0).collect();
            order.sort_by_key(|&s| std::cmp::Reverse(entries[s].0));
            let mut top = ps as u16;
            for s in order {
                let (off, len) = entries[s];
                top -= len;
                if top != off {
                    let bytes = page.read_at(off as usize, len as usize)?.to_vec();
                    page.write_at(top as usize, &bytes)?;
                    write_u16(page, HDR + s * SLOT, top)?;
                }
                entries[s].0 = top;
            }
            write_u16(page, 3, top)?;
            Ok(entries)
        })?;
        self.recompute_space(b, &entries);
        Ok(())
    }

    /// Carve `len` bytes out of page `b`'s data area and bind them to a
    /// slot (reusing a free slot when one exists). Returns the handle;
    /// the caller writes the body via the returned offset.
    fn bind_slot(&mut self, b: u32, body: &[u8]) -> DiskResult<HeapId> {
        let len = body.len() as u16;
        let entries = self.with_page_mut(b, |page| {
            let n = read_u16(page, 1)? as usize;
            let free_ptr = read_u16(page, 3)?;
            let slot = (0..n).find(|&s| matches!(read_u16(page, HDR + s * SLOT), Ok(0)));
            let off = free_ptr - len;
            page.write_at(off as usize, body)?;
            write_u16(page, 3, off)?;
            let s = match slot {
                Some(s) => s,
                None => {
                    write_u16(page, 1, n as u16 + 1)?;
                    n
                }
            };
            write_u16(page, HDR + s * SLOT, off)?;
            write_u16(page, HDR + s * SLOT + 2, len)?;
            let total = read_u16(page, 1)? as usize;
            let entries: Vec<(u16, u16)> = (0..total)
                .map(|e| {
                    Ok((
                        read_u16(page, HDR + e * SLOT)?,
                        read_u16(page, HDR + e * SLOT + 2)?,
                    ))
                })
                .collect::<DiskResult<_>>()?;
            Ok((s as u16, entries))
        })?;
        self.recompute_space(b, &entries.1);
        Ok(HeapId {
            block: b,
            slot: entries.0,
        })
    }

    /// Store `payload`, returning its stable handle.
    pub fn insert(&mut self, payload: &[u8]) -> DiskResult<HeapId> {
        let body = if payload.len() <= self.inline_max() {
            let mut body = Vec::with_capacity(payload.len() + 1);
            body.push(INLINE);
            body.extend_from_slice(payload);
            body
        } else {
            self.spill_stub(payload)?
        };
        let b = self.place(body.len() as u16)?;
        let id = self.bind_slot(b, &body)?;
        self.records += 1;
        self.live_bytes += payload.len() as u64;
        Ok(id)
    }

    /// Write `payload` into an overflow chain, returning the slot stub.
    fn spill_stub(&mut self, payload: &[u8]) -> DiskResult<Vec<u8>> {
        let chunk_max = self.page_size() - OVF_HDR;
        let mut chunks: Vec<&[u8]> = payload.chunks(chunk_max).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let blocks: Vec<u32> = chunks
            .iter()
            .map(|_| self.alloc_block(KIND_OVERFLOW))
            .collect::<DiskResult<_>>()?;
        for (i, chunk) in chunks.iter().enumerate() {
            let next = blocks.get(i + 1).copied().unwrap_or(NO_BLOCK);
            self.with_page_mut(blocks[i], |page| {
                page.as_mut_slice()[0] = KIND_OVERFLOW;
                write_u32(page, 1, next)?;
                write_u16(page, 5, chunk.len() as u16)?;
                page.write_at(OVF_HDR, chunk)
            })?;
        }
        let mut stub = Vec::with_capacity(STUB);
        stub.push(SPILLED);
        stub.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        stub.extend_from_slice(&blocks[0].to_le_bytes());
        Ok(stub)
    }

    /// Read one slot's raw body bytes.
    fn read_slot(&mut self, id: HeapId, off: u16, len: u16) -> DiskResult<Vec<u8>> {
        if off == 0 {
            return Err(DiskError::State(format!(
                "heap {}: read of erased slot {id}",
                self.file
            )));
        }
        self.with_page(id.block, |page| {
            Ok(page.read_at(off as usize, len as usize)?.to_vec())
        })
    }

    /// Slot-directory entry for `id`, verifying the page kind.
    fn entry(&mut self, id: HeapId) -> DiskResult<(u16, u16)> {
        if id.block >= self.blocks {
            return Err(DiskError::State(format!(
                "heap {}: block {} out of range",
                self.file, id.block
            )));
        }
        self.with_page(id.block, |page| {
            if page.as_slice()[0] != KIND_SLOTTED {
                return Err(DiskError::State(format!(
                    "heap: {id} does not address a slotted page"
                )));
            }
            let n = read_u16(page, 1)?;
            if id.slot >= n {
                return Err(DiskError::State(format!("heap: no slot {id}")));
            }
            Ok((
                read_u16(page, HDR + id.slot as usize * SLOT)?,
                read_u16(page, HDR + id.slot as usize * SLOT + 2)?,
            ))
        })
    }

    /// Fetch the payload stored at `id`.
    pub fn get(&mut self, id: HeapId) -> DiskResult<Vec<u8>> {
        let (off, len) = self.entry(id)?;
        let body = self.read_slot(id, off, len)?;
        match body.first() {
            Some(&INLINE) => Ok(body[1..].to_vec()),
            Some(&SPILLED) => {
                let (total, first) = parse_stub(&body)?;
                let mut out = Vec::with_capacity(total);
                let mut b = first;
                while b != NO_BLOCK {
                    let (next, chunk) = self.with_page(b, |page| {
                        if page.as_slice()[0] != KIND_OVERFLOW {
                            return Err(DiskError::Corrupt(format!(
                                "heap: overflow chain of {id} hit non-overflow block {b}"
                            )));
                        }
                        let next = read_u32(page, 1)?;
                        let clen = read_u16(page, 5)? as usize;
                        Ok((next, page.read_at(OVF_HDR, clen)?.to_vec()))
                    })?;
                    out.extend_from_slice(&chunk);
                    b = next;
                }
                if out.len() != total {
                    return Err(DiskError::Corrupt(format!(
                        "heap: overflow chain of {id} yielded {} bytes, stub said {total}",
                        out.len()
                    )));
                }
                Ok(out)
            }
            _ => Err(DiskError::Corrupt(format!("heap: {id} has no marker byte"))),
        }
    }

    /// Free the slot at `id` (and any overflow chain hanging off it).
    pub fn erase(&mut self, id: HeapId) -> DiskResult<()> {
        let (off, len) = self.entry(id)?;
        let body = self.read_slot(id, off, len)?;
        if let Some(&SPILLED) = body.first() {
            let (total, first) = parse_stub(&body)?;
            self.free_chain(first)?;
            self.live_bytes -= total as u64;
        } else {
            self.live_bytes -= (len as u64).saturating_sub(1);
        }
        let entries = self.with_page_mut(id.block, |page| {
            write_u16(page, HDR + id.slot as usize * SLOT, 0)?;
            write_u16(page, HDR + id.slot as usize * SLOT + 2, 0)?;
            // If this payload was the lowest, free_ptr can retreat; leave
            // it — recompute_space treats the gap as dead, and compaction
            // reclaims it when needed.
            let n = read_u16(page, 1)? as usize;
            let entries: Vec<(u16, u16)> = (0..n)
                .map(|e| {
                    Ok((
                        read_u16(page, HDR + e * SLOT)?,
                        read_u16(page, HDR + e * SLOT + 2)?,
                    ))
                })
                .collect::<DiskResult<_>>()?;
            Ok(entries)
        })?;
        // free_ptr may now sit below the lowest live payload: fold the
        // difference into the free (not dead) side by raising it.
        self.with_page_mut(id.block, |page| {
            let ps = page.size() as u16;
            let low = entries
                .iter()
                .filter(|(o, _)| *o != 0)
                .map(|(o, _)| *o)
                .min()
                .unwrap_or(ps);
            write_u16(page, 3, low)
        })?;
        self.recompute_space(id.block, &entries);
        self.records -= 1;
        Ok(())
    }

    /// Zero an overflow chain back to virgin blocks for reuse.
    fn free_chain(&mut self, first: u32) -> DiskResult<()> {
        let mut b = first;
        while b != NO_BLOCK {
            let next = self.with_page_mut(b, |page| {
                let next = read_u32(page, 1)?;
                page.zero();
                Ok(next)
            })?;
            self.virgin.push(b);
            b = next;
        }
        self.virgin.sort_by(|a, b| b.cmp(a)); // pop() yields lowest first
        self.virgin.dedup();
        Ok(())
    }

    /// Replace the payload at `id`. Returns the (possibly new) handle:
    /// the id is preserved whenever the new body fits its current page —
    /// in place, or after compaction — and only a page overflow relocates
    /// the record.
    pub fn update(&mut self, id: HeapId, payload: &[u8]) -> DiskResult<HeapId> {
        let (off, len) = self.entry(id)?;
        let old_body = self.read_slot(id, off, len)?;
        let inline = payload.len() <= self.inline_max();

        // Fast path: same-size inline rewrite in place.
        if inline && payload.len() + 1 == len as usize && old_body.first() == Some(&INLINE) {
            self.with_page_mut(id.block, |page| page.write_at(off as usize + 1, payload))?;
            return Ok(id);
        }

        // General path: erase, then try to rebind the same slot on the
        // same page before falling back to a fresh placement.
        if old_body.first() == Some(&SPILLED) {
            let (total, first) = parse_stub(&old_body)?;
            self.free_chain(first)?;
            self.live_bytes -= total as u64;
        } else {
            self.live_bytes -= u64::from(len).saturating_sub(1);
        }
        let body = if inline {
            let mut body = Vec::with_capacity(payload.len() + 1);
            body.push(INLINE);
            body.extend_from_slice(payload);
            body
        } else {
            self.spill_stub(payload)?
        };
        let need = body.len() as u16;
        // Free the old bytes (slot stays allocated to us).
        let entries = self.with_page_mut(id.block, |page| {
            write_u16(page, HDR + id.slot as usize * SLOT, 0)?;
            write_u16(page, HDR + id.slot as usize * SLOT + 2, 0)?;
            let ps = page.size() as u16;
            let n = read_u16(page, 1)? as usize;
            let entries: Vec<(u16, u16)> = (0..n)
                .map(|e| {
                    Ok((
                        read_u16(page, HDR + e * SLOT)?,
                        read_u16(page, HDR + e * SLOT + 2)?,
                    ))
                })
                .collect::<DiskResult<_>>()?;
            let low = entries
                .iter()
                .filter(|(o, _)| *o != 0)
                .map(|(o, _)| *o)
                .min()
                .unwrap_or(ps);
            write_u16(page, 3, low)?;
            Ok(entries)
        })?;
        self.recompute_space(id.block, &entries);
        let sp = self.space.get(&id.block).copied().unwrap_or_default();
        let new_id = if sp.free >= need {
            self.rebind(id, &body)?
        } else if sp.free + sp.dead >= need {
            self.compact(id.block)?;
            self.rebind(id, &body)?
        } else {
            // Relocation: the old slot stays behind as a free slot, the
            // record count is unchanged.
            let b = self.place(need)?;
            self.bind_slot(b, &body)?
        };
        self.live_bytes += payload.len() as u64;
        Ok(new_id)
    }

    /// Re-point slot `id.slot` of its page at freshly written `body`.
    fn rebind(&mut self, id: HeapId, body: &[u8]) -> DiskResult<HeapId> {
        let len = body.len() as u16;
        let entries = self.with_page_mut(id.block, |page| {
            let free_ptr = read_u16(page, 3)?;
            let off = free_ptr - len;
            page.write_at(off as usize, body)?;
            write_u16(page, 3, off)?;
            write_u16(page, HDR + id.slot as usize * SLOT, off)?;
            write_u16(page, HDR + id.slot as usize * SLOT + 2, len)?;
            let n = read_u16(page, 1)? as usize;
            let entries: Vec<(u16, u16)> = (0..n)
                .map(|e| {
                    Ok((
                        read_u16(page, HDR + e * SLOT)?,
                        read_u16(page, HDR + e * SLOT + 2)?,
                    ))
                })
                .collect::<DiskResult<_>>()?;
            Ok(entries)
        })?;
        self.recompute_space(id.block, &entries);
        Ok(id)
    }

    /// Visit every live record in (block, slot) order.
    pub fn for_each(
        &mut self,
        f: &mut dyn FnMut(HeapId, Vec<u8>) -> DiskResult<()>,
    ) -> DiskResult<()> {
        for b in 0..self.blocks {
            let slots = self.with_page(b, |page| {
                if page.as_slice()[0] != KIND_SLOTTED {
                    return Ok(Vec::new());
                }
                let n = read_u16(page, 1)?;
                (0..n)
                    .map(|s| Ok((s, read_u16(page, HDR + s as usize * SLOT)?)))
                    .collect::<DiskResult<Vec<(u16, u16)>>>()
            })?;
            for (slot, off) in slots {
                if off == 0 {
                    continue;
                }
                let id = HeapId { block: b, slot };
                let payload = self.get(id)?;
                f(id, payload)?;
            }
        }
        Ok(())
    }

    /// Write back every dirty frame. Does not fsync.
    pub fn flush(&mut self) -> DiskResult<()> {
        self.bm.flush_all(None)
    }
}

fn read_u16(page: &Page, off: usize) -> DiskResult<u16> {
    let b = page.read_at(off, 2)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn write_u16(page: &mut Page, off: usize, v: u16) -> DiskResult<()> {
    page.write_at(off, &v.to_le_bytes())
}

fn read_u32(page: &Page, off: usize) -> DiskResult<u32> {
    let b = page.read_at(off, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn write_u32(page: &mut Page, off: usize, v: u32) -> DiskResult<()> {
    page.write_at(off, &v.to_le_bytes())
}

fn parse_stub(body: &[u8]) -> DiskResult<(usize, u32)> {
    if body.len() != STUB {
        return Err(DiskError::Corrupt(format!(
            "heap: spilled stub of {} bytes",
            body.len()
        )));
    }
    let total = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) as usize;
    let first = u32::from_le_bytes([body[5], body[6], body[7], body[8]]);
    Ok((total, first))
}

#[cfg(test)]
mod tests {
    use super::super::tempdir::TempDir;
    use super::*;

    fn setup(page: usize, pool: usize) -> (TempDir, HeapFile) {
        let dir = TempDir::new("heap").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), page).unwrap());
        let heap = HeapFile::open(fm, "heap.dat", pool).unwrap();
        (dir, heap)
    }

    #[test]
    fn insert_get_round_trips() {
        let (_d, mut heap) = setup(128, 4);
        let a = heap.insert(b"alpha").unwrap();
        let b = heap.insert(b"bravo-longer").unwrap();
        assert_eq!(heap.get(a).unwrap(), b"alpha");
        assert_eq!(heap.get(b).unwrap(), b"bravo-longer");
        assert_eq!(heap.stats().records, 2);
    }

    #[test]
    fn erase_frees_and_reuses_space() {
        let (_d, mut heap) = setup(128, 4);
        let ids: Vec<HeapId> = (0..20)
            .map(|i| heap.insert(format!("rec-{i:02}-xxxx").as_bytes()).unwrap())
            .collect();
        let pages_before = heap.stats().pages;
        for id in &ids {
            heap.erase(*id).unwrap();
        }
        assert_eq!(heap.stats().records, 0);
        // Refilling reuses the freed space instead of growing the file.
        for i in 0..20 {
            heap.insert(format!("rec-{i:02}-xxxx").as_bytes()).unwrap();
        }
        assert_eq!(heap.stats().pages, pages_before);
    }

    #[test]
    fn update_in_place_preserves_handle() {
        let (_d, mut heap) = setup(128, 4);
        let id = heap.insert(b"0123456789").unwrap();
        let same = heap.update(id, b"abcdefghij").unwrap();
        assert_eq!(same, id);
        assert_eq!(heap.get(id).unwrap(), b"abcdefghij");
    }

    #[test]
    fn update_grown_payload_still_prefers_its_page() {
        let (_d, mut heap) = setup(256, 4);
        let id = heap.insert(b"short").unwrap();
        let grown = vec![b'G'; 100];
        let new_id = heap.update(id, &grown).unwrap();
        assert_eq!(new_id, id, "page had room — handle must be stable");
        assert_eq!(heap.get(id).unwrap(), grown);
    }

    #[test]
    fn jumbo_records_spill_to_overflow_chains() {
        let (_d, mut heap) = setup(128, 4);
        let jumbo: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let id = heap.insert(&jumbo).unwrap();
        assert_eq!(heap.get(id).unwrap(), jumbo);
        let pages_with_chain = heap.stats().pages;
        heap.erase(id).unwrap();
        // The chain's blocks are recycled by the next jumbo insert.
        let id2 = heap.insert(&jumbo).unwrap();
        assert_eq!(heap.stats().pages, pages_with_chain);
        assert_eq!(heap.get(id2).unwrap(), jumbo);
    }

    #[test]
    fn compaction_reclaims_fragmented_pages() {
        let (_d, mut heap) = setup(128, 4);
        // Fill one page with small records, erase every other one, then
        // ask for a payload that only fits after compaction.
        let ids: Vec<HeapId> = (0..8)
            .map(|i| heap.insert(&[i as u8; 10]).unwrap())
            .collect();
        let first_page: Vec<&HeapId> = ids.iter().filter(|id| id.block == ids[0].block).collect();
        for id in first_page.iter().step_by(2) {
            heap.erase(**id).unwrap();
        }
        let sp_before = heap.stats();
        let big = heap.insert(&[0xEE; 20]).unwrap();
        assert_eq!(heap.get(big).unwrap(), vec![0xEE; 20]);
        assert!(heap.stats().pages <= sp_before.pages + 1);
    }

    #[test]
    fn reopen_rebuilds_free_map_and_counts() {
        let dir = TempDir::new("heap-reopen").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), 128).unwrap());
        let mut heap = HeapFile::open(Arc::clone(&fm), "heap.dat", 4).unwrap();
        let keep = heap.insert(b"keeper").unwrap();
        let gone = heap.insert(b"goner!").unwrap();
        let jumbo: Vec<u8> = vec![7; 500];
        let big = heap.insert(&jumbo).unwrap();
        heap.erase(gone).unwrap();
        heap.flush().unwrap();
        let stats = heap.stats();
        drop(heap);

        let mut heap = HeapFile::open(fm, "heap.dat", 4).unwrap();
        assert_eq!(heap.stats(), stats);
        assert_eq!(heap.get(keep).unwrap(), b"keeper");
        assert_eq!(heap.get(big).unwrap(), jumbo);
        assert!(heap.get(gone).is_err());
        // Free space from the erase is found again.
        let back = heap.insert(b"re-use").unwrap();
        assert_eq!(back.block, gone.block);
    }

    #[test]
    fn for_each_visits_live_records_in_handle_order() {
        let (_d, mut heap) = setup(128, 4);
        let a = heap.insert(b"aa").unwrap();
        let b = heap.insert(b"bb").unwrap();
        let c = heap.insert(b"cc").unwrap();
        heap.erase(b).unwrap();
        let mut seen = Vec::new();
        heap.for_each(&mut |id, bytes| {
            seen.push((id, bytes));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![(a, b"aa".to_vec()), (c, b"cc".to_vec())]);
    }

    #[test]
    fn tiny_pool_still_serves_many_pages() {
        let (_d, mut heap) = setup(128, 2);
        let ids: Vec<HeapId> = (0..200)
            .map(|i| {
                heap.insert(format!("record-number-{i:04}").as_bytes())
                    .unwrap()
            })
            .collect();
        assert!(heap.stats().pages > 10, "working set must exceed the pool");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                heap.get(*id).unwrap(),
                format!("record-number-{i:04}").as_bytes()
            );
        }
    }
}
