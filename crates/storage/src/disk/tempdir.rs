//! Self-cleaning scratch directories for disk tests and benches.
//!
//! Every test that touches real files creates its database under a
//! [`TempDir`], which removes the whole tree when dropped. Uniqueness
//! comes from the process id plus a process-local counter, so parallel
//! test threads and the cross-process recovery matrix never collide.
//! All paths live under a single well-known parent
//! (`$TMPDIR/dbpc-tmp/`), which lets the hygiene guard test assert that
//! a suite leaves nothing behind.

use super::{DiskError, DiskResult};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Well-known parent for all dbpc scratch directories.
pub fn scratch_root() -> PathBuf {
    std::env::temp_dir().join("dbpc-tmp")
}

/// A uniquely named directory removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    armed: bool,
}

impl TempDir {
    /// Create `$TMPDIR/dbpc-tmp/<pid>-<n>-<label>`.
    pub fn new(label: &str) -> DiskResult<TempDir> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let clean: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(48)
            .collect();
        let path = scratch_root().join(format!("{}-{n}-{clean}", std::process::id()));
        std::fs::create_dir_all(&path).map_err(|e| DiskError::Io {
            op: "create tempdir",
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(TempDir { path, armed: true })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disarm cleanup and hand back the path — for handing a directory to
    /// a child process that outlives this handle.
    pub fn keep(mut self) -> PathBuf {
        self.armed = false;
        self.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if self.armed {
            // Best effort: a failed cleanup should never panic a test's
            // unwind path; the hygiene guard test will catch leftovers.
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_unique_created_and_removed_on_drop() {
        let a = TempDir::new("alpha").unwrap();
        let b = TempDir::new("alpha").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.path().join("x.bin"), b"payload").unwrap();
        let gone = a.path().to_path_buf();
        drop(a);
        assert!(!gone.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn keep_disarms_cleanup() {
        let d = TempDir::new("kept").unwrap();
        let path = d.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn labels_are_sanitized() {
        let d = TempDir::new("we/ird label!").unwrap();
        let name = d.path().file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.ends_with("we-ird-label-"), "{name}");
    }
}
