//! Write-ahead log manager: append-only checksummed records over pages.
//!
//! The log is a byte stream chunked into [`FileMgr`] pages. Each record
//! is framed as `[u32 payload-len][u64 fnv64(payload)][payload]` and may
//! span page boundaries; a zero length marks the end of the valid
//! stream (pages are zero-initialized, so freshly extended space reads
//! as "no record"). Records are numbered by 1-based log sequence
//! numbers ([`Lsn`]) in append order.
//!
//! **Flush discipline.** [`LogMgr::append`] only stages bytes into the
//! in-memory tail page; nothing is durable until [`LogMgr::flush`] (write
//! tail + fsync) or [`LogMgr::flush_os`] (write tail, let the OS page
//! cache carry it — durable against process kill, not power loss)
//! succeeds. [`LogMgr::flush_before`] gives the buffer manager the
//! classic WAL guarantee: no data page reaches disk before the log
//! records that describe it.
//!
//! **Recovery.** [`LogMgr::open`] scans the file from block zero,
//! verifying each record's checksum. The first zero length, truncated
//! frame, or checksum mismatch ends the valid prefix; anything after it
//! (a torn tail from a crashed append) is discarded by writing back a
//! cleansed tail page with the garbage zeroed. That cleansing write makes
//! recovery idempotent — a second `open` sees exactly the same prefix and
//! finds nothing left to truncate.

use super::codec::fnv64;
use super::file::{BlockId, FileMgr, Page};
use super::{DiskError, DiskResult};
use std::sync::Arc;

/// 1-based log sequence number; 0 means "nothing logged yet".
pub type Lsn = u64;

/// The intact records a recovery scan found, in LSN order.
pub type RecoveredRecords = Vec<(Lsn, Vec<u8>)>;

/// Metric: records appended.
pub const WAL_APPENDS: &str = "wal.appends";
/// Metric: flushes (tail-page write + sync handoff) performed.
pub const WAL_FLUSHES: &str = "wal.flushes";
/// Metric: framed bytes appended (header + payload).
pub const WAL_BYTES: &str = "wal.bytes";
/// Metric: intact records recovered by `open`.
pub const WAL_RECOVERED: &str = "wal.recovered_records";
/// Metric: torn tails truncated by `open`.
pub const WAL_TRUNCATIONS: &str = "wal.truncations";

const REC_HEADER: usize = 4 + 8;

/// Append-only write-ahead log over one paged file.
#[derive(Debug)]
pub struct LogMgr {
    fm: Arc<FileMgr>,
    /// Address of the tail block; `blk.file` is the log's file name. Kept
    /// as a whole [`BlockId`] so the hot write path never re-clones the
    /// name.
    blk: BlockId,
    /// In-memory image of the tail block.
    page: Page,
    tail_used: usize,
    next_lsn: Lsn,
    last_flushed: Lsn,
    /// Tail page has staged bytes not yet written to the file.
    dirty: bool,
    /// Bytes were written to the file since the last successful sync.
    needs_sync: bool,
}

impl LogMgr {
    /// Open (creating if absent) the log `file` under `fm`, running the
    /// recovery scan. Returns the manager positioned at the valid tail
    /// plus every intact record in LSN order.
    pub fn open(
        fm: Arc<FileMgr>,
        file: impl Into<String>,
    ) -> DiskResult<(LogMgr, RecoveredRecords)> {
        let file = file.into();
        let ps = fm.page_size();
        let blocks = fm.block_count(&file)?;
        let mut stream = vec![0u8; blocks as usize * ps];
        let mut scratch = Page::new(ps);
        for b in 0..blocks {
            fm.read(&BlockId::new(file.clone(), b), &mut scratch)?;
            stream[b as usize * ps..][..ps].copy_from_slice(scratch.as_slice());
        }

        let mut records: RecoveredRecords = Vec::new();
        let mut pos = 0usize;
        let mut torn = false;
        loop {
            if pos + REC_HEADER > stream.len() {
                // A partial header at the very end of the file can only be
                // garbage from a torn append (a full header would have
                // extended the file by a whole page).
                torn = pos < stream.len() && stream[pos..].iter().any(|&b| b != 0);
                break;
            }
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&stream[pos..pos + 4]);
            let len = u32::from_le_bytes(len4) as usize;
            if len == 0 {
                break;
            }
            let mut sum8 = [0u8; 8];
            sum8.copy_from_slice(&stream[pos + 4..pos + 12]);
            let sum = u64::from_le_bytes(sum8);
            let start = pos + REC_HEADER;
            if len > stream.len().saturating_sub(start) {
                torn = true;
                break;
            }
            let payload = &stream[start..start + len];
            if fnv64(payload) != sum {
                torn = true;
                break;
            }
            records.push((records.len() as Lsn + 1, payload.to_vec()));
            pos = start + len;
        }
        dbpc_obs::racy(WAL_RECOVERED, records.len() as u64);

        let last = records.len() as Lsn;
        let mut mgr = LogMgr {
            fm,
            blk: BlockId::new(file, (pos / ps) as u64),
            page: Page::new(ps),
            tail_used: pos % ps,
            next_lsn: last + 1,
            last_flushed: last,
            dirty: false,
            needs_sync: false,
        };
        // Rebuild the tail page image from the valid prefix, zeroing
        // whatever follows it.
        if (mgr.blk.num as usize) < blocks as usize {
            let base = mgr.blk.num as usize * ps;
            mgr.page
                .as_mut_slice()
                .copy_from_slice(&stream[base..base + ps]);
            mgr.page.as_mut_slice()[mgr.tail_used..].fill(0);
        }
        if torn {
            // Cleansing write: persist the zeroed tail so the torn bytes
            // can never be re-read, making a second recovery a no-op.
            dbpc_obs::racy(WAL_TRUNCATIONS, 1);
            mgr.fm.write(&mgr.blk, &mgr.page)?;
            mgr.fm.sync(&mgr.blk.file)?;
        }
        Ok((mgr, records))
    }

    /// Stage `payload` as the next record. Returns its LSN. Durable only
    /// after a later flush; a record that spans into fresh pages may write
    /// filled pages out eagerly (still covered by the flush contract).
    /// The frame (`[len][fnv64][payload]`) is staged straight into the
    /// tail page — no intermediate buffer on the commit path.
    pub fn append(&mut self, payload: &[u8]) -> DiskResult<Lsn> {
        if payload.is_empty() {
            return Err(DiskError::Config("empty WAL record".to_string()));
        }
        if payload.len() > u32::MAX as usize {
            return Err(DiskError::Config("WAL record too large".to_string()));
        }
        let len_le = (payload.len() as u32).to_le_bytes();
        let sum_le = fnv64(payload).to_le_bytes();

        let ps = self.page.size();
        for chunk in [&len_le[..], &sum_le[..], payload] {
            let mut off = 0usize;
            while off < chunk.len() {
                let n = (ps - self.tail_used).min(chunk.len() - off);
                self.page.write_at(self.tail_used, &chunk[off..off + n])?;
                self.tail_used += n;
                self.dirty = true;
                off += n;
                if self.tail_used == ps {
                    self.fm.write(&self.blk, &self.page)?;
                    self.needs_sync = true;
                    self.blk.num += 1;
                    self.tail_used = 0;
                    self.page.zero();
                    self.dirty = false;
                }
            }
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        dbpc_obs::racy(WAL_APPENDS, 1);
        dbpc_obs::racy(WAL_BYTES, (REC_HEADER + payload.len()) as u64);
        Ok(lsn)
    }

    fn flush_inner(&mut self, sync: bool) -> DiskResult<()> {
        if self.dirty {
            self.fm.write(&self.blk, &self.page)?;
            self.dirty = false;
            self.needs_sync = true;
        }
        if sync && self.needs_sync {
            self.fm.sync(&self.blk.file)?;
            self.needs_sync = false;
        }
        self.last_flushed = self.next_lsn - 1;
        dbpc_obs::racy(WAL_FLUSHES, 1);
        Ok(())
    }

    /// Write the tail page and fsync: every appended record is durable
    /// against power loss when this returns.
    pub fn flush(&mut self) -> DiskResult<()> {
        self.flush_inner(true)
    }

    /// Write the tail page without fsync: every appended record is in the
    /// OS page cache, durable against *process* death but not power loss.
    pub fn flush_os(&mut self) -> DiskResult<()> {
        self.flush_inner(false)
    }

    /// Ensure every record up to and including `lsn` is flushed — the
    /// flush-before-write hook the buffer manager calls before letting a
    /// data page with `lsn` as its latest modifier reach disk.
    pub fn flush_before(&mut self, lsn: Lsn) -> DiskResult<()> {
        if lsn > self.last_flushed {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// LSN of the most recently appended record (0 if none).
    pub fn last_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// LSN up to which the log is flushed (0 if nothing flushed).
    pub fn last_flushed(&self) -> Lsn {
        self.last_flushed
    }
}

#[cfg(test)]
mod tests {
    use super::super::faults::{DiskFault, DiskFaultPlan};
    use super::super::tempdir::TempDir;
    use super::*;

    fn mgr(dir: &TempDir, ps: usize) -> Arc<FileMgr> {
        Arc::new(FileMgr::new(dir.path(), ps).unwrap())
    }

    #[test]
    fn records_survive_reopen_in_order() {
        let dir = TempDir::new("wal-reopen").unwrap();
        let fm = mgr(&dir, 128);
        let (mut log, recs) = LogMgr::open(fm.clone(), "wal").unwrap();
        assert!(recs.is_empty());
        for i in 0..10u64 {
            // Records deliberately larger than a page for some i.
            let payload = vec![i as u8; 40 + (i as usize % 3) * 100];
            let lsn = log.append(&payload).unwrap();
            assert_eq!(lsn, i + 1);
        }
        log.flush().unwrap();
        assert_eq!(log.last_flushed(), 10);
        drop(log);

        let (log2, recs) = LogMgr::open(fm, "wal").unwrap();
        assert_eq!(recs.len(), 10);
        for (i, (lsn, payload)) in recs.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(payload.len(), 40 + (i % 3) * 100);
            assert!(payload.iter().all(|&b| b == i as u8));
        }
        assert_eq!(log2.last_lsn(), 10);
    }

    #[test]
    fn unflushed_tail_is_lost_on_reopen() {
        let dir = TempDir::new("wal-unflushed").unwrap();
        let fm = mgr(&dir, 128);
        let (mut log, _) = LogMgr::open(fm.clone(), "wal").unwrap();
        log.append(b"durable-one").unwrap();
        log.flush().unwrap();
        log.append(b"staged-only").unwrap();
        drop(log); // no flush: simulated kill

        let (_, recs) = LogMgr::open(fm, "wal").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, b"durable-one");
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = TempDir::new("wal-torn").unwrap();
        let fm = mgr(&dir, 128);
        let (mut log, _) = LogMgr::open(fm.clone(), "wal").unwrap();
        log.append(&[7u8; 50]).unwrap();
        log.flush().unwrap();
        // Tear the next flush: the record spills into the tail page whose
        // write is torn in half.
        drop(log);
        drop(fm);
        let plan = DiskFaultPlan::default().with_fault_at(0, DiskFault::TornWrite);
        let fm = Arc::new(
            FileMgr::new(dir.path(), 128)
                .unwrap()
                .with_faults(Some(plan)),
        );
        let (mut log, recs) = LogMgr::open(fm, "wal").unwrap();
        assert_eq!(recs.len(), 1);
        // The record spans into a fresh page, so the torn write fires
        // either on the eager full-page write inside append or on flush.
        let staged = log
            .append(&[9u8; 200])
            .map(|_| ())
            .and_then(|()| log.flush());
        assert!(staged.is_err());
        drop(log);

        let fm = mgr(&dir, 128);
        let (_, recs_a) = LogMgr::open(fm.clone(), "wal").unwrap();
        let (_, recs_b) = LogMgr::open(fm, "wal").unwrap();
        assert_eq!(recs_a, recs_b, "recovery twice == once");
        assert_eq!(recs_a.len(), 1);
        assert_eq!(recs_a[0].1, vec![7u8; 50]);
    }

    #[test]
    fn appends_after_recovery_continue_the_stream() {
        let dir = TempDir::new("wal-continue").unwrap();
        let fm = mgr(&dir, 128);
        let (mut log, _) = LogMgr::open(fm.clone(), "wal").unwrap();
        log.append(b"first").unwrap();
        log.flush().unwrap();
        drop(log);

        let (mut log, recs) = LogMgr::open(fm.clone(), "wal").unwrap();
        assert_eq!(recs.len(), 1);
        let lsn = log.append(b"second").unwrap();
        assert_eq!(lsn, 2);
        log.flush().unwrap();
        drop(log);

        let (_, recs) = LogMgr::open(fm, "wal").unwrap();
        assert_eq!(recs, vec![(1, b"first".to_vec()), (2, b"second".to_vec())]);
    }
}
