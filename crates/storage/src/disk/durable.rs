//! [`DurableNetworkDb`] — a [`NetworkDb`] whose commits survive process
//! death.
//!
//! ## Design: logical redo logging over the undo journal
//!
//! `txn.rs` already gives exact in-memory rollback, so the WAL only has
//! to make *commits* durable. Every mutation applies to the in-memory
//! engine immediately (keeping reads fast and rollback the existing
//! undo-journal path) and stages a **logical redo record** — the
//! arguments of the front-door call (`store`/`connect`/`disconnect`/
//! `erase`/`modify`). When the **outermost** savepoint commits, the
//! staged records plus a commit marker are appended to the WAL and
//! flushed; that flush is the commit boundary. Rolling back discards the
//! staged records along with the in-memory changes. Mutations outside
//! any savepoint auto-commit one record at a time.
//!
//! Replaying committed calls through the same front door reproduces the
//! engine state *exactly* — ids come from a sequential allocator, set
//! positions from declared keys plus arrival order, and
//! [`NetworkDb::fingerprint`] hashes nothing but functions of that call
//! history — so a fresh process recovers a byte-identical fingerprint,
//! and the [`StatCatalog`](crate::StatCatalog) fingerprint (a pure
//! function of the state) comes along for free.
//!
//! ## Out-of-core records, page-granular checkpoints
//!
//! The engine inside is **paged**: records live in a slotted heap file
//! (`heap.dat`) under a capped [`BufferMgr`](super::buffer::BufferMgr)
//! pool, so database size is bounded by disk, not RAM. Between
//! checkpoints the pool runs **no-steal** — dirty pages are never
//! evicted to disk (the pool grows instead), so the on-disk heap image
//! stays exactly the last checkpoint's state and WAL replay from it is
//! always correct.
//!
//! [`DurableNetworkDb::checkpoint`] is therefore *page-granular*: its
//! I/O is proportional to the pages dirtied since the last checkpoint,
//! not to database size. The protocol:
//!
//! 1. refresh lazily-synced set-link payloads ([`NetworkDb::sync_links`]);
//! 2. write the **old on-disk image** of every dirty block into a
//!    pre-image undo log (`ckpt.undo`) and fsync it;
//! 3. flush the dirty heap pages in place and sync `heap.dat`;
//! 4. start an empty WAL for the next generation;
//! 5. persist the allocator state (`next_id`, per-set arrival counters)
//!    plus application metadata in a per-generation blob;
//! 6. flip the two-slot ping-pong manifest — the atomic switch;
//! 7. retire the old generation's WAL/blob and the undo log.
//!
//! A crash before step 6 leaves the manifest on the old generation;
//! recovery finds `ckpt.undo` prepared for a *newer* generation, rolls
//! every recorded pre-image back (and re-zeroes blocks past the old
//! end-of-file), and the old generation is intact. A crash after step 6
//! finds the undo log prepared for the *current* generation and simply
//! discards it. Recovery rebuilds all in-RAM indexes by scanning the
//! heap ([`NetworkDb::recover_paged`]) and replaying the WAL.
//!
//! ## Failure semantics
//!
//! A failed commit flush (real I/O error or injected fault) leaves the
//! in-memory engine ahead of the durable state, so the handle **wedges**:
//! every later operation fails until the process reopens the directory,
//! which recovers the last durably committed state — the same thing a
//! `kill -9` at that moment would have produced. Dropping the handle
//! without committing loses exactly the uncommitted tail, nothing more.

use super::codec::{fnv64, ByteReader, ByteWriter};
use super::faults::DiskFaultPlan;
use super::file::{BlockId, FileMgr, Page, DEFAULT_PAGE_SIZE};
use super::log::{LogMgr, Lsn};
use super::{DiskError, DiskResult};
use crate::network_db::{NetworkDb, RecordId};
use crate::statcat::StatCatalog;
use crate::txn::Savepoint;
use dbpc_datamodel::network::NetworkSchema;
use dbpc_datamodel::value::Value;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::Arc;

/// How a commit's WAL flush reaches stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` on every commit: durable against power loss.
    #[default]
    Data,
    /// Write to the OS page cache on every commit, no `fsync`: durable
    /// against process death (`kill -9`), not power loss. This is the
    /// crash model of the E20 recovery matrix and roughly two orders of
    /// magnitude cheaper per small commit on ext4.
    Os,
}

/// Tuning knobs for opening a durable database.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableOptions {
    pub page_size: usize,
    /// Base capacity of the heap's buffer pool, in frames. Clean pages
    /// are bounded by this; dirty pages may grow past it between
    /// checkpoints (no-steal) and are trimmed back afterwards.
    pub buffers: usize,
    pub sync: SyncPolicy,
    pub faults: Option<DiskFaultPlan>,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            page_size: DEFAULT_PAGE_SIZE,
            buffers: 8,
            sync: SyncPolicy::Data,
            faults: None,
        }
    }
}

const MANIFEST: &str = "MANIFEST";
/// The heap file holding every record, shared across generations; only
/// the pages dirtied since the last checkpoint are rewritten.
const HEAP: &str = "heap.dat";
/// Pre-image undo log protecting in-place heap flushes (see module docs).
const UNDO: &str = "ckpt.undo";
const MAN_MAGIC: u64 = u64::from_le_bytes(*b"DBPCMAN1");
const META_MAGIC: u64 = u64::from_le_bytes(*b"DBPCMET1");
const UNDO_MAGIC: u64 = u64::from_le_bytes(*b"DBPCUND1");
const WAL_MAGIC: u64 = u64::from_le_bytes(*b"DBPCWAL1");

const TAG_HEADER: u8 = 1;
const TAG_OP: u8 = 2;
const TAG_COMMIT: u8 = 3;

const OP_STORE: u8 = 1;
const OP_CONNECT: u8 = 2;
const OP_DISCONNECT: u8 = 3;
const OP_ERASE: u8 = 4;
const OP_MODIFY: u8 = 5;

fn wal_file(gen: u64) -> String {
    format!("wal_{gen:06}.log")
}

fn meta_file(gen: u64) -> String {
    format!("meta_{gen:06}.blob")
}

/// Structural digest of a schema, stamped into snapshot and WAL headers
/// so an image can never be replayed under the wrong schema.
pub fn schema_fingerprint(schema: &NetworkSchema) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{schema:?}").hash(&mut h);
    h.finish()
}

/// A durably persisted owner-coupled-set database. See the module docs
/// for the logging design.
#[derive(Debug)]
pub struct DurableNetworkDb {
    fm: Arc<FileMgr>,
    log: LogMgr,
    db: NetworkDb,
    /// Base heap-pool capacity, remembered for the import rebuild path.
    pool: usize,
    gen: u64,
    meta: Vec<u8>,
    schema_fp: u64,
    sync: SyncPolicy,
    /// Redo records staged by the open transaction, encoded back to back
    /// in one flat buffer whose allocation survives across commits.
    pending: Vec<u8>,
    /// End offset in `pending` of each staged record.
    ends: Vec<usize>,
    /// Open savepoints with the staged-record count at their creation.
    marks: Vec<(Savepoint, usize)>,
    wedged: bool,
}

impl DurableNetworkDb {
    /// Open (or create) the database under `root`, recovering the last
    /// committed state: manifest → torn-checkpoint rollback → heap scan →
    /// WAL replay of committed transactions. Recovery is idempotent —
    /// opening twice yields the same fingerprint as opening once.
    pub fn open(
        root: impl Into<PathBuf>,
        schema: NetworkSchema,
        opts: DurableOptions,
    ) -> DiskResult<DurableNetworkDb> {
        let fm = Arc::new(FileMgr::new(root, opts.page_size)?.with_faults(opts.faults.clone()));
        let schema_fp = schema_fingerprint(&schema);
        let gen = read_manifest(&fm)?;
        rollback_torn_checkpoint(&fm, gen)?;
        let (next_id, next_seqs, meta) = if gen > 0 {
            read_meta_blob(&fm, gen, schema_fp)?
        } else {
            (1, Vec::new(), Vec::new())
        };
        let mut db = NetworkDb::recover_paged(
            schema,
            Arc::clone(&fm),
            HEAP,
            opts.buffers,
            next_id,
            &next_seqs,
        )
        .map_err(|e| DiskError::Corrupt(format!("heap recovery: {e}")))?;
        // From here on, dirty heap pages must never reach disk outside a
        // checkpoint: the on-disk heap image *is* the last checkpoint.
        // This must precede WAL replay — replayed ops dirty pages too.
        if let Some(bm) = db.heap_buffer() {
            bm.set_no_steal(true);
        }
        let (mut log, records) = LogMgr::open(fm.clone(), wal_file(gen))?;
        replay(&mut db, &records, schema_fp)?;
        if records.is_empty() {
            log.append(&header_record(schema_fp))?;
            flush_policy(&mut log, SyncPolicy::Data)?;
        }
        Ok(DurableNetworkDb {
            fm,
            log,
            db,
            pool: opts.buffers,
            gen,
            meta,
            schema_fp,
            sync: opts.sync,
            pending: Vec::new(),
            ends: Vec::new(),
            marks: Vec::new(),
            wedged: false,
        })
    }

    /// The in-memory engine, for reads. Mutations must go through this
    /// wrapper or they will not be logged.
    pub fn engine(&self) -> &NetworkDb {
        &self.db
    }

    /// Engine fingerprint of the current in-memory state.
    pub fn fingerprint(&self) -> u64 {
        self.db.fingerprint()
    }

    /// Fingerprint of the derived statistics catalogue.
    pub fn stat_fingerprint(&self) -> u64 {
        StatCatalog::of_network(&self.db).fingerprint()
    }

    /// Application metadata stored with the latest snapshot.
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Total disk operations (reads, writes, syncs) issued through this
    /// engine's [`FileMgr`] since open. The checkpoint-cost regression
    /// test diffs this around [`DurableNetworkDb::checkpoint`] to pin
    /// the page-granular contract: checkpoint I/O is proportional to
    /// the number of *dirty* pages, not to database size.
    pub fn disk_ops(&self) -> u64 {
        self.fm.op_count()
    }

    /// LSN of the newest WAL record in the current generation.
    pub fn wal_lsn(&self) -> Lsn {
        self.log.last_lsn()
    }

    /// True once a failed commit flush has wedged the handle (reopen the
    /// directory to recover the durable state).
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    fn ready(&self) -> DiskResult<()> {
        if self.wedged {
            return Err(DiskError::State(
                "handle wedged by a failed commit flush; reopen to recover".to_string(),
            ));
        }
        Ok(())
    }

    /// See [`NetworkDb::begin_savepoint`].
    pub fn begin_savepoint(&mut self) -> Savepoint {
        let sp = self.db.begin_savepoint();
        self.marks.push((sp, self.ends.len()));
        sp
    }

    /// See [`NetworkDb::rollback_to`]; also discards the staged redo
    /// records of the rolled-back suffix.
    pub fn rollback_to(&mut self, sp: Savepoint) {
        self.db.rollback_to(sp);
        if let Some(pos) = self.marks.iter().position(|&(s, _)| s == sp) {
            self.ends.truncate(self.marks[pos].1);
            self.pending
                .truncate(self.ends.last().copied().unwrap_or(0));
            self.marks.truncate(pos);
        }
    }

    /// See [`NetworkDb::commit`]. Committing the outermost savepoint is
    /// the durability point: staged records plus a commit marker are
    /// appended and flushed per the [`SyncPolicy`].
    pub fn commit(&mut self, sp: Savepoint) -> DiskResult<()> {
        self.ready()?;
        self.db.commit(sp);
        if let Some(pos) = self.marks.iter().position(|&(s, _)| s == sp) {
            self.marks.truncate(pos);
        }
        if self.marks.is_empty() {
            self.commit_pending()?;
        }
        Ok(())
    }

    fn commit_pending(&mut self) -> DiskResult<()> {
        if self.ends.is_empty() {
            return Ok(());
        }
        let result = (|| {
            let mut start = 0usize;
            for &end in &self.ends {
                self.log.append(&self.pending[start..end])?;
                start = end;
            }
            self.log.append(&[TAG_COMMIT])?;
            flush_policy(&mut self.log, self.sync)
        })();
        match result {
            Ok(()) => {
                self.pending.clear();
                self.ends.clear();
                Ok(())
            }
            Err(e) => {
                // The in-memory engine is now ahead of the durable state;
                // refuse everything further so the divergence cannot grow.
                self.wedged = true;
                Err(e)
            }
        }
    }

    /// Borrow the staged-record buffer for in-place encoding of one more
    /// record; [`Self::seal_op`] takes it back and marks the record end.
    fn begin_op(&mut self) -> ByteWriter {
        let mut w = ByteWriter::over(std::mem::take(&mut self.pending));
        w.put_u8(TAG_OP);
        w
    }

    fn seal_op(&mut self, w: ByteWriter) -> DiskResult<()> {
        self.pending = w.into_bytes();
        self.ends.push(self.pending.len());
        if self.marks.is_empty() {
            self.commit_pending()?;
        }
        Ok(())
    }

    /// See [`NetworkDb::store`].
    pub fn store(
        &mut self,
        rtype: &str,
        values: &[(&str, Value)],
        connects: &[(&str, RecordId)],
    ) -> DiskResult<RecordId> {
        self.ready()?;
        let id = self
            .db
            .store(rtype, values, connects)
            .map_err(DiskError::Engine)?;
        let mut w = self.begin_op();
        w.put_u8(OP_STORE);
        w.put_str(rtype);
        w.put_u32(values.len() as u32);
        for (name, v) in values {
            w.put_str(name);
            w.put_value(v);
        }
        w.put_u32(connects.len() as u32);
        for (set, owner) in connects {
            w.put_str(set);
            w.put_u64(owner.0);
        }
        self.seal_op(w)?;
        Ok(id)
    }

    /// See [`NetworkDb::connect`].
    pub fn connect(&mut self, set: &str, owner: RecordId, member: RecordId) -> DiskResult<()> {
        self.ready()?;
        self.db
            .connect(set, owner, member)
            .map_err(DiskError::Engine)?;
        let mut w = self.begin_op();
        w.put_u8(OP_CONNECT);
        w.put_str(set);
        w.put_u64(owner.0);
        w.put_u64(member.0);
        self.seal_op(w)
    }

    /// See [`NetworkDb::disconnect`].
    pub fn disconnect(&mut self, set: &str, member: RecordId) -> DiskResult<()> {
        self.ready()?;
        self.db.disconnect(set, member).map_err(DiskError::Engine)?;
        let mut w = self.begin_op();
        w.put_u8(OP_DISCONNECT);
        w.put_str(set);
        w.put_u64(member.0);
        self.seal_op(w)
    }

    /// See [`NetworkDb::erase`].
    pub fn erase(&mut self, id: RecordId, cascade: bool) -> DiskResult<Vec<RecordId>> {
        self.ready()?;
        let erased = self.db.erase(id, cascade).map_err(DiskError::Engine)?;
        let mut w = self.begin_op();
        w.put_u8(OP_ERASE);
        w.put_u64(id.0);
        w.put_u8(u8::from(cascade));
        self.seal_op(w)?;
        Ok(erased)
    }

    /// See [`NetworkDb::modify`].
    pub fn modify(&mut self, id: RecordId, assigns: &[(&str, Value)]) -> DiskResult<()> {
        self.ready()?;
        self.db.modify(id, assigns).map_err(DiskError::Engine)?;
        let mut w = self.begin_op();
        w.put_u8(OP_MODIFY);
        w.put_u64(id.0);
        w.put_u32(assigns.len() as u32);
        for (name, v) in assigns {
            w.put_str(name);
            w.put_value(v);
        }
        self.seal_op(w)
    }

    /// Force the WAL to stable storage regardless of the sync policy.
    pub fn sync(&mut self) -> DiskResult<()> {
        self.ready()?;
        self.log.flush()
    }

    /// Snapshot the committed state into a new generation and truncate
    /// the WAL. Must be called outside any savepoint. Crashing anywhere
    /// inside recovers either the old or the new generation, complete.
    pub fn checkpoint(&mut self, meta: &[u8]) -> DiskResult<()> {
        self.ready()?;
        if !self.marks.is_empty() {
            return Err(DiskError::State(
                "checkpoint inside an open savepoint".to_string(),
            ));
        }
        let result = self.checkpoint_inner(meta, false);
        if result.is_err() {
            self.wedged = true;
        }
        result
    }

    fn checkpoint_inner(&mut self, meta: &[u8], undo_prepared: bool) -> DiskResult<()> {
        let next = self.gen + 1;
        // Clear leftovers a crashed earlier checkpoint may have written;
        // the manifest still points at the current generation, so these
        // files are garbage by definition (pre-images in UNDO were already
        // rolled back by open()).
        self.fm.remove(&meta_file(next))?;
        self.fm.remove(&wal_file(next))?;

        // 1. Materialise lazily-deferred link rewrites so the dirty-page
        //    set below is the complete committed delta.
        self.db.sync_links().map_err(DiskError::Engine)?;

        // 2. Log pre-images of exactly the pages about to change, so a
        //    crash mid-flush can restore the current generation's heap.
        if !undo_prepared {
            let dirty: Vec<u64> = match self.db.heap_buffer() {
                Some(bm) => bm.dirty_blocks().iter().map(|b| b.num).collect(),
                None => Vec::new(),
            };
            prepare_undo(&self.fm, next, &dirty)?;
        }

        // 3. Flush those pages in place and make the heap file durable.
        //    Checkpoint I/O is therefore proportional to the number of
        //    dirty pages, not to the database size.
        self.db.flush_heap().map_err(DiskError::Engine)?;
        self.fm.sync(HEAP)?;

        // 4. Fresh WAL for the new generation.
        let (mut new_log, recs) = LogMgr::open(self.fm.clone(), wal_file(next))?;
        if !recs.is_empty() {
            return Err(DiskError::Corrupt(format!(
                "fresh WAL {} already holds {} records",
                wal_file(next),
                recs.len()
            )));
        }
        new_log.append(&header_record(self.schema_fp))?;
        new_log.flush()?;

        // 5. Sidecar with the allocator state and caller metadata.
        write_meta_blob(&self.fm, next, self.schema_fp, &self.db, meta)?;

        // 6. Atomically flip the manifest to the new generation.
        write_manifest(&self.fm, next)?;

        let old = self.gen;
        self.log = new_log;
        self.gen = next;
        self.meta = meta.to_vec();
        // 7. Retire the previous generation: its undo log, WAL, and meta
        //    sidecar (gen 0 has a WAL but no sidecar). Shrink the pool
        //    back to its base capacity now that nothing is dirty.
        self.fm.remove(UNDO)?;
        self.fm.remove(&wal_file(old))?;
        if old > 0 {
            self.fm.remove(&meta_file(old))?;
        }
        if let Some(bm) = self.db.heap_buffer() {
            bm.trim();
        }
        Ok(())
    }

    /// Replace the (empty or stale) contents with a full copy of `db` and
    /// checkpoint it — how the conversion service persists a freshly
    /// translated target database. The schema must match the one the
    /// handle was opened with.
    pub fn import(&mut self, db: &NetworkDb, meta: &[u8]) -> DiskResult<()> {
        self.ready()?;
        if !self.marks.is_empty() {
            return Err(DiskError::State(
                "import inside an open savepoint".to_string(),
            ));
        }
        if schema_fingerprint(db.schema()) != self.schema_fp {
            return Err(DiskError::State(
                "import schema differs from the opened schema".to_string(),
            ));
        }
        let result = self.import_inner(db, meta);
        if result.is_err() {
            self.wedged = true;
        }
        result
    }

    /// Import rewrites the whole heap file in place, so the undo log must
    /// cover every old page up front: pre-image all of them, zero them so
    /// no stale slotted page survives at an offset the rebuild does not
    /// overwrite, rebuild straight into the heap (eviction during the
    /// build is safe — every flushed page is covered by a pre-image or by
    /// the tail-zeroing rule in [`rollback_torn_checkpoint`]), then run
    /// the ordinary checkpoint with the undo already prepared.
    fn import_inner(&mut self, db: &NetworkDb, meta: &[u8]) -> DiskResult<()> {
        let next = self.gen + 1;
        let old_blocks = self.fm.block_count(HEAP)?;
        prepare_undo(&self.fm, next, &(0..old_blocks).collect::<Vec<u64>>())?;
        let zero = Page::new(self.fm.page_size());
        for b in 0..old_blocks {
            self.fm.write(&BlockId::new(HEAP, b), &zero)?;
        }
        let state = db.state_bytes();
        let mut rebuilt = NetworkDb::from_state_bytes_paged(
            db.schema().clone(),
            &state,
            Arc::clone(&self.fm),
            HEAP,
            self.pool,
        )
        .map_err(DiskError::Engine)?;
        if let Some(bm) = rebuilt.heap_buffer() {
            bm.set_no_steal(true);
        }
        self.db = rebuilt;
        self.checkpoint_inner(meta, true)
    }
}

fn header_record(schema_fp: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(TAG_HEADER);
    w.put_u64(WAL_MAGIC);
    w.put_u64(schema_fp);
    w.into_bytes()
}

fn flush_policy(log: &mut LogMgr, sync: SyncPolicy) -> DiskResult<()> {
    match sync {
        SyncPolicy::Data => log.flush(),
        SyncPolicy::Os => log.flush_os(),
    }
}

/// Replay the committed transactions of a recovered WAL onto `db`.
/// Uncommitted trailing ops (no commit marker) are discarded — they were
/// never durable.
fn replay(db: &mut NetworkDb, records: &[(Lsn, Vec<u8>)], schema_fp: u64) -> DiskResult<u64> {
    let mut committed = 0u64;
    let mut staged: Vec<&[u8]> = Vec::new();
    for (i, (lsn, rec)) in records.iter().enumerate() {
        let mut r = ByteReader::new(rec);
        let tag = r.get_u8("wal record tag")?;
        if i == 0 {
            if tag != TAG_HEADER {
                return Err(DiskError::Corrupt(
                    "WAL does not start with a header".to_string(),
                ));
            }
            if r.get_u64("wal magic")? != WAL_MAGIC {
                return Err(DiskError::Corrupt("bad WAL magic".to_string()));
            }
            if r.get_u64("wal schema fingerprint")? != schema_fp {
                return Err(DiskError::Corrupt(
                    "WAL was written under a different schema".to_string(),
                ));
            }
            continue;
        }
        match tag {
            TAG_OP => staged.push(&rec[1..]),
            TAG_COMMIT => {
                for op in staged.drain(..) {
                    apply_op(db, op)?;
                }
                committed += 1;
            }
            TAG_HEADER => {
                return Err(DiskError::Corrupt(format!(
                    "header record mid-log at lsn {lsn}"
                )))
            }
            t => {
                return Err(DiskError::Corrupt(format!(
                    "unknown WAL tag {t} at lsn {lsn}"
                )))
            }
        }
    }
    Ok(committed)
}

fn apply_op(db: &mut NetworkDb, op: &[u8]) -> DiskResult<()> {
    let mut r = ByteReader::new(op);
    let engine = |e: crate::error::DbError| {
        DiskError::Corrupt(format!("replay of committed op rejected: {e}"))
    };
    match r.get_u8("op tag")? {
        OP_STORE => {
            let rtype = r.get_str("store rtype")?;
            let n_values = r.get_u32("store value count")?;
            let mut values = Vec::with_capacity(n_values as usize);
            for _ in 0..n_values {
                values.push((r.get_str("store field")?, r.get_value("store value")?));
            }
            let n_connects = r.get_u32("store connect count")?;
            let mut connects = Vec::with_capacity(n_connects as usize);
            for _ in 0..n_connects {
                connects.push((r.get_str("store set")?, RecordId(r.get_u64("store owner")?)));
            }
            let value_refs: Vec<(&str, Value)> = values
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            let connect_refs: Vec<(&str, RecordId)> =
                connects.iter().map(|(s, o)| (s.as_str(), *o)).collect();
            db.store(&rtype, &value_refs, &connect_refs)
                .map(|_| ())
                .map_err(engine)
        }
        OP_CONNECT => {
            let set = r.get_str("connect set")?;
            let owner = RecordId(r.get_u64("connect owner")?);
            let member = RecordId(r.get_u64("connect member")?);
            db.connect(&set, owner, member).map_err(engine)
        }
        OP_DISCONNECT => {
            let set = r.get_str("disconnect set")?;
            let member = RecordId(r.get_u64("disconnect member")?);
            db.disconnect(&set, member).map_err(engine)
        }
        OP_ERASE => {
            let id = RecordId(r.get_u64("erase id")?);
            let cascade = r.get_u8("erase cascade")? != 0;
            db.erase(id, cascade).map(|_| ()).map_err(engine)
        }
        OP_MODIFY => {
            let id = RecordId(r.get_u64("modify id")?);
            let n = r.get_u32("modify assign count")?;
            let mut assigns = Vec::with_capacity(n as usize);
            for _ in 0..n {
                assigns.push((r.get_str("modify field")?, r.get_value("modify value")?));
            }
            let assign_refs: Vec<(&str, Value)> = assigns
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            db.modify(id, &assign_refs).map_err(engine)
        }
        t => Err(DiskError::Corrupt(format!("unknown op tag {t}"))),
    }
}

fn read_manifest(fm: &FileMgr) -> DiskResult<u64> {
    if !fm.exists(MANIFEST) {
        return Ok(0);
    }
    let mut best = 0u64;
    let mut page = Page::new(fm.page_size());
    for slot in 0..2u64 {
        fm.read(&BlockId::new(MANIFEST, slot), &mut page)?;
        let bytes = page.as_slice();
        let mut r = ByteReader::new(bytes);
        let (Ok(magic), Ok(gen), Ok(sum)) = (
            r.get_u64("manifest magic"),
            r.get_u64("manifest gen"),
            r.get_u64("manifest checksum"),
        ) else {
            continue;
        };
        if magic == MAN_MAGIC && sum == fnv64(&bytes[..16]) && gen > best {
            best = gen;
        }
    }
    Ok(best)
}

fn write_manifest(fm: &FileMgr, gen: u64) -> DiskResult<()> {
    let mut w = ByteWriter::new();
    w.put_u64(MAN_MAGIC);
    w.put_u64(gen);
    let head = w.into_bytes();
    let mut page = Page::new(fm.page_size());
    page.write_at(0, &head)?;
    page.write_at(16, &fnv64(&head).to_le_bytes())?;
    fm.write(&BlockId::new(MANIFEST, gen % 2), &page)?;
    fm.sync(MANIFEST)
}

/// Write pre-images of `blocks` (heap block numbers) into the undo log,
/// then fsync it. Layout: record 0 is a header
/// `[UNDO_MAGIC][prepared_gen][old_block_count]`; each following record
/// is `[u64 block][raw page bytes]`. Blocks at or past the current end
/// of the heap file have no pre-image — rollback restores them by
/// zeroing everything from `old_block_count` to the (possibly grown)
/// end of file. The undo log reuses the WAL's checksummed record
/// framing, so a torn undo write is indistinguishable from an absent
/// one and recovery can discard it wholesale.
fn prepare_undo(fm: &Arc<FileMgr>, prepared_gen: u64, blocks: &[u64]) -> DiskResult<()> {
    fm.remove(UNDO)?;
    let old_blocks = fm.block_count(HEAP)?;
    let (mut log, _) = LogMgr::open(fm.clone(), UNDO)?;
    let mut w = ByteWriter::new();
    w.put_u64(UNDO_MAGIC);
    w.put_u64(prepared_gen);
    w.put_u64(old_blocks);
    log.append(&w.into_bytes())?;
    let mut page = Page::new(fm.page_size());
    for &num in blocks {
        if num >= old_blocks {
            continue; // tail-zeroing covers pages past the old EOF
        }
        fm.read(&BlockId::new(HEAP, num), &mut page)?;
        let mut rec = Vec::with_capacity(8 + page.size());
        rec.extend_from_slice(&num.to_le_bytes());
        rec.extend_from_slice(page.as_slice());
        log.append(&rec)?;
    }
    log.flush()
}

/// Undo a checkpoint that crashed after pre-images were durable but
/// before the manifest flipped: restore every logged page and zero the
/// heap-file tail past the old end. If the manifest did flip (or the
/// undo header never made it to disk), the pre-images are stale and are
/// simply discarded. Idempotent — crashing inside rollback and running
/// it again restores the same bytes.
fn rollback_torn_checkpoint(fm: &Arc<FileMgr>, manifest_gen: u64) -> DiskResult<()> {
    if !fm.exists(UNDO) {
        return Ok(());
    }
    let (_, records) = LogMgr::open(fm.clone(), UNDO)?;
    if let Some((_, header)) = records.first() {
        let mut r = ByteReader::new(header);
        if r.get_u64("undo magic")? != UNDO_MAGIC {
            return Err(DiskError::Corrupt("bad undo-log magic".to_string()));
        }
        let prepared_gen = r.get_u64("undo prepared gen")?;
        let old_blocks = r.get_u64("undo old block count")?;
        if prepared_gen > manifest_gen {
            let ps = fm.page_size();
            let mut page = Page::new(ps);
            for (_, rec) in &records[1..] {
                if rec.len() != 8 + ps {
                    return Err(DiskError::Corrupt(format!(
                        "undo pre-image of {} bytes against page size {ps}",
                        rec.len()
                    )));
                }
                let num = u64::from_le_bytes(rec[..8].try_into().unwrap_or_default());
                page.as_mut_slice().copy_from_slice(&rec[8..]);
                fm.write(&BlockId::new(HEAP, num), &page)?;
            }
            let current = fm.block_count(HEAP)?;
            if current > old_blocks {
                let zero = Page::new(ps);
                for b in old_blocks..current {
                    fm.write(&BlockId::new(HEAP, b), &zero)?;
                }
            }
            fm.sync(HEAP)?;
        }
    }
    fm.remove(UNDO)
}

/// Persist the per-generation sidecar: one checksummed record holding
/// `[META_MAGIC][schema_fp][next record id][set seq table][meta bytes]`
/// — everything a reopen needs that is not reconstructible from the
/// heap pages themselves (erased-record ids must never be reused, and
/// caller metadata is opaque).
fn write_meta_blob(
    fm: &Arc<FileMgr>,
    gen: u64,
    schema_fp: u64,
    db: &NetworkDb,
    meta: &[u8],
) -> DiskResult<()> {
    let (next_id, seqs) = db.allocator_state();
    let mut w = ByteWriter::new();
    w.put_u64(META_MAGIC);
    w.put_u64(schema_fp);
    w.put_u64(next_id);
    w.put_u32(seqs.len() as u32);
    for (set, seq) in &seqs {
        w.put_str(set);
        w.put_u64(*seq);
    }
    w.put_bytes(meta);
    let (mut log, _) = LogMgr::open(fm.clone(), meta_file(gen))?;
    log.append(&w.into_bytes())?;
    log.flush()
}

#[allow(clippy::type_complexity)]
fn read_meta_blob(
    fm: &Arc<FileMgr>,
    gen: u64,
    schema_fp: u64,
) -> DiskResult<(u64, Vec<(String, u64)>, Vec<u8>)> {
    let file = meta_file(gen);
    let (_, records) = LogMgr::open(fm.clone(), file.clone())?;
    let Some((_, rec)) = records.first() else {
        return Err(DiskError::Corrupt(format!("{file}: empty meta sidecar")));
    };
    let mut r = ByteReader::new(rec);
    if r.get_u64("meta magic")? != META_MAGIC {
        return Err(DiskError::Corrupt(format!("{file}: bad meta magic")));
    }
    if r.get_u64("meta schema fingerprint")? != schema_fp {
        return Err(DiskError::Corrupt(format!(
            "{file}: database was written under a different schema"
        )));
    }
    let next_id = r.get_u64("meta next id")?;
    let n = r.get_u32("meta seq count")?;
    let mut seqs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let set = r.get_str("meta set name")?;
        let seq = r.get_u64("meta set seq")?;
        seqs.push((set, seq));
    }
    let meta = r.get_bytes("meta payload")?.to_vec();
    Ok((next_id, seqs, meta))
}

#[cfg(test)]
mod tests {
    use super::super::tempdir::TempDir;
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;

    fn schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn opts_small() -> DurableOptions {
        DurableOptions {
            page_size: 256,
            buffers: 4,
            ..DurableOptions::default()
        }
    }

    fn seed_commit(db: &mut DurableNetworkDb) -> RecordId {
        let sp = db.begin_savepoint();
        let div = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        for e in 0..3 {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(format!("EMP-{e}"))),
                    ("AGE", Value::Int(30 + e)),
                ],
                &[("DIV-EMP", div)],
            )
            .unwrap();
        }
        db.commit(sp).unwrap();
        div
    }

    #[test]
    fn committed_state_survives_reopen_with_identical_fingerprints() {
        let dir = TempDir::new("durable-reopen").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        seed_commit(&mut db);
        let (fp, sfp) = (db.fingerprint(), db.stat_fingerprint());
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), fp);
        assert_eq!(db.stat_fingerprint(), sfp);
        assert_eq!(db.engine().record_count(), 4);
    }

    #[test]
    fn uncommitted_tail_is_lost_rolled_back_ops_never_logged() {
        let dir = TempDir::new("durable-uncommitted").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        seed_commit(&mut db);
        let fp = db.fingerprint();

        // Rolled back: never reaches the log.
        let sp = db.begin_savepoint();
        db.store(
            "DIV",
            &[("DIV-NAME", Value::str("ROLLED")), ("DIV-LOC", Value::Null)],
            &[],
        )
        .unwrap();
        db.rollback_to(sp);
        assert_eq!(db.fingerprint(), fp);

        // Committed-in-memory-only (kill before flush): open txn dropped.
        let sp = db.begin_savepoint();
        db.store(
            "DIV",
            &[("DIV-NAME", Value::str("DOOMED")), ("DIV-LOC", Value::Null)],
            &[],
        )
        .unwrap();
        let _ = sp; // dropped without commit = killed mid-transaction
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), fp);
    }

    #[test]
    fn nested_savepoints_log_only_the_outermost_commit() {
        let dir = TempDir::new("durable-nested").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        let outer = db.begin_savepoint();
        let div = db
            .store(
                "DIV",
                &[("DIV-NAME", Value::str("M")), ("DIV-LOC", Value::Null)],
                &[],
            )
            .unwrap();
        let inner = db.begin_savepoint();
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("GONE")), ("AGE", Value::Int(1))],
            &[("DIV-EMP", div)],
        )
        .unwrap();
        db.rollback_to(inner);
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("KEPT")), ("AGE", Value::Int(2))],
            &[("DIV-EMP", div)],
        )
        .unwrap();
        db.commit(outer).unwrap();
        let fp = db.fingerprint();
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), fp);
        assert_eq!(db.engine().record_count(), 2);
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopens_from_snapshot() {
        let dir = TempDir::new("durable-checkpoint").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        let div = seed_commit(&mut db);
        db.checkpoint(b"after-seed").unwrap();
        assert_eq!(db.generation(), 1);
        // Post-checkpoint commits land in the new WAL.
        let sp = db.begin_savepoint();
        db.modify(
            db.engine().records_of_type("EMP")[0],
            &[("AGE", Value::Int(99))],
        )
        .unwrap();
        db.erase(div, true).unwrap();
        db.commit(sp).unwrap();
        let fp = db.fingerprint();
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), fp);
        assert_eq!(db.meta(), b"after-seed");
        assert_eq!(db.generation(), 1);
        // Old generation files are gone.
        assert!(!db.fm.exists(&wal_file(0)));
    }

    #[test]
    fn import_persists_a_full_copy() {
        let dir = TempDir::new("durable-import").unwrap();
        let mut source = NetworkDb::new(schema()).unwrap();
        source
            .store(
                "DIV",
                &[("DIV-NAME", Value::str("A")), ("DIV-LOC", Value::Null)],
                &[],
            )
            .unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        db.import(&source, b"ctx-meta").unwrap();
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), source.fingerprint());
        assert_eq!(db.meta(), b"ctx-meta");
    }

    #[test]
    fn failed_commit_flush_wedges_and_reopen_recovers_last_commit() {
        let dir = TempDir::new("durable-wedge").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        seed_commit(&mut db);
        let fp = db.fingerprint();
        drop(db);

        // Reopen with an fsync fault timed to hit the next commit's flush:
        // open issues no writes/syncs on a clean dir (replay only), so the
        // first sync op after open belongs to the doomed commit.
        let mut opts = opts_small();
        opts.faults = Some(DiskFaultPlan::seeded(1, 1.0));
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts).unwrap();
        let sp = db.begin_savepoint();
        db.store(
            "DIV",
            &[("DIV-NAME", Value::str("X")), ("DIV-LOC", Value::Null)],
            &[],
        )
        .unwrap();
        let err = db.commit(sp).unwrap_err();
        assert!(err.is_injected(), "{err}");
        assert!(db.wedged());
        // Everything further is refused.
        assert!(matches!(
            db.store(
                "DIV",
                &[("DIV-NAME", Value::str("Y")), ("DIV-LOC", Value::Null)],
                &[]
            ),
            Err(DiskError::State(_))
        ));
        drop(db);

        let db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        assert_eq!(db.fingerprint(), fp, "recovered to last durable commit");
    }

    #[test]
    fn schema_mismatch_is_detected_on_open() {
        let dir = TempDir::new("durable-schema").unwrap();
        let mut db = DurableNetworkDb::open(dir.path(), schema(), opts_small()).unwrap();
        seed_commit(&mut db);
        drop(db);

        let other = NetworkSchema::new("OTHER").with_record(RecordTypeDef::new(
            "T",
            vec![FieldDef::new("F", FieldType::Int(4))],
        ));
        let err = DurableNetworkDb::open(dir.path(), other, opts_small()).unwrap_err();
        assert!(matches!(err, DiskError::Corrupt(_)), "{err}");
    }
}
