//! Savepoint bookkeeping shared by the three storage engines.
//!
//! Each engine keeps an in-memory **undo journal**: while at least one
//! savepoint is open, every mutating operation pushes the physical
//! inverse of what it just did. `rollback` hands the ops back newest
//! first, so applying them in order restores the exact pre-savepoint
//! state — including derived access structures, which the engines
//! maintain through the same inverse operations they use going forward.
//!
//! Journaling is entirely passive when no savepoint is open (one branch
//! per mutation), so programs that never ask for atomicity pay nothing.
//! This is the §2 "execution-time variability" answer at the storage
//! layer: a supervised run that dies mid-mutation (panic, typed error,
//! injected fault, fuel exhaustion) can be rolled back instead of
//! poisoning the shared base it ran on.
//!
//! `Meta` carries the engine-specific scalars a rollback must restore
//! besides the journaled ops themselves — id allocators and per-set
//! arrival counters — snapshotted when the savepoint opens.

use crate::stats;

/// Handle to an open savepoint, returned by an engine's
/// `begin_savepoint`. Handles are plain indexes into the savepoint
/// stack: rolling back or committing a savepoint invalidates every
/// handle opened after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint(pub(crate) usize);

/// An engine's undo journal: inverse ops plus a stack of savepoint
/// marks. `Op` is the engine's inverse-operation enum; `Meta` the
/// scalar state snapshotted per savepoint.
#[derive(Debug, Clone)]
pub(crate) struct UndoLog<Op, Meta> {
    ops: Vec<Op>,
    marks: Vec<(usize, Meta)>,
}

// Manual impl: the derived one would demand `Op: Default + Meta: Default`.
impl<Op, Meta> Default for UndoLog<Op, Meta> {
    fn default() -> Self {
        UndoLog {
            ops: Vec::new(),
            marks: Vec::new(),
        }
    }
}

impl<Op, Meta> UndoLog<Op, Meta> {
    /// Is any savepoint open? Mutations journal only when this is true.
    pub(crate) fn active(&self) -> bool {
        !self.marks.is_empty()
    }

    /// Journal one inverse op, built lazily so the inactive path does no
    /// allocation.
    pub(crate) fn record_with(&mut self, f: impl FnOnce() -> Op) {
        if self.active() {
            self.ops.push(f());
        }
    }

    /// Open a savepoint, snapshotting `meta`.
    pub(crate) fn begin(&mut self, meta: Meta) -> Savepoint {
        self.marks.push((self.ops.len(), meta));
        dbpc_obs::count(stats::SAVEPOINTS_BEGUN, 1);
        dbpc_obs::event("storage.savepoint.begin");
        Savepoint(self.marks.len() - 1)
    }

    /// Close `sp` and every savepoint opened after it, returning the ops
    /// journaled since `sp` **newest first** (ready for LIFO application)
    /// together with `sp`'s metadata snapshot. `None` for a stale handle.
    pub(crate) fn rollback(&mut self, sp: Savepoint) -> Option<(Vec<Op>, Meta)> {
        if sp.0 >= self.marks.len() {
            return None;
        }
        self.marks.truncate(sp.0 + 1);
        let (mark, meta) = self.marks.pop()?;
        let mut tail = self.ops.split_off(mark);
        tail.reverse();
        dbpc_obs::count(stats::SAVEPOINTS_ROLLED_BACK, 1);
        dbpc_obs::event("storage.savepoint.rollback");
        Some((tail, meta))
    }

    /// Commit `sp` (and implicitly everything nested inside it): its ops
    /// are kept for any *enclosing* savepoint, or discarded when `sp` was
    /// outermost. A stale handle is a no-op.
    pub(crate) fn commit(&mut self, sp: Savepoint) {
        if sp.0 >= self.marks.len() {
            return;
        }
        self.marks.truncate(sp.0);
        if self.marks.is_empty() {
            self.ops.clear();
        }
        dbpc_obs::count(stats::SAVEPOINTS_COMMITTED, 1);
        dbpc_obs::event("storage.savepoint.commit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_log_records_nothing() {
        let mut log: UndoLog<u32, ()> = UndoLog::default();
        assert!(!log.active());
        log.record_with(|| panic!("must not be built"));
        let sp = log.begin(());
        assert!(log.active());
        log.record_with(|| 1);
        log.commit(sp);
        assert!(!log.active());
        log.record_with(|| panic!("must not be built"));
    }

    #[test]
    fn rollback_returns_ops_newest_first_with_meta() {
        let mut log: UndoLog<u32, u64> = UndoLog::default();
        let sp = log.begin(7);
        log.record_with(|| 1);
        log.record_with(|| 2);
        log.record_with(|| 3);
        assert_eq!(log.rollback(sp), Some((vec![3, 2, 1], 7)));
        assert!(!log.active());
        assert_eq!(log.rollback(sp), None, "handle is stale after rollback");
    }

    #[test]
    fn nested_savepoints_partition_the_journal() {
        let mut log: UndoLog<u32, u64> = UndoLog::default();
        let outer = log.begin(10);
        log.record_with(|| 1);
        let inner = log.begin(20);
        log.record_with(|| 2);
        assert_eq!(log.rollback(inner), Some((vec![2], 20)));
        assert!(log.active(), "outer savepoint still open");
        log.record_with(|| 3);
        assert_eq!(log.rollback(outer), Some((vec![3, 1], 10)));
    }

    #[test]
    fn committing_an_inner_savepoint_keeps_ops_for_the_outer() {
        let mut log: UndoLog<u32, u64> = UndoLog::default();
        let outer = log.begin(1);
        let inner = log.begin(2);
        log.record_with(|| 9);
        log.commit(inner);
        assert!(log.active());
        assert_eq!(log.rollback(outer), Some((vec![9], 1)));
    }

    #[test]
    fn committing_outermost_clears_the_journal() {
        let mut log: UndoLog<u32, u64> = UndoLog::default();
        let outer = log.begin(1);
        log.record_with(|| 9);
        log.commit(outer);
        assert!(!log.active());
        let sp = log.begin(2);
        assert_eq!(log.rollback(sp), Some((Vec::new(), 2)));
    }

    #[test]
    fn rollback_of_outer_discards_inner_marks() {
        let mut log: UndoLog<u32, u64> = UndoLog::default();
        let outer = log.begin(1);
        log.record_with(|| 1);
        let inner = log.begin(2);
        log.record_with(|| 2);
        assert_eq!(log.rollback(outer), Some((vec![2, 1], 1)));
        assert_eq!(log.rollback(inner), None);
        assert_eq!(log.commit(inner), ());
    }
}
