//! A minimal scoped thread-pool for the study harnesses and the
//! conversion service.
//!
//! The paper's framing is *fleet* conversion — "the several hundred
//! programs a typical installation must convert" (§1) — so the batch
//! pipeline around the engines is a hot path in its own right. This module
//! supplies the only primitive the harnesses need: a deterministic parallel
//! map over a fixed work partition.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results are reassembled by item index, so the output
//!    vector is identical at any thread count; the partition itself is a
//!    fixed stride (worker `w` takes items `w, w+T, w+2T, …`), so *which
//!    thread computes which item* is also a pure function of
//!    `(len, threads)` — no work stealing, no racing on a shared queue.
//! 2. **No new dependencies.** Built on [`std::thread::scope`] alone; no
//!    registry crates, no additions to `shims/`.
//! 3. **Graceful degradation.** `threads <= 1` (the default on single-core
//!    hosts) runs inline on the calling thread with zero spawn overhead.

use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "DBPC_THREADS";

/// Parse a `DBPC_THREADS`-style override. `None`, empty, unparsable, or
/// zero values all mean "no override".
pub fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The worker count used when a harness is asked for "default" threading:
/// `DBPC_THREADS` if set to a positive integer, otherwise the host's
/// available parallelism (1 when that cannot be determined).
pub fn default_threads() -> usize {
    parse_threads(env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A work item whose computation panicked, with the rendered payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poisoned {
    pub payload: String,
}

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.payload)
    }
}

/// Render a caught panic payload (`panic!` carries `&str` or `String`).
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` on up to `threads` scoped workers.
///
/// `f` receives `(index, &item)` and must be pure with respect to the
/// output's determinism guarantee: the returned vector holds `f(i,
/// &items[i])` at position `i` regardless of thread count. A panic in any
/// worker is re-raised on the calling thread — but only after every other
/// item has completed, so sibling work is never abandoned mid-flight.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(u) => u,
            Err(p) => panic!("pool {p}"),
        })
        .collect()
}

/// Panic-safe [`parallel_map`]: each item's computation runs under
/// `catch_unwind`, so one panicking item yields an `Err(Poisoned)` in its
/// slot instead of killing the scoped pool — the robustness contract the
/// study harnesses rely on ("one poisoned program no longer kills a
/// 1000-program batch").
///
/// Reassembly never assumes every index completed: each worker returns
/// whatever it produced, and any slot left unfilled (a worker death
/// outside the guarded closure — e.g. an allocation failure moving the
/// result) is reported as `Poisoned` rather than deadlocking or aborting
/// the collection.
pub fn try_parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<Result<U, Poisoned>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    let guarded = |i: usize, t: &T| {
        catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(|p| Poisoned {
            payload: panic_payload(p),
        })
    };
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| guarded(i, t))
            .collect();
    }
    let mut slots: Vec<Option<Result<U, Poisoned>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let guarded = &guarded;
    thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut produced = Vec::with_capacity(n / threads + 1);
                    let mut i = w;
                    while i < n {
                        produced.push((i, guarded(i, &items[i])));
                        i += threads;
                    }
                    produced
                })
            })
            .collect();
        for h in workers {
            if let Ok(produced) = h.join() {
                for (i, u) in produced {
                    slots[i] = Some(u);
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                Err(Poisoned {
                    payload: "worker died before producing this slot".to_string(),
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items: Vec<usize> = (0..20).collect();
        let got = parallel_map(&items, 4, |i, &x| i == x);
        assert!(got.into_iter().all(|b| b));
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-1")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn poisoned_item_does_not_kill_siblings() {
        let items: Vec<u64> = (0..23).collect();
        for threads in [1, 2, 8] {
            let got = try_parallel_map(&items, threads, |_, &x| {
                if x == 13 {
                    panic!("unlucky item {x}");
                }
                x * 2
            });
            assert_eq!(got.len(), items.len(), "threads = {threads}");
            for (i, r) in got.iter().enumerate() {
                if i == 13 {
                    let p = r.as_ref().unwrap_err();
                    assert!(p.payload.contains("unlucky item 13"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn all_items_complete_even_when_several_panic() {
        let items: Vec<u64> = (0..40).collect();
        let got = try_parallel_map(&items, 4, |_, &x| {
            if x % 3 == 0 {
                panic!("boom {x}");
            }
            x
        });
        let (ok, poisoned): (Vec<_>, Vec<_>) = got.iter().partition(|r| r.is_ok());
        assert_eq!(poisoned.len(), items.iter().filter(|x| *x % 3 == 0).count());
        assert_eq!(ok.len() + poisoned.len(), items.len());
    }

    #[test]
    fn parallel_map_repropagates_panics_as_panics() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, 2, |_, &x| {
                if x == 5 {
                    panic!("late failure");
                }
                x
            })
        });
        assert!(caught.is_err());
    }
}
