//! Database errors and the 1979-flavoured status-code register.
//!
//! The paper's §3.2 singles out **status-code dependence** as a conversion
//! hazard: "it is easy to write programs which depend on certain status
//! codes being returned by the database system but certain restructurings …
//! will cause a different status code to be returned." To make that hazard
//! reproducible, every engine operation reports a [`StatusCode`] that DBTG
//! programs can branch on (`IF STATUS NOTFOUND GO TO …`).

use std::fmt;

/// The status register value after a DML operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// Operation completed.
    Ok,
    /// Direct lookup found no occurrence (`FIND ANY` miss).
    NotFound,
    /// Sequential scan ran off the end of a set occurrence.
    EndOfSet,
    /// An integrity constraint rejected the operation.
    IntegrityViolation,
    /// A duplicate set-key or primary-key value was presented.
    Duplicate,
    /// Currency needed by the operation was not established.
    NoCurrency,
}

impl StatusCode {
    /// The mnemonic used in DBTG program text (`IF STATUS <mnemonic>`).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::NotFound => "NOTFOUND",
            StatusCode::EndOfSet => "ENDSET",
            StatusCode::IntegrityViolation => "INTEGRITY",
            StatusCode::Duplicate => "DUPLICATE",
            StatusCode::NoCurrency => "NOCURRENCY",
        }
    }

    /// Parse a mnemonic as written in DBTG program text.
    pub fn from_mnemonic(s: &str) -> Option<StatusCode> {
        Some(match s.to_ascii_uppercase().as_str() {
            "OK" => StatusCode::Ok,
            "NOTFOUND" => StatusCode::NotFound,
            "ENDSET" => StatusCode::EndOfSet,
            "INTEGRITY" => StatusCode::IntegrityViolation,
            "DUPLICATE" => StatusCode::Duplicate,
            "NOCURRENCY" => StatusCode::NoCurrency,
            _ => return None,
        })
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An error from a storage-engine operation.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Record / row / segment not found.
    NotFound(String),
    /// Unknown record type / table / segment / set / field name.
    UnknownName { kind: &'static str, name: String },
    /// Value does not conform to the declared field type.
    TypeMismatch { field: String, detail: String },
    /// A declarative constraint rejected the operation.
    Constraint { rule: String },
    /// Duplicate key within a set occurrence or table.
    Duplicate { scope: String, key: String },
    /// Set-membership rule violated (AUTOMATIC unconnected, MANDATORY
    /// disconnect, connecting an already-connected member, …).
    Membership(String),
    /// Attempted write to a virtual field.
    VirtualWrite { field: String },
}

impl DbError {
    /// The status code a 1979 DBMS would raise for this error.
    pub fn status(&self) -> StatusCode {
        match self {
            DbError::NotFound(_) => StatusCode::NotFound,
            DbError::UnknownName { .. } => StatusCode::NotFound,
            DbError::TypeMismatch { .. } => StatusCode::IntegrityViolation,
            DbError::Constraint { .. } => StatusCode::IntegrityViolation,
            DbError::Duplicate { .. } => StatusCode::Duplicate,
            DbError::Membership(_) => StatusCode::IntegrityViolation,
            DbError::VirtualWrite { .. } => StatusCode::IntegrityViolation,
        }
    }

    pub fn unknown(kind: &'static str, name: impl Into<String>) -> Self {
        DbError::UnknownName {
            kind,
            name: name.into(),
        }
    }

    pub fn constraint(rule: impl Into<String>) -> Self {
        DbError::Constraint { rule: rule.into() }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NotFound(what) => write!(f, "not found: {what}"),
            DbError::UnknownName { kind, name } => write!(f, "unknown {kind} '{name}'"),
            DbError::TypeMismatch { field, detail } => {
                write!(f, "type mismatch on '{field}': {detail}")
            }
            DbError::Constraint { rule } => write!(f, "integrity violation: {rule}"),
            DbError::Duplicate { scope, key } => {
                write!(f, "duplicate key {key} in {scope}")
            }
            DbError::Membership(m) => write!(f, "set membership violation: {m}"),
            DbError::VirtualWrite { field } => {
                write!(f, "cannot write virtual field '{field}'")
            }
        }
    }
}

impl std::error::Error for DbError {}

pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        for s in [
            StatusCode::Ok,
            StatusCode::NotFound,
            StatusCode::EndOfSet,
            StatusCode::IntegrityViolation,
            StatusCode::Duplicate,
            StatusCode::NoCurrency,
        ] {
            assert_eq!(StatusCode::from_mnemonic(s.mnemonic()), Some(s));
        }
        assert_eq!(StatusCode::from_mnemonic("BOGUS"), None);
    }

    #[test]
    fn errors_map_to_period_status_codes() {
        assert_eq!(
            DbError::NotFound("EMP".into()).status(),
            StatusCode::NotFound
        );
        assert_eq!(
            DbError::constraint("x").status(),
            StatusCode::IntegrityViolation
        );
        assert_eq!(
            DbError::Duplicate {
                scope: "s".into(),
                key: "k".into()
            }
            .status(),
            StatusCode::Duplicate
        );
    }
}
