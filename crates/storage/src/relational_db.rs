//! The relational storage engine.
//!
//! Deliberately 1979-shaped: tables are bags of rows in insertion order
//! (SEQUEL results are unordered unless `ORDER BY` is given — which is why
//! the converter must reason about order observability), primary-key
//! uniqueness is enforced when declared ("the only constraint maintained
//! explicitly in the relational model", §3.1), and foreign keys are checked
//! only when `enforce_foreign_keys` is enabled — so the §3.1 scenario of
//! integrity constraints living in application programs is reproducible.

use crate::error::{DbError, DbResult};
use crate::keys::KeyTuple;
use crate::stats::AccessStats;
use crate::txn::{Savepoint, UndoLog};
use dbpc_datamodel::relational::{RelationalSchema, TableDef};
use dbpc_datamodel::value::Value;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Identifier of a stored row (stable across deletes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

/// A maintained secondary index over one column set.
///
/// Because [`KeyTuple`]'s order is [`Value::total_cmp`] — the same relation
/// `loose_eq` is defined by — a map probe matches exactly the rows a
/// per-row `loose_eq` filter would (including `Int(1)`/`Float(1.0)`
/// cross-type equality), so equality pushdown through this index is
/// semantically identical to a full scan.
#[derive(Debug, Clone)]
struct SecondaryIndex {
    /// Indexed columns, in index-key order.
    cols: Vec<String>,
    /// Positions of `cols` in the row layout.
    idxs: Vec<usize>,
    /// Key → row ids, ascending (= insertion/storage order).
    map: BTreeMap<KeyTuple, Vec<u64>>,
}

impl SecondaryIndex {
    fn key_of(&self, row: &[Value]) -> KeyTuple {
        KeyTuple(self.idxs.iter().map(|&i| row[i].clone()).collect())
    }

    fn add(&mut self, row: &[Value], id: u64) {
        let ids = self.map.entry(self.key_of(row)).or_default();
        let at = ids.partition_point(|&x| x < id);
        ids.insert(at, id);
    }

    fn remove(&mut self, row: &[Value], id: u64) {
        let key = self.key_of(row);
        if let Some(ids) = self.map.get_mut(&key) {
            if let Ok(at) = ids.binary_search(&id) {
                ids.remove(at);
            }
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Table {
    rows: BTreeMap<u64, Vec<Value>>,
    /// Primary-key index (only when the table declares a key).
    pk_index: BTreeMap<KeyTuple, u64>,
    /// Maintained secondary indexes (created via `create_index`).
    indexes: Vec<SecondaryIndex>,
}

/// Physical inverse of one relational mutation, journaled while a
/// savepoint is open. Index maintenance (pk + secondary) is replayed by
/// the undo application itself, so rollback restores the derived
/// structures along with the rows.
#[derive(Debug, Clone)]
enum RelUndo {
    /// Undo an insert: remove the row again.
    Insert { table: String, id: u64 },
    /// Undo a delete: reinstate the removed row.
    Delete {
        table: String,
        id: u64,
        row: Vec<Value>,
    },
    /// Undo an update: restore the previous row image.
    Update {
        table: String,
        id: u64,
        row: Vec<Value>,
    },
}

/// A relational database instance.
#[derive(Debug, Clone)]
pub struct RelationalDb {
    schema: RelationalSchema,
    tables: BTreeMap<String, Table>,
    next_id: u64,
    /// Enforce declared foreign keys on insert/delete. Off by default,
    /// mirroring 1979 systems.
    pub enforce_foreign_keys: bool,
    /// Access-path counters (interior-mutable so read paths can count).
    stats: AccessStats,
    /// Undo journal; metadata per savepoint is the `next_id` watermark.
    journal: UndoLog<RelUndo, u64>,
}

impl RelationalDb {
    pub fn new(schema: RelationalSchema) -> DbResult<RelationalDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        let tables = schema
            .tables
            .iter()
            .map(|t| (t.name.clone(), Table::default()))
            .collect();
        Ok(RelationalDb {
            schema,
            tables,
            next_id: 1,
            enforce_foreign_keys: false,
            stats: AccessStats::default(),
            journal: UndoLog::default(),
        })
    }

    /// Open a savepoint. Until it is rolled back or committed, every
    /// mutation journals its inverse. Savepoints nest.
    pub fn begin_savepoint(&mut self) -> Savepoint {
        self.journal.begin(self.next_id)
    }

    /// Restore the database to its state at `begin_savepoint`, including
    /// the pk/secondary indexes and the row-id allocator. Savepoints
    /// opened after `sp` are discarded; a stale handle is a no-op.
    pub fn rollback_to(&mut self, sp: Savepoint) {
        if let Some((ops, next_id)) = self.journal.rollback(sp) {
            for op in ops {
                self.apply_undo(op);
            }
            self.next_id = next_id;
        }
    }

    /// Keep everything done since `sp` and close it (plus any savepoint
    /// nested inside it). A stale handle is a no-op.
    pub fn commit(&mut self, sp: Savepoint) {
        self.journal.commit(sp);
    }

    fn apply_undo(&mut self, op: RelUndo) {
        // Undo ops are applied newest-first and were journaled against
        // the exact state they now revert; missing rows/tables below can
        // only mean a stale handle was misused, and are skipped rather
        // than compounded.
        match op {
            RelUndo::Insert { table, id } => {
                let def = self.schema.table(&table);
                if let Some(t) = self.tables.get_mut(&table) {
                    if let Some(row) = t.rows.remove(&id) {
                        if let Some(pk) = def.and_then(|d| pk_of_static(d, &row)) {
                            t.pk_index.remove(&pk);
                        }
                        for ix in &mut t.indexes {
                            ix.remove(&row, id);
                        }
                    }
                }
            }
            RelUndo::Delete { table, id, row } => {
                let pk = self
                    .schema
                    .table(&table)
                    .and_then(|d| pk_of_static(d, &row));
                if let Some(t) = self.tables.get_mut(&table) {
                    for ix in &mut t.indexes {
                        ix.add(&row, id);
                    }
                    if let Some(pk) = pk {
                        t.pk_index.insert(pk, id);
                    }
                    t.rows.insert(id, row);
                }
            }
            RelUndo::Update { table, id, row } => {
                let def = self.schema.table(&table);
                let old_pk = def.and_then(|d| pk_of_static(d, &row));
                if let Some(t) = self.tables.get_mut(&table) {
                    if let Some(cur) = t.rows.get(&id).cloned() {
                        if let Some(pk) = def.and_then(|d| pk_of_static(d, &cur)) {
                            t.pk_index.remove(&pk);
                        }
                        for ix in &mut t.indexes {
                            ix.remove(&cur, id);
                        }
                    }
                    for ix in &mut t.indexes {
                        ix.add(&row, id);
                    }
                    if let Some(pk) = old_pk {
                        t.pk_index.insert(pk, id);
                    }
                    t.rows.insert(id, row);
                }
            }
        }
    }

    /// Deterministic digest of the full logical state: rows, the id
    /// allocator, and the fk-enforcement flag. Derived structures (pk and
    /// secondary indexes) are excluded — they are a function of the rows,
    /// verified separately by [`RelationalDb::check_access_structures`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.next_id.hash(&mut h);
        self.enforce_foreign_keys.hash(&mut h);
        for (name, t) in &self.tables {
            name.hash(&mut h);
            t.rows.len().hash(&mut h);
            for (id, row) in &t.rows {
                id.hash(&mut h);
                row.hash(&mut h);
            }
        }
        h.finish()
    }

    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    /// Access-path counters for this database.
    pub fn access_stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Create (and backfill) a secondary index on `cols`. Idempotent for an
    /// identical column list.
    pub fn create_index(&mut self, table: &str, cols: &[&str]) -> DbResult<()> {
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(
                def.column_index(c)
                    .ok_or_else(|| DbError::unknown("column", format!("{table}.{c}")))?,
            );
        }
        let Some(t) = self.tables.get_mut(table) else {
            return Err(DbError::unknown("table", table));
        };
        if t.indexes.iter().any(|ix| ix.idxs == idxs) {
            return Ok(());
        }
        let mut ix = SecondaryIndex {
            cols: cols.iter().map(|c| c.to_string()).collect(),
            idxs,
            map: BTreeMap::new(),
        };
        for (&id, row) in &t.rows {
            ix.add(row, id);
        }
        t.indexes.push(ix);
        Ok(())
    }

    /// Names of the indexed column sets of a table (index-key order).
    pub fn index_column_sets(&self, table: &str) -> DbResult<Vec<Vec<String>>> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .indexes
            .iter()
            .map(|ix| ix.cols.clone())
            .collect())
    }

    fn table_def(&self, name: &str) -> DbResult<&TableDef> {
        self.schema
            .table(name)
            .ok_or_else(|| DbError::unknown("table", name))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> DbResult<usize> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .len())
    }

    /// Row ids of a table in insertion order.
    pub fn row_ids(&self, table: &str) -> DbResult<Vec<RowId>> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .keys()
            .map(|&k| RowId(k))
            .collect())
    }

    /// Fetch one row.
    pub fn row(&self, table: &str, id: RowId) -> DbResult<&[Value]> {
        self.tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .get(&id.0)
            .map(|v| v.as_slice())
            .ok_or_else(|| DbError::NotFound(format!("{table} row #{}", id.0)))
    }

    /// All rows of a table in insertion order (cloned). Prefer
    /// [`RelationalDb::iter_rows`] on hot paths — this clones every cell.
    pub fn scan(&self, table: &str) -> DbResult<Vec<Vec<Value>>> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        self.stats.scanned(t.rows.len() as u64);
        Ok(t.rows.values().cloned().collect())
    }

    /// Borrowing cursor over a table in insertion (storage) order.
    /// Each yielded row counts toward `rows_scanned`.
    pub fn iter_rows(&self, table: &str) -> DbResult<impl Iterator<Item = (RowId, &[Value])> + '_> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let stats = &self.stats;
        Ok(t.rows.iter().map(move |(&id, row)| {
            stats.scanned(1);
            (RowId(id), row.as_slice())
        }))
    }

    /// Equality-probe planner hook: given conjunctive `col = value` terms,
    /// return candidate row ids **in storage order** via the primary-key
    /// index or a secondary index, or `None` when no index covers the
    /// terms (caller falls back to a scan).
    ///
    /// Candidates are a superset of the true matches restricted to the
    /// probed columns; the caller must still apply its full predicate.
    /// Unknown columns yield `None` so the scan path reports the error
    /// exactly as before.
    pub fn probe_eq(&self, table: &str, eqs: &[(String, Value)]) -> DbResult<Option<Vec<RowId>>> {
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let t = &self.tables[table];
        if eqs.is_empty() {
            return Ok(None);
        }
        if eqs.iter().any(|(c, _)| def.column_index(c).is_none()) {
            return Ok(None);
        }
        let bound =
            |col: &str| -> Option<&Value> { eqs.iter().find(|(c, _)| c == col).map(|(_, v)| v) };
        // Primary key first: a full binding is a point lookup.
        if !def.primary_key.is_empty() {
            if let Some(key) = def
                .primary_key
                .iter()
                .map(|c| bound(c).cloned())
                .collect::<Option<Vec<Value>>>()
            {
                let hit = t.pk_index.get(&KeyTuple(key));
                self.stats.probed(hit.is_some());
                return Ok(Some(hit.map(|&id| RowId(id)).into_iter().collect()));
            }
        }
        // Any secondary index fully bound by the equality terms.
        for ix in &t.indexes {
            if let Some(key) = ix
                .cols
                .iter()
                .map(|c| bound(c).cloned())
                .collect::<Option<Vec<Value>>>()
            {
                let ids = ix.map.get(&KeyTuple(key));
                self.stats.probed(ids.is_some());
                return Ok(Some(
                    ids.map(|v| v.iter().map(|&id| RowId(id)).collect())
                        .unwrap_or_default(),
                ));
            }
        }
        Ok(None)
    }

    /// Current row count of a table. Non-counting: a statistics read, not
    /// a data access.
    pub fn table_cardinality(&self, table: &str) -> DbResult<u64> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .len() as u64)
    }

    /// `(columns, distinct key count)` for each maintained secondary index
    /// of a table, in creation order. Non-counting.
    pub fn secondary_index_stats(&self, table: &str) -> DbResult<Vec<(Vec<String>, u64)>> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .indexes
            .iter()
            .map(|ix| (ix.cols.clone(), ix.map.len() as u64))
            .collect())
    }

    /// Statistics twin of [`RelationalDb::probe_eq`]: would the same
    /// equality terms be answerable by an index, and with how many distinct
    /// keys? Mirrors `probe_eq`'s index selection (primary key first, then
    /// the first fully-bound secondary) but **never counts a probe** — the
    /// planner consults this before deciding whether to probe at all.
    /// Returns `(distinct_keys, unique)`.
    pub fn probe_eq_stats(
        &self,
        table: &str,
        eqs: &[(String, Value)],
    ) -> DbResult<Option<(u64, bool)>> {
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let t = &self.tables[table];
        if eqs.is_empty() || eqs.iter().any(|(c, _)| def.column_index(c).is_none()) {
            return Ok(None);
        }
        let bound = |col: &str| eqs.iter().any(|(c, _)| c == col);
        if !def.primary_key.is_empty() && def.primary_key.iter().all(|c| bound(c)) {
            return Ok(Some((t.pk_index.len() as u64, true)));
        }
        for ix in &t.indexes {
            if ix.cols.iter().all(|c| bound(c)) {
                return Ok(Some((ix.map.len() as u64, false)));
            }
        }
        Ok(None)
    }

    /// Insert a row given `(column, value)` pairs; omitted columns are null.
    pub fn insert(&mut self, table: &str, values: &[(&str, Value)]) -> DbResult<RowId> {
        // Borrow the definition from the schema field directly (no clone):
        // the later mutation touches only the disjoint `tables`/`next_id`
        // fields, so the borrows split.
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let mut row = vec![Value::Null; def.columns.len()];
        for (name, v) in values {
            let idx = def
                .column_index(name)
                .ok_or_else(|| DbError::unknown("column", format!("{table}.{name}")))?;
            if !def.columns[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{table}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.columns[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        // Primary-key uniqueness.
        let pk = pk_of_static(def, &row);
        if let Some(pk) = &pk {
            if self.tables[table].pk_index.contains_key(pk) {
                return Err(DbError::Duplicate {
                    scope: format!("table {table}"),
                    key: format!("{:?}", pk.0),
                });
            }
        }
        // Foreign keys (optional enforcement).
        if self.enforce_foreign_keys {
            for fk in &def.foreign_keys {
                let child: Vec<&Value> = fk
                    .columns
                    .iter()
                    .filter_map(|c| def.column_index(c).map(|i| &row[i]))
                    .collect();
                if child.iter().any(|v| v.is_null()) {
                    continue; // null references are the §3.1 escape hatch
                }
                let parent = self
                    .schema
                    .table(&fk.parent_table)
                    .ok_or_else(|| DbError::unknown("table", &fk.parent_table))?;
                let found = self.tables[&fk.parent_table].rows.values().any(|prow| {
                    fk.parent_columns.iter().zip(&child).all(|(pc, cv)| {
                        parent
                            .column_index(pc)
                            .is_some_and(|i| prow[i].loose_eq(cv))
                    })
                });
                if !found {
                    return Err(DbError::constraint(format!(
                        "foreign key {table}({}) -> {}({})",
                        fk.columns.join(","),
                        fk.parent_table,
                        fk.parent_columns.join(",")
                    )));
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let Some(t) = self.tables.get_mut(table) else {
            return Err(DbError::unknown("table", table));
        };
        for ix in &mut t.indexes {
            ix.add(&row, id);
        }
        t.rows.insert(id, row);
        if let Some(pk) = pk {
            t.pk_index.insert(pk, id);
        }
        self.journal.record_with(|| RelUndo::Insert {
            table: table.to_string(),
            id,
        });
        Ok(RowId(id))
    }

    /// Delete rows matching a predicate; returns the number deleted.
    pub fn delete_where<F>(&mut self, table: &str, pred: F) -> DbResult<usize>
    where
        F: Fn(&[Value]) -> bool,
    {
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let doomed: Vec<u64> = self.tables[table]
            .rows
            .iter()
            .filter(|(_, row)| {
                self.stats.scanned(1);
                pred(row)
            })
            .map(|(&id, _)| id)
            .collect();
        let Some(t) = self.tables.get_mut(table) else {
            return Err(DbError::unknown("table", table));
        };
        for id in &doomed {
            if let Some(row) = t.rows.remove(id) {
                if let Some(pk) = pk_of_static(def, &row) {
                    t.pk_index.remove(&pk);
                }
                for ix in &mut t.indexes {
                    ix.remove(&row, *id);
                }
                self.journal.record_with(|| RelUndo::Delete {
                    table: table.to_string(),
                    id: *id,
                    row,
                });
            }
        }
        Ok(doomed.len())
    }

    /// Update rows matching a predicate with `(column, value)` assignments;
    /// returns the number updated.
    pub fn update_where<F>(
        &mut self,
        table: &str,
        pred: F,
        assigns: &[(&str, Value)],
    ) -> DbResult<usize>
    where
        F: Fn(&[Value]) -> bool,
    {
        let def = self
            .schema
            .table(table)
            .ok_or_else(|| DbError::unknown("table", table))?;
        let mut idxs = Vec::new();
        for (name, v) in assigns {
            let idx = def
                .column_index(name)
                .ok_or_else(|| DbError::unknown("column", format!("{table}.{name}")))?;
            if !def.columns[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{table}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.columns[idx].ty),
                });
            }
            idxs.push((idx, v.clone()));
        }
        let targets: Vec<u64> = self.tables[table]
            .rows
            .iter()
            .filter(|(_, row)| {
                self.stats.scanned(1);
                pred(row)
            })
            .map(|(&id, _)| id)
            .collect();
        let pk_cols_touched = def
            .primary_key
            .iter()
            .any(|k| idxs.iter().any(|(i, _)| def.column_index(k) == Some(*i)));
        // Validate-then-commit: compute every new row and check key
        // uniqueness before mutating anything, so a rejected update leaves
        // the table untouched.
        type PlannedRow = (u64, Vec<Value>, Option<KeyTuple>, Option<KeyTuple>);
        let mut planned: Vec<PlannedRow> = Vec::new();
        let mut new_keys: Vec<KeyTuple> = Vec::new();
        for id in &targets {
            let mut row = self.tables[table].rows[id].clone();
            let old_pk = pk_of_static(def, &row);
            for (i, v) in &idxs {
                row[*i] = v.clone();
            }
            let new_pk = pk_of_static(def, &row);
            if pk_cols_touched {
                if let Some(np) = &new_pk {
                    let conflict_outside = self.tables[table]
                        .pk_index
                        .get(np)
                        .is_some_and(|owner| !targets.contains(owner));
                    if conflict_outside || new_keys.contains(np) {
                        return Err(DbError::Duplicate {
                            scope: format!("table {table}"),
                            key: format!("{:?}", np.0),
                        });
                    }
                    new_keys.push(np.clone());
                }
            }
            planned.push((*id, row, old_pk, new_pk));
        }
        let Some(t) = self.tables.get_mut(table) else {
            return Err(DbError::unknown("table", table));
        };
        for (id, row, old_pk, new_pk) in planned {
            if pk_cols_touched {
                if let Some(op) = old_pk {
                    t.pk_index.remove(&op);
                }
            }
            let undo = if self.journal.active() {
                t.rows.get(&id).cloned()
            } else {
                None
            };
            if let Some(old) = t.rows.get(&id) {
                for ix in &mut t.indexes {
                    ix.remove(old, id);
                }
            }
            for ix in &mut t.indexes {
                ix.add(&row, id);
            }
            t.rows.insert(id, row);
            if pk_cols_touched {
                if let Some(np) = new_pk {
                    t.pk_index.insert(np, id);
                }
            }
            if let Some(old) = undo {
                self.journal.record_with(|| RelUndo::Update {
                    table: table.to_string(),
                    id,
                    row: old,
                });
            }
        }
        Ok(targets.len())
    }

    /// Primary-key point lookup.
    pub fn find_by_key(&self, table: &str, key: &[Value]) -> DbResult<Option<RowId>> {
        let def = self.table_def(table)?;
        if def.primary_key.is_empty() {
            return Ok(None);
        }
        let hit = self.tables[table].pk_index.get(&KeyTuple(key.to_vec()));
        self.stats.probed(hit.is_some());
        Ok(hit.map(|&id| RowId(id)))
    }

    /// Verify every maintained access structure against a from-scratch
    /// rebuild. Returns a description of the first inconsistency found.
    pub fn check_access_structures(&self) -> Result<(), String> {
        for (name, t) in &self.tables {
            let def = self
                .schema
                .table(name)
                .ok_or_else(|| format!("table {name} stored but not in schema"))?;
            let mut fresh_pk = BTreeMap::new();
            for (&id, row) in &t.rows {
                if let Some(pk) = pk_of_static(def, row) {
                    if fresh_pk.insert(pk.clone(), id).is_some() {
                        return Err(format!("table {name}: duplicate pk {:?} in rows", pk.0));
                    }
                }
            }
            if fresh_pk != t.pk_index {
                return Err(format!("table {name}: pk index diverges from rows"));
            }
            for ix in &t.indexes {
                let mut fresh: BTreeMap<KeyTuple, Vec<u64>> = BTreeMap::new();
                for (&id, row) in &t.rows {
                    fresh.entry(ix.key_of(row)).or_default().push(id);
                }
                if fresh != ix.map {
                    return Err(format!(
                        "table {name}: secondary index on {:?} diverges from rows",
                        ix.cols
                    ));
                }
            }
        }
        Ok(())
    }
}

fn pk_of_static(def: &TableDef, row: &[Value]) -> Option<KeyTuple> {
    if def.primary_key.is_empty() {
        return None;
    }
    Some(KeyTuple(
        def.primary_key
            .iter()
            .map(|k| def.column_index(k).and_then(|i| row.get(i)).cloned())
            .collect::<Option<Vec<Value>>>()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::relational::ColumnDef;
    use dbpc_datamodel::types::FieldType;

    fn school() -> RelationalSchema {
        RelationalSchema::new("SCHOOL")
            .with_table(
                TableDef::new(
                    "COURSE",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("CNAME", FieldType::Char(20)),
                    ],
                )
                .with_key(vec!["CNO"]),
            )
            .with_table(
                TableDef::new(
                    "COURSE-OFFERING",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("S", FieldType::Char(4)),
                    ],
                )
                .with_key(vec!["CNO", "S"])
                .with_foreign_key(vec!["CNO"], "COURSE", vec!["CNO"]),
            )
    }

    #[test]
    fn insert_scan_order_is_insertion_order() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        let rows = db.scan("COURSE").unwrap();
        assert_eq!(rows[0][0], Value::str("C2"));
        assert_eq!(rows[1][0], Value::str("C1"));
    }

    #[test]
    fn primary_key_uniqueness() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        assert!(matches!(
            db.insert("COURSE", &[("CNO", Value::str("C1"))]),
            Err(DbError::Duplicate { .. })
        ));
    }

    #[test]
    fn composite_keys_and_lookup() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("C1")), ("S", Value::str("F78"))],
        )
        .unwrap();
        let hit = db
            .find_by_key("COURSE-OFFERING", &[Value::str("C1"), Value::str("F78")])
            .unwrap();
        assert!(hit.is_some());
        let miss = db
            .find_by_key("COURSE-OFFERING", &[Value::str("C1"), Value::str("S79")])
            .unwrap();
        assert!(miss.is_none());
    }

    #[test]
    fn foreign_keys_unenforced_by_default_like_1979() {
        let mut db = RelationalDb::new(school()).unwrap();
        // The §3.1 problem: nothing stops a dangling COURSE-OFFERING.
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("GHOST")), ("S", Value::str("F78"))],
        )
        .unwrap();
        assert_eq!(db.row_count("COURSE-OFFERING").unwrap(), 1);
    }

    #[test]
    fn foreign_keys_enforced_when_enabled() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.enforce_foreign_keys = true;
        assert!(db
            .insert(
                "COURSE-OFFERING",
                &[("CNO", Value::str("GHOST")), ("S", Value::str("F78"))],
            )
            .is_err());
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("C1")), ("S", Value::str("F78"))],
        )
        .unwrap();
    }

    #[test]
    fn null_fk_reference_allowed() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.enforce_foreign_keys = true;
        // Null reference = the paper's "null instructor" trick.
        db.insert("COURSE-OFFERING", &[("S", Value::str("F78"))])
            .unwrap();
    }

    #[test]
    fn delete_where_updates_index() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        let n = db
            .delete_where("COURSE", |r| r[0].loose_eq(&Value::str("C1")))
            .unwrap();
        assert_eq!(n, 1);
        // Key is free again.
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
    }

    #[test]
    fn update_where_maintains_pk_index() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        // Renaming C2 to C1 must be rejected.
        assert!(db
            .update_where(
                "COURSE",
                |r| r[0].loose_eq(&Value::str("C2")),
                &[("CNO", Value::str("C1"))],
            )
            .is_err());
        // Renaming C2 to C3 works and the index follows.
        db.update_where(
            "COURSE",
            |r| r[0].loose_eq(&Value::str("C2")),
            &[("CNO", Value::str("C3"))],
        )
        .unwrap();
        assert!(db
            .find_by_key("COURSE", &[Value::str("C3")])
            .unwrap()
            .is_some());
        assert!(db
            .find_by_key("COURSE", &[Value::str("C2")])
            .unwrap()
            .is_none());
    }

    #[test]
    fn secondary_index_probe_matches_scan_and_stays_consistent() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.create_index("COURSE-OFFERING", &["S"]).unwrap();
        for (cno, s) in [("C1", "F78"), ("C2", "F78"), ("C3", "S79")] {
            db.insert(
                "COURSE-OFFERING",
                &[("CNO", Value::str(cno)), ("S", Value::str(s))],
            )
            .unwrap();
        }
        let hits = db
            .probe_eq("COURSE-OFFERING", &[("S".to_string(), Value::str("F78"))])
            .unwrap()
            .expect("index covers the term");
        let rows: Vec<&[Value]> = hits
            .iter()
            .map(|&id| db.row("COURSE-OFFERING", id).unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        // Storage order: C1 inserted before C2.
        assert_eq!(rows[0][0], Value::str("C1"));
        assert_eq!(rows[1][0], Value::str("C2"));
        db.check_access_structures().unwrap();

        // Mutations keep the index consistent.
        db.update_where(
            "COURSE-OFFERING",
            |r| r[0].loose_eq(&Value::str("C2")),
            &[("S", Value::str("S79"))],
        )
        .unwrap();
        db.delete_where("COURSE-OFFERING", |r| r[0].loose_eq(&Value::str("C1")))
            .unwrap();
        db.check_access_structures().unwrap();
        let hits = db
            .probe_eq("COURSE-OFFERING", &[("S".to_string(), Value::str("F78"))])
            .unwrap()
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn probe_eq_uses_pk_and_counts() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        let before = db.access_stats().snapshot();
        let hits = db
            .probe_eq("COURSE", &[("CNO".to_string(), Value::str("C2"))])
            .unwrap()
            .expect("pk fully bound");
        assert_eq!(hits.len(), 1);
        let after = db.access_stats().snapshot();
        assert_eq!(after.index_probes, before.index_probes + 1);
        assert_eq!(after.index_hits, before.index_hits + 1);
        // Unknown column → planner declines, scan path will report it.
        assert!(db
            .probe_eq("COURSE", &[("NOPE".to_string(), Value::Int(1))])
            .unwrap()
            .is_none());
    }

    #[test]
    fn iter_rows_borrows_in_storage_order() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        let names: Vec<String> = db
            .iter_rows("COURSE")
            .unwrap()
            .map(|(_, row)| row[0].to_string())
            .collect();
        assert_eq!(names, vec!["C2", "C1"]);
        assert!(db.access_stats().snapshot().rows_scanned >= 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut db = RelationalDb::new(school()).unwrap();
        assert!(matches!(
            db.insert("COURSE", &[("CNO", Value::Int(12))]),
            Err(DbError::TypeMismatch { .. })
        ));
    }
}
