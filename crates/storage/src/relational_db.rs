//! The relational storage engine.
//!
//! Deliberately 1979-shaped: tables are bags of rows in insertion order
//! (SEQUEL results are unordered unless `ORDER BY` is given — which is why
//! the converter must reason about order observability), primary-key
//! uniqueness is enforced when declared ("the only constraint maintained
//! explicitly in the relational model", §3.1), and foreign keys are checked
//! only when `enforce_foreign_keys` is enabled — so the §3.1 scenario of
//! integrity constraints living in application programs is reproducible.

use crate::error::{DbError, DbResult};
use crate::keys::KeyTuple;
use dbpc_datamodel::relational::{RelationalSchema, TableDef};
use dbpc_datamodel::value::Value;
use std::collections::BTreeMap;

/// Identifier of a stored row (stable across deletes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

#[derive(Debug, Clone, Default)]
struct Table {
    rows: BTreeMap<u64, Vec<Value>>,
    /// Primary-key index (only when the table declares a key).
    pk_index: BTreeMap<KeyTuple, u64>,
}

/// A relational database instance.
#[derive(Debug, Clone)]
pub struct RelationalDb {
    schema: RelationalSchema,
    tables: BTreeMap<String, Table>,
    next_id: u64,
    /// Enforce declared foreign keys on insert/delete. Off by default,
    /// mirroring 1979 systems.
    pub enforce_foreign_keys: bool,
}

impl RelationalDb {
    pub fn new(schema: RelationalSchema) -> DbResult<RelationalDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        let tables = schema
            .tables
            .iter()
            .map(|t| (t.name.clone(), Table::default()))
            .collect();
        Ok(RelationalDb {
            schema,
            tables,
            next_id: 1,
            enforce_foreign_keys: false,
        })
    }

    pub fn schema(&self) -> &RelationalSchema {
        &self.schema
    }

    fn table_def(&self, name: &str) -> DbResult<&TableDef> {
        self.schema
            .table(name)
            .ok_or_else(|| DbError::unknown("table", name))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> DbResult<usize> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .len())
    }

    /// Row ids of a table in insertion order.
    pub fn row_ids(&self, table: &str) -> DbResult<Vec<RowId>> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .keys()
            .map(|&k| RowId(k))
            .collect())
    }

    /// Fetch one row.
    pub fn row(&self, table: &str, id: RowId) -> DbResult<&[Value]> {
        self.tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .get(&id.0)
            .map(|v| v.as_slice())
            .ok_or_else(|| DbError::NotFound(format!("{table} row #{}", id.0)))
    }

    /// All rows of a table in insertion order (cloned).
    pub fn scan(&self, table: &str) -> DbResult<Vec<Vec<Value>>> {
        Ok(self
            .tables
            .get(table)
            .ok_or_else(|| DbError::unknown("table", table))?
            .rows
            .values()
            .cloned()
            .collect())
    }

    /// Insert a row given `(column, value)` pairs; omitted columns are null.
    pub fn insert(&mut self, table: &str, values: &[(&str, Value)]) -> DbResult<RowId> {
        let def = self.table_def(table)?.clone();
        let mut row = vec![Value::Null; def.columns.len()];
        for (name, v) in values {
            let idx = def
                .column_index(name)
                .ok_or_else(|| DbError::unknown("column", format!("{table}.{name}")))?;
            if !def.columns[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{table}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.columns[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        // Primary-key uniqueness.
        let pk = self.pk_of(&def, &row);
        if let Some(pk) = &pk {
            if self.tables[table].pk_index.contains_key(pk) {
                return Err(DbError::Duplicate {
                    scope: format!("table {table}"),
                    key: format!("{:?}", pk.0),
                });
            }
        }
        // Foreign keys (optional enforcement).
        if self.enforce_foreign_keys {
            for fk in &def.foreign_keys {
                let child: Vec<Value> = fk
                    .columns
                    .iter()
                    .map(|c| row[def.column_index(c).unwrap()].clone())
                    .collect();
                if child.iter().any(Value::is_null) {
                    continue; // null references are the §3.1 escape hatch
                }
                let parent = self.table_def(&fk.parent_table)?.clone();
                let found = self.tables[&fk.parent_table].rows.values().any(|prow| {
                    fk.parent_columns
                        .iter()
                        .zip(&child)
                        .all(|(pc, cv)| prow[parent.column_index(pc).unwrap()].loose_eq(cv))
                });
                if !found {
                    return Err(DbError::constraint(format!(
                        "foreign key {table}({}) -> {}({})",
                        fk.columns.join(","),
                        fk.parent_table,
                        fk.parent_columns.join(",")
                    )));
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let t = self.tables.get_mut(table).unwrap();
        t.rows.insert(id, row);
        if let Some(pk) = pk {
            t.pk_index.insert(pk, id);
        }
        Ok(RowId(id))
    }

    /// Delete rows matching a predicate; returns the number deleted.
    pub fn delete_where<F>(&mut self, table: &str, pred: F) -> DbResult<usize>
    where
        F: Fn(&[Value]) -> bool,
    {
        let def = self.table_def(table)?.clone();
        let doomed: Vec<u64> = self.tables[table]
            .rows
            .iter()
            .filter(|(_, row)| pred(row))
            .map(|(&id, _)| id)
            .collect();
        let t = self.tables.get_mut(table).unwrap();
        for id in &doomed {
            if let Some(row) = t.rows.remove(id) {
                if let Some(pk) = pk_of_static(&def, &row) {
                    t.pk_index.remove(&pk);
                }
            }
        }
        Ok(doomed.len())
    }

    /// Update rows matching a predicate with `(column, value)` assignments;
    /// returns the number updated.
    pub fn update_where<F>(
        &mut self,
        table: &str,
        pred: F,
        assigns: &[(&str, Value)],
    ) -> DbResult<usize>
    where
        F: Fn(&[Value]) -> bool,
    {
        let def = self.table_def(table)?.clone();
        let mut idxs = Vec::new();
        for (name, v) in assigns {
            let idx = def
                .column_index(name)
                .ok_or_else(|| DbError::unknown("column", format!("{table}.{name}")))?;
            if !def.columns[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{table}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.columns[idx].ty),
                });
            }
            idxs.push((idx, v.clone()));
        }
        let targets: Vec<u64> = self.tables[table]
            .rows
            .iter()
            .filter(|(_, row)| pred(row))
            .map(|(&id, _)| id)
            .collect();
        let pk_cols_touched = def
            .primary_key
            .iter()
            .any(|k| idxs.iter().any(|(i, _)| def.column_index(k) == Some(*i)));
        // Validate-then-commit: compute every new row and check key
        // uniqueness before mutating anything, so a rejected update leaves
        // the table untouched.
        type PlannedRow = (u64, Vec<Value>, Option<KeyTuple>, Option<KeyTuple>);
        let mut planned: Vec<PlannedRow> = Vec::new();
        let mut new_keys: Vec<KeyTuple> = Vec::new();
        for id in &targets {
            let mut row = self.tables[table].rows[id].clone();
            let old_pk = pk_of_static(&def, &row);
            for (i, v) in &idxs {
                row[*i] = v.clone();
            }
            let new_pk = pk_of_static(&def, &row);
            if pk_cols_touched {
                if let Some(np) = &new_pk {
                    let conflict_outside = self.tables[table]
                        .pk_index
                        .get(np)
                        .is_some_and(|owner| !targets.contains(owner));
                    if conflict_outside || new_keys.contains(np) {
                        return Err(DbError::Duplicate {
                            scope: format!("table {table}"),
                            key: format!("{:?}", np.0),
                        });
                    }
                    new_keys.push(np.clone());
                }
            }
            planned.push((*id, row, old_pk, new_pk));
        }
        let t = self.tables.get_mut(table).unwrap();
        for (id, row, old_pk, new_pk) in planned {
            if pk_cols_touched {
                if let Some(op) = old_pk {
                    t.pk_index.remove(&op);
                }
            }
            t.rows.insert(id, row);
            if pk_cols_touched {
                if let Some(np) = new_pk {
                    t.pk_index.insert(np, id);
                }
            }
        }
        Ok(targets.len())
    }

    /// Primary-key point lookup.
    pub fn find_by_key(&self, table: &str, key: &[Value]) -> DbResult<Option<RowId>> {
        let def = self.table_def(table)?;
        if def.primary_key.is_empty() {
            return Ok(None);
        }
        Ok(self.tables[table]
            .pk_index
            .get(&KeyTuple(key.to_vec()))
            .map(|&id| RowId(id)))
    }

    fn pk_of(&self, def: &TableDef, row: &[Value]) -> Option<KeyTuple> {
        pk_of_static(def, row)
    }
}

fn pk_of_static(def: &TableDef, row: &[Value]) -> Option<KeyTuple> {
    if def.primary_key.is_empty() {
        return None;
    }
    Some(KeyTuple(
        def.primary_key
            .iter()
            .map(|k| row[def.column_index(k).unwrap()].clone())
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::relational::ColumnDef;
    use dbpc_datamodel::types::FieldType;

    fn school() -> RelationalSchema {
        RelationalSchema::new("SCHOOL")
            .with_table(
                TableDef::new(
                    "COURSE",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("CNAME", FieldType::Char(20)),
                    ],
                )
                .with_key(vec!["CNO"]),
            )
            .with_table(
                TableDef::new(
                    "COURSE-OFFERING",
                    vec![
                        ColumnDef::new("CNO", FieldType::Char(6)),
                        ColumnDef::new("S", FieldType::Char(4)),
                    ],
                )
                .with_key(vec!["CNO", "S"])
                .with_foreign_key(vec!["CNO"], "COURSE", vec!["CNO"]),
            )
    }

    #[test]
    fn insert_scan_order_is_insertion_order() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        let rows = db.scan("COURSE").unwrap();
        assert_eq!(rows[0][0], Value::str("C2"));
        assert_eq!(rows[1][0], Value::str("C1"));
    }

    #[test]
    fn primary_key_uniqueness() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        assert!(matches!(
            db.insert("COURSE", &[("CNO", Value::str("C1"))]),
            Err(DbError::Duplicate { .. })
        ));
    }

    #[test]
    fn composite_keys_and_lookup() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("C1")), ("S", Value::str("F78"))],
        )
        .unwrap();
        let hit = db
            .find_by_key("COURSE-OFFERING", &[Value::str("C1"), Value::str("F78")])
            .unwrap();
        assert!(hit.is_some());
        let miss = db
            .find_by_key("COURSE-OFFERING", &[Value::str("C1"), Value::str("S79")])
            .unwrap();
        assert!(miss.is_none());
    }

    #[test]
    fn foreign_keys_unenforced_by_default_like_1979() {
        let mut db = RelationalDb::new(school()).unwrap();
        // The §3.1 problem: nothing stops a dangling COURSE-OFFERING.
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("GHOST")), ("S", Value::str("F78"))],
        )
        .unwrap();
        assert_eq!(db.row_count("COURSE-OFFERING").unwrap(), 1);
    }

    #[test]
    fn foreign_keys_enforced_when_enabled() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.enforce_foreign_keys = true;
        assert!(db
            .insert(
                "COURSE-OFFERING",
                &[("CNO", Value::str("GHOST")), ("S", Value::str("F78"))],
            )
            .is_err());
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        db.insert(
            "COURSE-OFFERING",
            &[("CNO", Value::str("C1")), ("S", Value::str("F78"))],
        )
        .unwrap();
    }

    #[test]
    fn null_fk_reference_allowed() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.enforce_foreign_keys = true;
        // Null reference = the paper's "null instructor" trick.
        db.insert("COURSE-OFFERING", &[("S", Value::str("F78"))])
            .unwrap();
    }

    #[test]
    fn delete_where_updates_index() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        let n = db
            .delete_where("COURSE", |r| r[0].loose_eq(&Value::str("C1")))
            .unwrap();
        assert_eq!(n, 1);
        // Key is free again.
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
    }

    #[test]
    fn update_where_maintains_pk_index() {
        let mut db = RelationalDb::new(school()).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C1"))]).unwrap();
        db.insert("COURSE", &[("CNO", Value::str("C2"))]).unwrap();
        // Renaming C2 to C1 must be rejected.
        assert!(db
            .update_where(
                "COURSE",
                |r| r[0].loose_eq(&Value::str("C2")),
                &[("CNO", Value::str("C1"))],
            )
            .is_err());
        // Renaming C2 to C3 works and the index follows.
        db.update_where(
            "COURSE",
            |r| r[0].loose_eq(&Value::str("C2")),
            &[("CNO", Value::str("C3"))],
        )
        .unwrap();
        assert!(db
            .find_by_key("COURSE", &[Value::str("C3")])
            .unwrap()
            .is_some());
        assert!(db
            .find_by_key("COURSE", &[Value::str("C2")])
            .unwrap()
            .is_none());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut db = RelationalDb::new(school()).unwrap();
        assert!(matches!(
            db.insert("COURSE", &[("CNO", Value::Int(12))]),
            Err(DbError::TypeMismatch { .. })
        ));
    }
}
