//! The owner-coupled-set storage engine.
//!
//! Implements the operational semantics the paper's §3.1 and §4.2 rely on:
//!
//! * **ordered set occurrences** — members of each set occurrence are kept
//!   sorted by the declared `SET KEYS`, with duplicates rejected ("Duplicates
//!   are not allowed within a set occurrence", §4.2); keyless sets preserve
//!   insertion (chronological) order;
//! * **insertion classes** — storing a record that is an `AUTOMATIC` member
//!   of a set requires a connection at STORE time; `MANUAL` membership is
//!   established later via `CONNECT`;
//! * **retention classes** — a `MANDATORY` member cannot be disconnected,
//!   reproducing the existence-constraint mechanism of §3.1;
//! * **virtual fields** — reads resolve through the owning record
//!   (`VIRTUAL VIA set USING field`), writes are rejected;
//! * **declarative constraints** — the §3.1 catalogue (existence,
//!   characterizing/cascade, cardinality limits, not-null, uniqueness,
//!   domain) is enforced on every mutation, so moving a constraint between
//!   program logic and the schema is observable.

use crate::disk::file::FileMgr;
use crate::disk::heap::{HeapFile, HeapId, HeapStats};
use crate::disk::tempdir::TempDir;
use crate::error::{DbError, DbResult};
use crate::keys::KeyTuple;
use crate::stats::AccessStats;
use crate::txn::{Savepoint, UndoLog};
use dbpc_datamodel::constraint::Constraint;
use dbpc_datamodel::network::{Insertion, NetworkSchema, RecordTypeDef, Retention, SetDef};
use dbpc_datamodel::value::Value;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identifier of a stored record. `RecordId(0)` is the SYSTEM pseudo-owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

/// Owner id used for occurrences of system-owned sets.
pub const SYSTEM_OWNER: RecordId = RecordId(0);

/// Leading magic of a serialized state image ("DBPCNET1" in LE bytes);
/// versioned so a future layout change fails loudly instead of decoding
/// garbage.
const STATE_MAGIC: u64 = u64::from_le_bytes(*b"DBPCNET1");

/// A stored record occurrence. `values` is parallel to the record type's
/// full field list; virtual-field slots hold `Null` and are resolved on
/// read.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    pub id: RecordId,
    pub rtype: String,
    pub values: Vec<Value>,
}

/// Ordering key of a member within a set occurrence: the declared set-key
/// tuple, tie-broken by arrival sequence. Keyed sets sort by key alone
/// (duplicates are rejected, so the sequence never decides between live
/// members); keyless sets have an empty tuple and degrade to pure arrival
/// (chronological) order — exactly the two orders §4.2 prescribes.
type MemberOrd = (KeyTuple, u64);

/// Index identity: (record type, CALC field names) — one index per probe shape.
type CalcIndexKey = (String, Vec<String>);
/// One maintained index: key tuple → ids of matching records, in storage order.
type CalcIndex = BTreeMap<KeyTuple, Vec<u64>>;

/// Storage for one set type: per-owner ordered member maps plus the
/// member→owner and member→position indexes. Ordered maps make CONNECT,
/// DISCONNECT, ERASE and MODIFY repositioning O(log members) where the
/// former `Vec` representation paid an O(members) `retain` scan.
#[derive(Debug, Clone, Default)]
struct SetStore {
    members: BTreeMap<u64, BTreeMap<MemberOrd, u64>>,
    owner_of: BTreeMap<u64, u64>,
    /// member → its ordering key inside `members[owner_of[member]]`, so a
    /// member can be unlinked without scanning its siblings.
    ord_of: BTreeMap<u64, MemberOrd>,
    next_seq: u64,
}

impl SetStore {
    fn link(&mut self, owner: u64, member: u64, key: KeyTuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.members
            .entry(owner)
            .or_default()
            .insert((key.clone(), seq), member);
        self.ord_of.insert(member, (key, seq));
        self.owner_of.insert(member, owner);
    }

    /// Unlink `member` from its occurrence; returns the former owner.
    fn unlink(&mut self, member: u64) -> Option<u64> {
        let owner = self.owner_of.remove(&member)?;
        if let Some(ord) = self.ord_of.remove(&member) {
            if let Some(occ) = self.members.get_mut(&owner) {
                occ.remove(&ord);
                if occ.is_empty() {
                    self.members.remove(&owner);
                }
            }
        }
        Some(owner)
    }

    fn members_in_order(&self, owner: u64) -> Vec<u64> {
        self.members
            .get(&owner)
            .map(|occ| occ.values().copied().collect())
            .unwrap_or_default()
    }

    fn occurrence_len(&self, owner: u64) -> usize {
        self.members.get(&owner).map(|occ| occ.len()).unwrap_or(0)
    }

    /// Does the occurrence under `owner` already hold `key`?
    fn contains_key_under(&self, owner: u64, key: &KeyTuple) -> bool {
        self.members.get(&owner).is_some_and(|occ| {
            occ.range((key.clone(), 0)..=(key.clone(), u64::MAX))
                .next()
                .is_some()
        })
    }

    /// Reinstate a link at its **original** ordering key (undo path only:
    /// unlike [`SetStore::link`] no new arrival sequence is drawn, so the
    /// member returns to exactly the position it held).
    fn relink_at(&mut self, owner: u64, member: u64, ord: MemberOrd) {
        self.members
            .entry(owner)
            .or_default()
            .insert(ord.clone(), member);
        self.owner_of.insert(member, owner);
        self.ord_of.insert(member, ord);
    }
}

/// Physical inverse of one network mutation, journaled while a savepoint
/// is open. Set-store maps, `by_type` lists, and any materialized
/// calc-key index are maintained through the undo application, so a
/// rollback leaves every derived structure consistent.
#[derive(Debug, Clone)]
enum NetUndo {
    /// Undo a STORE: remove the record and its automatic/planned links.
    Store { id: u64 },
    /// Undo a CONNECT (or the link half of a MODIFY reposition).
    Link { set: String, member: u64 },
    /// Undo a DISCONNECT (or the unlink half of a MODIFY reposition):
    /// reinstate the link at its original ordering key.
    Unlink {
        set: String,
        owner: u64,
        member: u64,
        ord: MemberOrd,
    },
    /// Undo the value half of a MODIFY: restore the previous row image.
    Values { id: u64, values: Vec<Value> },
    /// Undo one record's removal inside an ERASE cascade: reinstate the
    /// record and every set link it held as a member.
    Erase {
        rec: StoredRecord,
        links: Vec<(String, u64, MemberOrd)>,
    },
}

/// Per-savepoint metadata: the id allocator plus each set's arrival
/// counter (links drawn during the rolled-back suffix must not leave
/// gaps that would change later chronological ordering).
#[derive(Debug, Clone)]
struct NetMark {
    next_id: u64,
    next_seqs: Vec<(String, u64)>,
}

/// Magic leading every heap record payload; versioned with the codec.
const REC_MAGIC: u8 = 0x52; // 'R'

/// One record's set memberships as persisted in its heap payload:
/// `(set name, owner id, arrival seq)`. The ordering key is re-derived
/// from the record's values and the schema's `SET KEYS` on recovery.
type PersistedLinks = Vec<(String, u64, u64)>;

/// Where the records themselves live.
///
/// `Mem` is the original representation: every [`StoredRecord`] in a
/// `BTreeMap`, bounded by RAM. `Heap` pages records through a slotted
/// [`HeapFile`] under a capped buffer pool, so database size is bounded
/// by disk; all derived structures (set stores, `by_type` lists,
/// calc-key indexes) stay in RAM as indexes over record ids, and the
/// id → [`HeapId`] directory is the one structure that grows with the
/// record count (two words per record).
enum Backend {
    Mem(BTreeMap<u64, StoredRecord>),
    Heap(Box<HeapBackend>),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Mem(m) => write!(f, "Mem({} records)", m.len()),
            Backend::Heap(h) => write!(f, "Heap({} records)", h.dir.len()),
        }
    }
}

/// Heap-resident record storage (see [`Backend::Heap`]).
struct HeapBackend {
    /// Scratch directory keeping an anonymous paged database alive;
    /// `None` when the heap lives in a caller-owned directory (the
    /// durable engine's).
    scratch: Option<TempDir>,
    fm: Arc<FileMgr>,
    /// Base pool capacity, remembered for `fresh_like` and `clone`.
    pool: usize,
    heap: RefCell<HeapFile>,
    /// Logical record id → physical slot, ascending (= creation) order.
    dir: BTreeMap<u64, HeapId>,
    /// Record types by id — kept in RAM so type dispatch, `by_type`
    /// bookkeeping, and erase paths never fault a page in.
    rtypes: BTreeMap<u64, String>,
    /// Records whose set links changed since the last `sync_links`
    /// (payload link sections are refreshed lazily, at checkpoints).
    link_dirty: BTreeSet<u64>,
}

impl HeapBackend {
    /// Run `f` over the heap, translating disk errors. The `RefCell` is
    /// only held inside this call, so callers may re-enter `NetworkDb`
    /// read APIs afterwards.
    fn with_heap<T>(
        &self,
        f: impl FnOnce(&mut HeapFile) -> crate::disk::DiskResult<T>,
    ) -> DbResult<T> {
        f(&mut self.heap.borrow_mut()).map_err(|e| DbError::constraint(format!("heap: {e}")))
    }

    fn fetch(&self, id: u64) -> Option<StoredRecord> {
        let hid = *self.dir.get(&id)?;
        let bytes = self
            .with_heap(|h| h.get(hid))
            .unwrap_or_else(|e| panic!("heap record #{id} unreadable: {e}"));
        let (rec, _) =
            decode_record(&bytes).unwrap_or_else(|e| panic!("heap record #{id} undecodable: {e}"));
        Some(rec)
    }

    /// Current physical statistics of the heap file.
    fn stats(&self) -> HeapStats {
        self.heap.borrow().stats()
    }
}

/// Serialize one record (plus its set memberships) into a heap payload:
/// `[magic][id][rtype][values][links]`, all little-endian via the disk
/// codec. The ordering key inside each set is *not* persisted — it is a
/// function of the values and the schema's `SET KEYS`, re-derived on
/// recovery — but the arrival sequence is, because it is allocator state.
fn encode_record(rec: &StoredRecord, links: &[(String, u64, u64)]) -> Vec<u8> {
    use crate::disk::codec::ByteWriter;
    let mut w = ByteWriter::new();
    w.put_u8(REC_MAGIC);
    w.put_u64(rec.id.0);
    w.put_str(&rec.rtype);
    w.put_u32(rec.values.len() as u32);
    for v in &rec.values {
        w.put_value(v);
    }
    w.put_u32(links.len() as u32);
    for (set, owner, seq) in links {
        w.put_str(set);
        w.put_u64(*owner);
        w.put_u64(*seq);
    }
    w.into_bytes()
}

/// Inverse of [`encode_record`]; total (typed errors, no panics) because
/// recovery feeds it bytes a crash may have damaged.
fn decode_record(bytes: &[u8]) -> Result<(StoredRecord, PersistedLinks), String> {
    use crate::disk::codec::ByteReader;
    fn ctx<T>(r: Result<T, crate::disk::codec::CodecError>) -> Result<T, String> {
        r.map_err(|e| e.to_string())
    }
    let mut r = ByteReader::new(bytes);
    let magic = ctx(r.get_u8("record magic"))?;
    if magic != REC_MAGIC {
        return Err(format!("bad record magic 0x{magic:02X}"));
    }
    let id = ctx(r.get_u64("record id"))?;
    let rtype = ctx(r.get_str("record type"))?;
    let n_values = ctx(r.get_u32("value count"))?;
    let mut values = Vec::with_capacity(n_values as usize);
    for _ in 0..n_values {
        values.push(ctx(r.get_value("field value"))?);
    }
    let n_links = ctx(r.get_u32("link count"))?;
    let mut links = Vec::with_capacity(n_links as usize);
    for _ in 0..n_links {
        let set = ctx(r.get_str("link set"))?;
        let owner = ctx(r.get_u64("link owner"))?;
        let seq = ctx(r.get_u64("link seq"))?;
        links.push((set, owner, seq));
    }
    if !r.is_empty() {
        return Err(format!("{} trailing bytes", r.remaining()));
    }
    Ok((
        StoredRecord {
            id: RecordId(id),
            rtype,
            values,
        },
        links,
    ))
}

/// A record's current set memberships `(set, owner, arrival seq)`, read
/// from the RAM set stores — the persisted form of its links.
fn persisted_links_of(sets: &BTreeMap<String, SetStore>, id: u64) -> PersistedLinks {
    sets.iter()
        .filter_map(|(name, st)| {
            let owner = *st.owner_of.get(&id)?;
            let (_, seq) = st.ord_of.get(&id)?;
            Some((name.clone(), owner, *seq))
        })
        .collect()
}

/// An owner-coupled-set database instance.
#[derive(Debug)]
pub struct NetworkDb {
    schema: NetworkSchema,
    records: Backend,
    sets: BTreeMap<String, SetStore>,
    /// Record ids per record type, ascending (= creation order).
    by_type: BTreeMap<String, Vec<u64>>,
    /// Lazily-built calc-key indexes: (record type, stored-field list) →
    /// key tuple → ids in creation order. Built on the first keyed FIND
    /// over that field list, maintained through every later mutation.
    calc_indexes: RefCell<BTreeMap<CalcIndexKey, CalcIndex>>,
    next_id: u64,
    stats: AccessStats,
    /// Undo journal (see [`crate::txn`]).
    journal: UndoLog<NetUndo, NetMark>,
}

impl Clone for NetworkDb {
    /// Mem databases clone structurally. Heap databases clone
    /// *physically*: a fresh scratch heap is populated record by record,
    /// preserving every logical id (and therefore the fingerprint).
    /// Panics on disk errors — `Clone` has no error channel, and a
    /// failing scratch volume is not a recoverable condition here.
    fn clone(&self) -> NetworkDb {
        let records = match &self.records {
            Backend::Mem(m) => Backend::Mem(m.clone()),
            Backend::Heap(h) => {
                let mut fresh = HeapBackend::scratch(h.fm.page_size(), h.pool)
                    .unwrap_or_else(|e| panic!("cloning paged db: {e}"));
                for (&id, &hid) in &h.dir {
                    let bytes = h
                        .with_heap(|heap| heap.get(hid))
                        .unwrap_or_else(|e| panic!("cloning record #{id}: {e}"));
                    let nid = fresh
                        .with_heap(|heap| heap.insert(&bytes))
                        .unwrap_or_else(|e| panic!("cloning record #{id}: {e}"));
                    fresh.dir.insert(id, nid);
                }
                fresh.rtypes = h.rtypes.clone();
                fresh.link_dirty = h.link_dirty.clone();
                Backend::Heap(Box::new(fresh))
            }
        };
        NetworkDb {
            schema: self.schema.clone(),
            records,
            sets: self.sets.clone(),
            by_type: self.by_type.clone(),
            calc_indexes: self.calc_indexes.clone(),
            next_id: self.next_id,
            stats: self.stats.clone(),
            journal: self.journal.clone(),
        }
    }
}

impl HeapBackend {
    /// A heap backend over its own self-cleaning scratch directory.
    fn scratch(page_size: usize, pool: usize) -> DbResult<HeapBackend> {
        let dir = TempDir::new("paged-netdb")
            .map_err(|e| DbError::constraint(format!("heap scratch: {e}")))?;
        let fm = Arc::new(
            FileMgr::new(dir.path(), page_size)
                .map_err(|e| DbError::constraint(format!("heap scratch: {e}")))?,
        );
        let mut hb = HeapBackend::on(fm, "heap.dat", pool)?;
        hb.scratch = Some(dir);
        Ok(hb)
    }

    /// A heap backend over a caller-owned file manager (durable engine).
    fn on(fm: Arc<FileMgr>, file: &str, pool: usize) -> DbResult<HeapBackend> {
        let heap = HeapFile::open(Arc::clone(&fm), file, pool)
            .map_err(|e| DbError::constraint(format!("heap open: {e}")))?;
        Ok(HeapBackend {
            scratch: None,
            fm,
            pool,
            heap: RefCell::new(heap),
            dir: BTreeMap::new(),
            rtypes: BTreeMap::new(),
            link_dirty: BTreeSet::new(),
        })
    }
}

impl NetworkDb {
    /// Create an empty database for a (validated) schema.
    pub fn new(schema: NetworkSchema) -> DbResult<NetworkDb> {
        NetworkDb::with_backend(schema, Backend::Mem(BTreeMap::new()))
    }

    /// Create an empty **paged** database: records live in a slotted heap
    /// file under a buffer pool of `pool` frames of `page_size` bytes, in
    /// a self-cleaning scratch directory. Database size is bounded by
    /// disk; RAM holds the pool plus O(records) index entries.
    pub fn new_paged(schema: NetworkSchema, page_size: usize, pool: usize) -> DbResult<NetworkDb> {
        let hb = HeapBackend::scratch(page_size, pool)?;
        NetworkDb::with_backend(schema, Backend::Heap(Box::new(hb)))
    }

    /// Create an empty paged database whose heap file lives in a
    /// caller-owned [`FileMgr`] (the durable engine shares its directory
    /// with the WAL and manifest). The heap file must be empty or absent.
    pub fn paged_on(
        schema: NetworkSchema,
        fm: Arc<FileMgr>,
        file: &str,
        pool: usize,
    ) -> DbResult<NetworkDb> {
        let hb = HeapBackend::on(fm, file, pool)?;
        if hb.stats().pages > 0 {
            return Err(DbError::constraint(format!(
                "paged_on: heap file {file} is not empty"
            )));
        }
        NetworkDb::with_backend(schema, Backend::Heap(Box::new(hb)))
    }

    /// Reopen a paged database from an existing heap file: scan every
    /// live payload, rebuild the id directory, `by_type` lists, and all
    /// set stores from the persisted `(set, owner, seq)` links (ordering
    /// keys re-derived from values + schema keys). The caller supplies
    /// the allocator state the scan cannot know — `next_id` and each
    /// set's arrival counter — from its own durable metadata.
    pub fn recover_paged(
        schema: NetworkSchema,
        fm: Arc<FileMgr>,
        file: &str,
        pool: usize,
        next_id: u64,
        next_seqs: &[(String, u64)],
    ) -> DbResult<NetworkDb> {
        let hb = HeapBackend::on(fm, file, pool)?;
        let mut db = NetworkDb::with_backend(schema, Backend::Heap(Box::new(hb)))?;
        // Collect (id → payload parts) in one heap pass, ascending
        // physical order; then rebuild RAM structures in id order.
        let mut decoded: BTreeMap<u64, (StoredRecord, PersistedLinks, HeapId)> = BTreeMap::new();
        {
            let Backend::Heap(h) = &db.records else {
                return Err(DbError::constraint("recover_paged: not a heap backend"));
            };
            h.with_heap(|heap| {
                heap.for_each(&mut |hid, bytes| {
                    let (rec, links) = decode_record(&bytes).map_err(|e| {
                        crate::disk::DiskError::Corrupt(format!("heap record at {hid}: {e}"))
                    })?;
                    decoded.insert(rec.id.0, (rec, links, hid));
                    Ok(())
                })
            })?;
        }
        for (id, (rec, links, hid)) in decoded {
            let Backend::Heap(h) = &mut db.records else {
                return Err(DbError::constraint("recover_paged: not a heap backend"));
            };
            h.dir.insert(id, hid);
            h.rtypes.insert(id, rec.rtype.clone());
            db.by_type.entry(rec.rtype.clone()).or_default().push(id);
            let rt = db
                .schema
                .record(&rec.rtype)
                .ok_or_else(|| DbError::unknown("record", &rec.rtype))?;
            for (set_name, owner, seq) in links {
                let set = db
                    .schema
                    .set(&set_name)
                    .ok_or_else(|| DbError::unknown("set", &set_name))?;
                let key = if set.keys.is_empty() {
                    KeyTuple(Vec::new())
                } else {
                    key_tuple(rt, &rec.values, &set.keys)
                };
                let store = db
                    .sets
                    .get_mut(&set_name)
                    .ok_or_else(|| DbError::unknown("set", &set_name))?;
                store.relink_at(owner, id, (key, seq));
            }
        }
        db.next_id = next_id;
        for (name, seq) in next_seqs {
            if let Some(st) = db.sets.get_mut(name) {
                st.next_seq = *seq;
            }
        }
        db.check_access_structures()
            .map_err(|e| DbError::constraint(format!("heap recovery: {e}")))?;
        Ok(db)
    }

    fn with_backend(schema: NetworkSchema, records: Backend) -> DbResult<NetworkDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        let sets = schema
            .sets
            .iter()
            .map(|s| (s.name.clone(), SetStore::default()))
            .collect();
        Ok(NetworkDb {
            schema,
            records,
            sets,
            by_type: BTreeMap::new(),
            calc_indexes: RefCell::new(BTreeMap::new()),
            next_id: 1,
            stats: AccessStats::default(),
            journal: UndoLog::default(),
        })
    }

    /// An empty database under `schema` on the **same backend kind** as
    /// `self` (and, for paged databases, the same page size and pool):
    /// translation outputs inherit their source's storage discipline, so
    /// an out-of-core source translates into an out-of-core target.
    pub fn fresh_like(&self, schema: NetworkSchema) -> DbResult<NetworkDb> {
        match &self.records {
            Backend::Mem(_) => NetworkDb::new(schema),
            Backend::Heap(h) => NetworkDb::new_paged(schema, h.fm.page_size(), h.pool),
        }
    }

    /// Whether records are paged through a heap file (vs RAM-resident).
    pub fn is_paged(&self) -> bool {
        matches!(self.records, Backend::Heap(_))
    }

    /// Physical heap statistics (`None` for in-memory databases).
    pub fn heap_stats(&self) -> Option<HeapStats> {
        match &self.records {
            Backend::Mem(_) => None,
            Backend::Heap(h) => Some(h.stats()),
        }
    }

    /// Publish `heap.*` physical gauges (and nothing for Mem databases)
    /// into the ambient metrics sheet for RunReport assembly.
    pub fn publish_heap_gauges(&self) {
        if let Some(st) = self.heap_stats() {
            dbpc_obs::gauge("heap.pages", st.pages as i64);
            dbpc_obs::gauge("heap.records", st.records as i64);
            dbpc_obs::gauge("heap.fill_pct", st.fill_pct as i64);
        }
    }

    // -- backend accessors -------------------------------------------------

    /// Run `f` over the record, if it exists. Clone-free in Mem mode; in
    /// Heap mode the payload is decoded first and the heap borrow is
    /// released before `f` runs, so `f` may re-enter read APIs.
    fn with_rec<T>(&self, id: u64, f: impl FnOnce(&StoredRecord) -> T) -> Option<T> {
        match &self.records {
            Backend::Mem(m) => m.get(&id).map(f),
            Backend::Heap(h) => h.fetch(id).as_ref().map(f),
        }
    }

    /// Visit every record in ascending-id (= creation) order.
    fn for_each_rec(&self, f: &mut dyn FnMut(&StoredRecord)) {
        match &self.records {
            Backend::Mem(m) => {
                for rec in m.values() {
                    f(rec);
                }
            }
            Backend::Heap(h) => {
                for &id in h.dir.keys().collect::<Vec<_>>() {
                    if let Some(rec) = h.fetch(id) {
                        f(&rec);
                    }
                }
            }
        }
    }

    fn backend_contains(&self, id: u64) -> bool {
        match &self.records {
            Backend::Mem(m) => m.contains_key(&id),
            Backend::Heap(h) => h.dir.contains_key(&id),
        }
    }

    /// Insert a freshly created record (store / undo-of-erase).
    fn backend_insert(&mut self, rec: StoredRecord) {
        match &mut self.records {
            Backend::Mem(m) => {
                m.insert(rec.id.0, rec);
            }
            Backend::Heap(h) => {
                let id = rec.id.0;
                let bytes = encode_record(&rec, &[]);
                let hid = h
                    .with_heap(|heap| heap.insert(&bytes))
                    .unwrap_or_else(|e| panic!("heap insert #{id}: {e}"));
                h.dir.insert(id, hid);
                h.rtypes.insert(id, rec.rtype);
                h.link_dirty.insert(id);
            }
        }
    }

    /// Remove a record (erase / undo-of-store), returning it.
    fn backend_remove(&mut self, id: u64) -> Option<StoredRecord> {
        match &mut self.records {
            Backend::Mem(m) => m.remove(&id),
            Backend::Heap(h) => {
                let rec = h.fetch(id)?;
                let hid = h.dir.remove(&id)?;
                h.rtypes.remove(&id);
                h.link_dirty.remove(&id);
                h.with_heap(|heap| heap.erase(hid))
                    .unwrap_or_else(|e| panic!("heap erase #{id}: {e}"));
                Some(rec)
            }
        }
    }

    /// Overwrite a record's values (modify / undo-of-modify). Returns
    /// false if the record does not exist.
    fn backend_set_values(&mut self, id: u64, values: Vec<Value>) -> bool {
        match &mut self.records {
            Backend::Mem(m) => match m.get_mut(&id) {
                Some(rec) => {
                    rec.values = values;
                    true
                }
                None => false,
            },
            Backend::Heap(h) => {
                let Some(mut rec) = h.fetch(id) else {
                    return false;
                };
                rec.values = values;
                // Values rewrite resyncs the link section too (it is
                // being re-encoded anyway), so drop any pending marker.
                let links = persisted_links_of(&self.sets, id);
                let bytes = encode_record(&rec, &links);
                let hid = h.dir[&id];
                let new_hid = h
                    .with_heap(|heap| heap.update(hid, &bytes))
                    .unwrap_or_else(|e| panic!("heap update #{id}: {e}"));
                h.dir.insert(id, new_hid);
                h.link_dirty.remove(&id);
                true
            }
        }
    }

    /// Record that `id`'s set links changed; its heap payload is
    /// refreshed lazily by [`NetworkDb::sync_links`]. No-op in Mem mode.
    fn touch_links(&mut self, id: u64) {
        if let Backend::Heap(h) = &mut self.records {
            if h.dir.contains_key(&id) {
                h.link_dirty.insert(id);
            }
        }
    }

    /// Rewrite the heap payload of every record whose set links changed
    /// since the last sync, bringing persisted links in line with the
    /// RAM set stores. Called by checkpoints before flushing pages; a
    /// no-op for Mem databases and when nothing changed.
    pub fn sync_links(&mut self) -> DbResult<()> {
        let Backend::Heap(h) = &mut self.records else {
            return Ok(());
        };
        let pending: Vec<u64> = h.link_dirty.iter().copied().collect();
        for id in pending {
            let Some(mut rec) = h.fetch(id) else {
                h.link_dirty.remove(&id);
                continue;
            };
            let links = persisted_links_of(&self.sets, id);
            rec.id = RecordId(id);
            let bytes = encode_record(&rec, &links);
            let hid = h.dir[&id];
            let new_hid = h
                .with_heap(|heap| heap.update(hid, &bytes))
                .map_err(|e| DbError::constraint(format!("link sync #{id}: {e}")))?;
            h.dir.insert(id, new_hid);
            h.link_dirty.remove(&id);
        }
        Ok(())
    }

    /// Flush every dirty heap page to disk (no-op for Mem). Does not
    /// fsync — the caller owns the sync boundary.
    pub fn flush_heap(&mut self) -> DbResult<()> {
        match &mut self.records {
            Backend::Mem(_) => Ok(()),
            Backend::Heap(h) => h.with_heap(|heap| heap.flush()),
        }
    }

    /// Mutable access to the heap's buffer pool (durable checkpoint
    /// protocol: no-steal policy, dirty-block enumeration, trim).
    pub(crate) fn heap_buffer(&mut self) -> Option<&mut crate::disk::BufferMgr> {
        match &mut self.records {
            Backend::Mem(_) => None,
            Backend::Heap(h) => Some(h.heap.get_mut().buffer()),
        }
    }

    /// Allocator state a physical scan cannot reconstruct: the next
    /// record id and every set's arrival-sequence counter. The durable
    /// engine persists this beside the heap at each checkpoint and hands
    /// it back to [`NetworkDb::recover_paged`].
    pub fn allocator_state(&self) -> (u64, Vec<(String, u64)>) {
        (
            self.next_id,
            self.sets
                .iter()
                .map(|(name, st)| (name.clone(), st.next_seq))
                .collect(),
        )
    }

    /// Largest allocated record id, if any record exists.
    pub fn max_record_id(&self) -> Option<RecordId> {
        match &self.records {
            Backend::Mem(m) => m.keys().next_back().map(|&i| RecordId(i)),
            Backend::Heap(h) => h.dir.keys().next_back().map(|&i| RecordId(i)),
        }
    }

    /// Open a savepoint. Until it is rolled back or committed, every
    /// mutation journals its inverse. Savepoints nest.
    pub fn begin_savepoint(&mut self) -> Savepoint {
        self.journal.begin(NetMark {
            next_id: self.next_id,
            next_seqs: self
                .sets
                .iter()
                .map(|(name, st)| (name.clone(), st.next_seq))
                .collect(),
        })
    }

    /// Restore the database to its state at `begin_savepoint`: records,
    /// every set occurrence (including member order and arrival
    /// sequences), `by_type` lists, materialized calc-key indexes, and
    /// the id allocator. Savepoints opened after `sp` are discarded; a
    /// stale handle is a no-op.
    pub fn rollback_to(&mut self, sp: Savepoint) {
        if let Some((ops, mark)) = self.journal.rollback(sp) {
            for op in ops {
                self.apply_undo(op);
            }
            self.next_id = mark.next_id;
            for (name, seq) in mark.next_seqs {
                if let Some(st) = self.sets.get_mut(&name) {
                    st.next_seq = seq;
                }
            }
        }
    }

    /// Keep everything done since `sp` and close it (plus any savepoint
    /// nested inside it). A stale handle is a no-op.
    pub fn commit(&mut self, sp: Savepoint) {
        self.journal.commit(sp);
    }

    fn apply_undo(&mut self, op: NetUndo) {
        match op {
            NetUndo::Store { id } => {
                // Mirror of `erase_inner`'s teardown: any link made *after*
                // the store was journaled separately and is already undone
                // (LIFO), so what remains are the store-time connections.
                for store in self.sets.values_mut() {
                    store.unlink(id);
                    store.members.remove(&id);
                }
                if let Some(rec) = self.backend_remove(id) {
                    if let Some(ids) = self.by_type.get_mut(&rec.rtype) {
                        if let Ok(pos) = ids.binary_search(&id) {
                            ids.remove(pos);
                        }
                    }
                    self.index_remove(&rec.rtype, &rec.values, id);
                }
            }
            NetUndo::Link { set, member } => {
                if let Some(store) = self.sets.get_mut(&set) {
                    store.unlink(member);
                }
                self.touch_links(member);
            }
            NetUndo::Unlink {
                set,
                owner,
                member,
                ord,
            } => {
                if let Some(store) = self.sets.get_mut(&set) {
                    store.relink_at(owner, member, ord);
                }
                self.touch_links(member);
            }
            NetUndo::Values { id, values } => {
                let Some((rtype, current)) =
                    self.with_rec(id, |r| (r.rtype.clone(), r.values.clone()))
                else {
                    return;
                };
                self.backend_set_values(id, values.clone());
                self.index_update(&rtype, &current, &values, id);
            }
            NetUndo::Erase { rec, links } => {
                let id = rec.id.0;
                let ids = self.by_type.entry(rec.rtype.clone()).or_default();
                let pos = ids.partition_point(|&m| m < id);
                ids.insert(pos, id);
                self.index_add(&rec.rtype, &rec.values, id);
                self.backend_insert(rec);
                for (set, owner, ord) in links {
                    if let Some(store) = self.sets.get_mut(&set) {
                        store.relink_at(owner, id, ord);
                    }
                }
            }
        }
    }

    /// Deterministic digest of the full logical state: records, every
    /// set's link structure (owners, member order, arrival sequences and
    /// counter), and the id allocator. Derived structures (`by_type`
    /// lists, calc-key indexes) are excluded — they are a function of the
    /// records, verified by [`NetworkDb::check_access_structures`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.next_id.hash(&mut h);
        self.record_count().hash(&mut h);
        self.for_each_rec(&mut |rec| {
            rec.id.0.hash(&mut h);
            rec.rtype.hash(&mut h);
            rec.values.hash(&mut h);
        });
        for (name, store) in &self.sets {
            name.hash(&mut h);
            store.next_seq.hash(&mut h);
            store.members.len().hash(&mut h);
            for (owner, occ) in &store.members {
                owner.hash(&mut h);
                for ((key, seq), member) in occ {
                    key.0.hash(&mut h);
                    seq.hash(&mut h);
                    member.hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Serialize the full logical state — the exact inputs of
    /// [`NetworkDb::fingerprint`]: the id allocator, every record, and
    /// every set's link structure including arrival sequences. Derived
    /// structures (`by_type`, calc-key indexes) are rebuilt on load. Used
    /// by the disk layer's snapshot checkpoints; the layout lives here
    /// because it reads private fields.
    pub fn state_bytes(&self) -> Vec<u8> {
        use crate::disk::codec::ByteWriter;
        let mut w = ByteWriter::new();
        w.put_u64(STATE_MAGIC);
        w.put_u64(self.next_id);
        w.put_u64(self.record_count() as u64);
        self.for_each_rec(&mut |rec| {
            w.put_u64(rec.id.0);
            w.put_str(&rec.rtype);
            w.put_u32(rec.values.len() as u32);
            for v in &rec.values {
                w.put_value(v);
            }
        });
        w.put_u64(self.sets.len() as u64);
        for (name, store) in &self.sets {
            w.put_str(name);
            w.put_u64(store.next_seq);
            w.put_u64(store.members.len() as u64);
            for (owner, occ) in &store.members {
                w.put_u64(*owner);
                w.put_u64(occ.len() as u64);
                for ((key, seq), member) in occ {
                    w.put_u32(key.0.len() as u32);
                    for v in &key.0 {
                        w.put_value(v);
                    }
                    w.put_u64(*seq);
                    w.put_u64(*member);
                }
            }
        }
        w.into_bytes()
    }

    /// Rebuild a database from [`NetworkDb::state_bytes`] output. The
    /// schema must be the one the bytes were produced under (set names
    /// are cross-checked). Every derived structure — `by_type` lists,
    /// member→owner and member→position indexes — is reconstructed and
    /// validated with [`NetworkDb::check_access_structures`]; calc-key
    /// indexes rebuild lazily. The result's `fingerprint()` equals the
    /// source's by construction.
    pub fn from_state_bytes(schema: NetworkSchema, bytes: &[u8]) -> DbResult<NetworkDb> {
        let db = NetworkDb::new(schema)?;
        Self::load_state_into(db, bytes)
    }

    /// [`NetworkDb::from_state_bytes`], but into a **paged** database over
    /// a caller-owned heap file, which must hold no live records (virgin
    /// pages from a zeroed-out predecessor are fine). The durable engine's
    /// import path uses this to rebuild a full copy out of core.
    pub fn from_state_bytes_paged(
        schema: NetworkSchema,
        bytes: &[u8],
        fm: Arc<FileMgr>,
        file: &str,
        pool: usize,
    ) -> DbResult<NetworkDb> {
        let hb = HeapBackend::on(fm, file, pool)?;
        if hb.stats().records > 0 {
            return Err(DbError::constraint(format!(
                "from_state_bytes_paged: heap file {file} holds records"
            )));
        }
        let db = NetworkDb::with_backend(schema, Backend::Heap(Box::new(hb)))?;
        Self::load_state_into(db, bytes)
    }

    /// Copy this database into a **paged** twin over a self-cleaning
    /// scratch heap file: same schema, same records, same allocator
    /// state; `fingerprint()` equal by construction. The twin's working
    /// set is bounded by `pool` frames of `page_size` bytes regardless
    /// of how large the source is.
    pub fn to_paged(&self, page_size: usize, pool: usize) -> DbResult<NetworkDb> {
        let hb = HeapBackend::scratch(page_size, pool)?;
        let db = NetworkDb::with_backend(self.schema.clone(), Backend::Heap(Box::new(hb)))?;
        Self::load_state_into(db, &self.state_bytes())
    }

    fn load_state_into(mut db: NetworkDb, bytes: &[u8]) -> DbResult<NetworkDb> {
        use crate::disk::codec::ByteReader;
        fn decode<T>(r: Result<T, crate::disk::codec::CodecError>) -> DbResult<T> {
            r.map_err(|e| DbError::constraint(format!("state image: {e}")))
        }
        let mut r = ByteReader::new(bytes);
        if decode(r.get_u64("state magic"))? != STATE_MAGIC {
            return Err(DbError::constraint("state image: bad magic".to_string()));
        }
        db.next_id = decode(r.get_u64("next_id"))?;
        let n_records = decode(r.get_u64("record count"))?;
        for _ in 0..n_records {
            let id = decode(r.get_u64("record id"))?;
            let rtype = decode(r.get_str("record type"))?;
            let n_values = decode(r.get_u32("value count"))?;
            let mut values = Vec::with_capacity(n_values as usize);
            for _ in 0..n_values {
                values.push(decode(r.get_value("field value"))?);
            }
            db.by_type.entry(rtype.clone()).or_default().push(id);
            db.backend_insert(StoredRecord {
                id: RecordId(id),
                rtype,
                values,
            });
        }
        let n_sets = decode(r.get_u64("set count"))?;
        for _ in 0..n_sets {
            let name = decode(r.get_str("set name"))?;
            let next_seq = decode(r.get_u64("set next_seq"))?;
            let n_owners = decode(r.get_u64("owner count"))?;
            let store = db.sets.get_mut(&name).ok_or_else(|| {
                DbError::constraint(format!("state image: set {name} not in schema"))
            })?;
            store.next_seq = next_seq;
            for _ in 0..n_owners {
                let owner = decode(r.get_u64("owner id"))?;
                let n_members = decode(r.get_u64("member count"))?;
                for _ in 0..n_members {
                    let n_key = decode(r.get_u32("key arity"))?;
                    let mut key = Vec::with_capacity(n_key as usize);
                    for _ in 0..n_key {
                        key.push(decode(r.get_value("key value"))?);
                    }
                    let seq = decode(r.get_u64("arrival seq"))?;
                    let member = decode(r.get_u64("member id"))?;
                    let ord = (KeyTuple(key), seq);
                    store
                        .members
                        .entry(owner)
                        .or_default()
                        .insert(ord.clone(), member);
                    store.owner_of.insert(member, owner);
                    store.ord_of.insert(member, ord);
                }
            }
        }
        if !r.is_empty() {
            return Err(DbError::constraint(format!(
                "state image: {} trailing bytes",
                r.remaining()
            )));
        }
        // `by_type` was filled in BTreeMap (ascending-id) order, which is
        // creation order; the audit cross-checks everything anyway.
        db.check_access_structures()
            .map_err(|e| DbError::constraint(format!("state image: {e}")))?;
        Ok(db)
    }

    /// Records with id strictly greater than `after`, ascending. Lets the
    /// durable-translation journal diff "what did this batch store"
    /// without holding references across the batch. Returned by value:
    /// paged backends materialize each record from its heap page.
    pub fn records_above(&self, after: RecordId) -> Vec<StoredRecord> {
        match &self.records {
            Backend::Mem(m) => m.range(after.0 + 1..).map(|(_, rec)| rec.clone()).collect(),
            Backend::Heap(h) => {
                let ids: Vec<u64> = h.dir.range(after.0 + 1..).map(|(&id, _)| id).collect();
                ids.into_iter().filter_map(|id| h.fetch(id)).collect()
            }
        }
    }

    pub fn schema(&self) -> &NetworkSchema {
        &self.schema
    }

    /// Access-path counters (records visited, calc-key probes).
    pub fn access_stats(&self) -> &AccessStats {
        &self.stats
    }

    pub fn record_count(&self) -> usize {
        match &self.records {
            Backend::Mem(m) => m.len(),
            Backend::Heap(h) => h.dir.len(),
        }
    }

    /// Fetch a record. Returned by value: a paged backend materializes
    /// the record from its heap page (which may fault the page in), so
    /// there is no reference into the store to hold across evictions.
    pub fn get(&self, id: RecordId) -> DbResult<StoredRecord> {
        match &self.records {
            Backend::Mem(m) => m.get(&id.0).cloned(),
            Backend::Heap(h) => h.fetch(id.0),
        }
        .ok_or_else(|| DbError::NotFound(format!("record #{}", id.0)))
    }

    /// All record ids of a type, in creation order (deterministic).
    pub fn records_of_type(&self, rtype: &str) -> Vec<RecordId> {
        let ids = self
            .by_type
            .get(rtype)
            .map(Vec::as_slice)
            .unwrap_or_default();
        self.stats.scanned(ids.len() as u64);
        ids.iter().map(|&i| RecordId(i)).collect()
    }

    /// Records of `rtype` whose stored fields `fields` equal `key`, via the
    /// calc-key index (built lazily on first use, maintained thereafter).
    /// Results come back in creation order — identical to filtering
    /// [`records_of_type`](Self::records_of_type) — so a converted program
    /// using keyed FIND observes the same sequence as a scanning one.
    /// Returns `Ok(None)` when the field list is not indexable (unknown or
    /// `VIRTUAL` fields: virtuals resolve through the owner and change on
    /// CONNECT/DISCONNECT without the record itself being touched); the
    /// caller falls back to a scan.
    pub fn find_keyed(
        &self,
        rtype: &str,
        fields: &[&str],
        key: &[Value],
    ) -> DbResult<Option<Vec<RecordId>>> {
        if fields.is_empty() || fields.len() != key.len() {
            return Ok(None);
        }
        let rt = self.record_type(rtype)?;
        let mut idxs = Vec::with_capacity(fields.len());
        for f in fields {
            match rt.field_index(f) {
                Some(i) if !rt.fields[i].is_virtual() => idxs.push(i),
                _ => return Ok(None),
            }
        }
        let index_key = (
            rtype.to_string(),
            fields.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
        );
        let mut indexes = self.calc_indexes.borrow_mut();
        let index = indexes.entry(index_key).or_insert_with(|| {
            let mut map: BTreeMap<KeyTuple, Vec<u64>> = BTreeMap::new();
            for &id in self
                .by_type
                .get(rtype)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                let Some(k) = self.with_rec(id, |rec| {
                    KeyTuple(idxs.iter().map(|&i| rec.values[i].clone()).collect())
                }) else {
                    panic!("by_type lists record #{id} missing from the store");
                };
                map.entry(k).or_default().push(id);
            }
            map
        });
        let hit = index.get(&KeyTuple(key.to_vec()));
        self.stats.probed(hit.is_some());
        Ok(Some(
            hit.map(|v| v.iter().map(|&i| RecordId(i)).collect())
                .unwrap_or_default(),
        ))
    }

    /// Current record count of a type. Non-counting: a statistics read,
    /// not a data access.
    pub fn type_cardinality(&self, rtype: &str) -> u64 {
        self.by_type.get(rtype).map_or(0, |ids| ids.len() as u64)
    }

    /// Statistics twin of [`NetworkDb::find_keyed`]: is this field list
    /// calc-indexable, and with how many distinct key tuples? Builds the
    /// lazy index exactly as a keyed FIND would (so the answer reflects
    /// live state) but **never counts a probe** — the planner consults
    /// this before deciding probe vs scan. `Ok(None)` mirrors
    /// `find_keyed`'s not-indexable cases (unknown or `VIRTUAL` fields).
    pub fn keyed_distinct(&self, rtype: &str, fields: &[&str]) -> DbResult<Option<u64>> {
        if fields.is_empty() {
            return Ok(None);
        }
        let rt = self.record_type(rtype)?;
        let mut idxs = Vec::with_capacity(fields.len());
        for f in fields {
            match rt.field_index(f) {
                Some(i) if !rt.fields[i].is_virtual() => idxs.push(i),
                _ => return Ok(None),
            }
        }
        let index_key = (
            rtype.to_string(),
            fields.iter().map(|f| f.to_string()).collect::<Vec<_>>(),
        );
        let mut indexes = self.calc_indexes.borrow_mut();
        let index = indexes.entry(index_key).or_insert_with(|| {
            let mut map: BTreeMap<KeyTuple, Vec<u64>> = BTreeMap::new();
            for &id in self
                .by_type
                .get(rtype)
                .map(Vec::as_slice)
                .unwrap_or_default()
            {
                let Some(k) = self.with_rec(id, |rec| {
                    KeyTuple(idxs.iter().map(|&i| rec.values[i].clone()).collect())
                }) else {
                    panic!("by_type lists record #{id} missing from the store");
                };
                map.entry(k).or_default().push(id);
            }
            map
        });
        Ok(Some(index.len() as u64))
    }

    /// `(occurrences with members, total member links)` of a set — the
    /// planner's fan-out statistic. Non-counting.
    pub fn set_fanout(&self, set: &str) -> DbResult<(u64, u64)> {
        let store = self
            .sets
            .get(set)
            .ok_or_else(|| DbError::unknown("set", set))?;
        let occupied = store.members.values().filter(|occ| !occ.is_empty()).count();
        Ok((occupied as u64, store.owner_of.len() as u64))
    }

    /// Members of a set occurrence, in set-key order.
    pub fn members_of(&self, set: &str, owner: RecordId) -> DbResult<Vec<RecordId>> {
        let store = self
            .sets
            .get(set)
            .ok_or_else(|| DbError::unknown("set", set))?;
        let ids = store.members_in_order(owner.0);
        self.stats.scanned(ids.len() as u64);
        Ok(ids.into_iter().map(RecordId).collect())
    }

    /// The owner of `member` in `set`, if connected.
    pub fn owner_in(&self, set: &str, member: RecordId) -> DbResult<Option<RecordId>> {
        let store = self
            .sets
            .get(set)
            .ok_or_else(|| DbError::unknown("set", set))?;
        Ok(store.owner_of.get(&member.0).map(|&i| RecordId(i)))
    }

    /// Read a field, resolving virtual fields through the owner. A virtual
    /// field of a disconnected member reads as `Null` (the "null instructor"
    /// device of §3.1).
    pub fn field_value(&self, id: RecordId, field: &str) -> DbResult<Value> {
        // Resolve in two steps so the virtual-field recursion runs after
        // the record access completes (no store borrow held across it).
        enum Fetched {
            Plain(Value),
            Virtual { set: String, source: String },
        }
        let step = self
            .with_rec(id.0, |rec| -> DbResult<Fetched> {
                let rt = self.record_type(&rec.rtype)?;
                let idx = rt
                    .field_index(field)
                    .ok_or_else(|| DbError::unknown("field", format!("{}.{}", rec.rtype, field)))?;
                match &rt.fields[idx].virtual_via {
                    None => Ok(Fetched::Plain(rec.values[idx].clone())),
                    Some(v) => Ok(Fetched::Virtual {
                        set: v.set.clone(),
                        source: v.source_field.clone(),
                    }),
                }
            })
            .ok_or_else(|| DbError::NotFound(format!("record #{}", id.0)))??;
        match step {
            Fetched::Plain(v) => Ok(v),
            Fetched::Virtual { set, source } => match self.owner_in(&set, id)? {
                None => Ok(Value::Null),
                Some(owner) => self.field_value(owner, &source),
            },
        }
    }

    /// All field values of a record in declaration order, virtuals resolved.
    pub fn resolved_values(&self, id: RecordId) -> DbResult<Vec<Value>> {
        let rec = self.get(id)?;
        let rt = self.record_type(&rec.rtype)?.clone();
        rt.fields
            .iter()
            .map(|f| self.field_value(id, &f.name))
            .collect()
    }

    // -- mutation ----------------------------------------------------------

    /// Store a new record.
    ///
    /// `values` gives stored (non-virtual) fields; omitted fields default to
    /// `Null`. `connects` names the owner occurrence for record-owned sets;
    /// system-owned sets of the type are connected automatically. An
    /// `AUTOMATIC` record-owned set *must* appear in `connects`.
    pub fn store(
        &mut self,
        rtype: &str,
        values: &[(&str, Value)],
        connects: &[(&str, RecordId)],
    ) -> DbResult<RecordId> {
        let rt = self.record_type(rtype)?.clone();
        let mut row = vec![Value::Null; rt.fields.len()];
        for (name, v) in values {
            let idx = rt
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{rtype}.{name}")))?;
            let fdef = &rt.fields[idx];
            if fdef.is_virtual() {
                return Err(DbError::VirtualWrite {
                    field: format!("{rtype}.{name}"),
                });
            }
            if !fdef.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{rtype}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), fdef.ty),
                });
            }
            row[idx] = v.clone();
        }

        // Row-level declarative constraints.
        self.check_row_constraints(rtype, &rt, &row, None)?;

        // Validate the requested connections before anything is inserted.
        let mut planned: Vec<(SetDef, RecordId)> = Vec::new();
        for (set_name, owner) in connects {
            let set = self
                .schema
                .set(set_name)
                .ok_or_else(|| DbError::unknown("set", *set_name))?
                .clone();
            if set.member != rtype {
                return Err(DbError::Membership(format!(
                    "record type {rtype} is not the member of set {set_name}"
                )));
            }
            let owner_rec = self.get(*owner)?;
            if set.owner.record_name() != Some(owner_rec.rtype.as_str()) {
                return Err(DbError::Membership(format!(
                    "record #{} of type {} cannot own set {set_name}",
                    owner.0, owner_rec.rtype
                )));
            }
            planned.push((set, *owner));
        }
        // AUTOMATIC record-owned sets must be connected at store time; an
        // Existence constraint demands connection regardless of class.
        for set in self.schema.sets_with_member(rtype) {
            if set.owner.record_name().is_none() {
                continue;
            }
            let requested = planned.iter().any(|(s, _)| s.name == set.name);
            let required =
                set.insertion == Insertion::Automatic || self.has_existence_constraint(&set.name);
            if required && !requested {
                return Err(DbError::Membership(format!(
                    "set {} requires connection at STORE time (AUTOMATIC/EXISTENCE)",
                    set.name
                )));
            }
        }

        // Pre-check occupancy rules for each planned connection.
        for (set, owner) in &planned {
            self.check_connectable(set, *owner, &rt, &row)?;
        }
        // System sets: duplicate-key check against the single occurrence.
        let system_sets: Vec<SetDef> = self
            .schema
            .system_sets_of(rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &system_sets {
            self.check_connectable(set, SYSTEM_OWNER, &rt, &row)?;
        }

        let id = RecordId(self.next_id);
        self.next_id += 1;
        self.backend_insert(StoredRecord {
            id,
            rtype: rtype.to_string(),
            values: row.clone(),
        });
        self.by_type
            .entry(rtype.to_string())
            .or_default()
            .push(id.0);
        self.index_add(rtype, &row, id.0);
        for set in &system_sets {
            self.insert_member(set, SYSTEM_OWNER, id, &rt, &row);
        }
        for (set, owner) in &planned {
            self.insert_member(set, *owner, id, &rt, &row);
        }
        // One op covers the record and its store-time links; the undo
        // tears them all down, mirroring an erase.
        self.journal.record_with(|| NetUndo::Store { id: id.0 });
        Ok(id)
    }

    /// Connect an existing record into a set occurrence (`CONNECT`).
    pub fn connect(&mut self, set_name: &str, owner: RecordId, member: RecordId) -> DbResult<()> {
        let set = self
            .schema
            .set(set_name)
            .ok_or_else(|| DbError::unknown("set", set_name))?
            .clone();
        let mem_rec = self.get(member)?;
        if set.member != mem_rec.rtype {
            return Err(DbError::Membership(format!(
                "record type {} is not the member of set {set_name}",
                mem_rec.rtype
            )));
        }
        let owner_rec = self.get(owner)?;
        if set.owner.record_name() != Some(owner_rec.rtype.as_str()) {
            return Err(DbError::Membership(format!(
                "record type {} cannot own set {set_name}",
                owner_rec.rtype
            )));
        }
        if self.sets[set_name].owner_of.contains_key(&member.0) {
            return Err(DbError::Membership(format!(
                "record #{} already connected in set {set_name}",
                member.0
            )));
        }
        let rt = self.record_type(&mem_rec.rtype)?.clone();
        self.check_connectable(&set, owner, &rt, &mem_rec.values)?;
        self.insert_member(&set, owner, member, &rt, &mem_rec.values);
        self.touch_links(member.0);
        self.journal.record_with(|| NetUndo::Link {
            set: set_name.to_string(),
            member: member.0,
        });
        Ok(())
    }

    /// Disconnect a record from a set occurrence (`DISCONNECT`).
    ///
    /// Rejected for `MANDATORY` members and for sets carrying an existence
    /// constraint; enforces a declared cardinality minimum on the owner.
    pub fn disconnect(&mut self, set_name: &str, member: RecordId) -> DbResult<()> {
        let set = self
            .schema
            .set(set_name)
            .ok_or_else(|| DbError::unknown("set", set_name))?
            .clone();
        if set.retention == Retention::Mandatory {
            return Err(DbError::Membership(format!(
                "cannot disconnect MANDATORY member from {set_name}"
            )));
        }
        if self.has_existence_constraint(set_name) {
            return Err(DbError::constraint(format!(
                "EXISTENCE ON {set_name} forbids disconnect"
            )));
        }
        let Some(store) = self.sets.get(set_name) else {
            return Err(DbError::unknown("set", set_name));
        };
        let owner = *store
            .owner_of
            .get(&member.0)
            .ok_or_else(|| DbError::Membership(format!("record not connected in {set_name}")))?;
        if let Some(min) = self.cardinality_min(set_name) {
            let count = store.occurrence_len(owner);
            if (count as u32) <= min {
                return Err(DbError::constraint(format!(
                    "cardinality minimum {min} on {set_name} would be violated"
                )));
            }
        }
        let Some(store) = self.sets.get_mut(set_name) else {
            return Err(DbError::unknown("set", set_name));
        };
        let ord = store.ord_of.get(&member.0).cloned();
        store.unlink(member.0);
        self.touch_links(member.0);
        if let Some(ord) = ord {
            self.journal.record_with(|| NetUndo::Unlink {
                set: set_name.to_string(),
                owner,
                member: member.0,
                ord,
            });
        }
        Ok(())
    }

    /// Erase a record (`ERASE` / DBTG `DELETE`).
    ///
    /// Without `cascade`, erasure fails while the record owns members —
    /// except through **characterizing** sets, whose members are deleted
    /// implicitly (Su's defined/characterizing semantics: "Deletion of an
    /// employee implies deletion of dependents"). With `cascade` (DBTG
    /// `ERASE ALL`), members of every owned set are erased recursively —
    /// which is precisely the operation §3.1 warns "may … violate the
    /// system's integrity constraints", and our engine permits it just as
    /// the 1979 systems did.
    ///
    /// Returns all erased record ids (the root first).
    pub fn erase(&mut self, id: RecordId, cascade: bool) -> DbResult<Vec<RecordId>> {
        self.get(id)?;
        let mut erased = Vec::new();
        self.erase_inner(id, cascade, &mut erased)?;
        Ok(erased)
    }

    fn erase_inner(
        &mut self,
        id: RecordId,
        cascade: bool,
        erased: &mut Vec<RecordId>,
    ) -> DbResult<()> {
        let rtype = self.get(id)?.rtype.clone();
        // Gather owned occurrences.
        let owned_sets: Vec<SetDef> = self
            .schema
            .sets_owned_by(&rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &owned_sets {
            let members: Vec<u64> = self.sets[&set.name].members_in_order(id.0);
            if members.is_empty() {
                continue;
            }
            let characterizing = self.has_characterizing_constraint(&set.name);
            if cascade || characterizing {
                for m in members {
                    // A member may already have been erased through another
                    // path in a diamond-shaped cascade.
                    if self.backend_contains(m) {
                        self.erase_inner(RecordId(m), cascade, erased)?;
                    }
                }
            } else {
                return Err(DbError::Membership(format!(
                    "record owns {} member(s) in set {}; ERASE ALL required",
                    members.len(),
                    set.name
                )));
            }
        }
        // Snapshot this record's member links for the undo journal before
        // tearing them down.
        let links: Vec<(String, u64, MemberOrd)> = if self.journal.active() {
            self.sets
                .iter()
                .filter_map(|(name, st)| {
                    let owner = *st.owner_of.get(&id.0)?;
                    let ord = st.ord_of.get(&id.0)?.clone();
                    Some((name.clone(), owner, ord))
                })
                .collect()
        } else {
            Vec::new()
        };
        // Remove from all sets in which it participates as member. (Any
        // occurrence it *owned* is empty by now: members were either erased
        // above or their presence aborted the operation.)
        for store in self.sets.values_mut() {
            store.unlink(id.0);
            store.members.remove(&id.0);
        }
        let Some(rec) = self.backend_remove(id.0) else {
            return Err(DbError::NotFound(format!("record #{}", id.0)));
        };
        if let Some(ids) = self.by_type.get_mut(&rec.rtype) {
            if let Ok(pos) = ids.binary_search(&id.0) {
                ids.remove(pos);
            }
        }
        self.index_remove(&rec.rtype, &rec.values, id.0);
        self.journal.record_with(|| NetUndo::Erase { rec, links });
        erased.push(id);
        Ok(())
    }

    /// Modify stored fields of a record (`MODIFY`). Re-sorts the record
    /// within any set occurrence whose keys it changes.
    pub fn modify(&mut self, id: RecordId, assigns: &[(&str, Value)]) -> DbResult<()> {
        let rec = self.get(id)?;
        let rt = self.record_type(&rec.rtype)?.clone();
        let mut new_row = rec.values.clone();
        for (name, v) in assigns {
            let idx = rt
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{}.{}", rec.rtype, name)))?;
            let fdef = &rt.fields[idx];
            if fdef.is_virtual() {
                return Err(DbError::VirtualWrite {
                    field: format!("{}.{}", rec.rtype, name),
                });
            }
            if !fdef.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{}.{}", rec.rtype, name),
                    detail: format!("{} does not fit {}", v.type_name(), fdef.ty),
                });
            }
            new_row[idx] = v.clone();
        }
        self.check_row_constraints(&rec.rtype, &rt, &new_row, Some(id))?;

        // Which sets' key tuples change?
        let member_sets: Vec<SetDef> = self
            .schema
            .sets_with_member(&rec.rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &member_sets {
            if set.keys.is_empty() {
                continue;
            }
            let old_key = key_tuple(&rt, &rec.values, &set.keys);
            let new_key = key_tuple(&rt, &new_row, &set.keys);
            if old_key == new_key {
                continue;
            }
            if let Some(&owner) = self.sets[&set.name].owner_of.get(&id.0) {
                // Duplicate check against siblings: a single ordered-map
                // probe. The record itself cannot collide — its old key
                // differs from `new_key`.
                let dup = self.sets[&set.name].contains_key_under(owner, &new_key);
                self.stats.probed(dup);
                if dup {
                    return Err(DbError::Duplicate {
                        scope: format!("set {}", set.name),
                        key: format!("{:?}", new_key.0),
                    });
                }
            }
        }
        // Commit the new values, then reposition.
        if !self.backend_set_values(id.0, new_row.clone()) {
            return Err(DbError::NotFound(format!("record #{}", id.0)));
        }
        self.index_update(&rec.rtype, &rec.values, &new_row, id.0);
        self.journal.record_with(|| NetUndo::Values {
            id: id.0,
            values: rec.values.clone(),
        });
        for set in &member_sets {
            if set.keys.is_empty() {
                continue;
            }
            let old_key = key_tuple(&rt, &rec.values, &set.keys);
            let new_key = key_tuple(&rt, &new_row, &set.keys);
            if old_key == new_key {
                continue;
            }
            let Some(store) = self.sets.get_mut(&set.name) else {
                continue;
            };
            let old_ord = store.ord_of.get(&id.0).cloned();
            if let Some(owner) = store.unlink(id.0) {
                store.link(owner, id.0, new_key);
                if let Some(ord) = old_ord {
                    // LIFO: undo the relink first, then restore the old
                    // position — journal the pair in operation order.
                    self.journal.record_with(|| NetUndo::Unlink {
                        set: set.name.clone(),
                        owner,
                        member: id.0,
                        ord,
                    });
                    self.journal.record_with(|| NetUndo::Link {
                        set: set.name.clone(),
                        member: id.0,
                    });
                }
            }
            // Repositioning drew a fresh arrival sequence; the persisted
            // link section is refreshed at the next sync.
            self.touch_links(id.0);
        }
        Ok(())
    }

    // -- internals ---------------------------------------------------------

    fn record_type(&self, rtype: &str) -> DbResult<&RecordTypeDef> {
        self.schema
            .record(rtype)
            .ok_or_else(|| DbError::unknown("record", rtype))
    }

    fn has_existence_constraint(&self, set: &str) -> bool {
        self.schema
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Existence { set: s } if s == set))
    }

    fn has_characterizing_constraint(&self, set: &str) -> bool {
        self.schema
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Characterizing { set: s } if s == set))
    }

    fn cardinality_max(&self, set: &str) -> Option<u32> {
        self.schema.constraints.iter().find_map(|c| match c {
            Constraint::Cardinality {
                set: s,
                max: Some(m),
                ..
            } if s == set => Some(*m),
            _ => None,
        })
    }

    fn cardinality_min(&self, set: &str) -> Option<u32> {
        self.schema.constraints.iter().find_map(|c| match c {
            Constraint::Cardinality { set: s, min, .. } if s == set && *min > 0 => Some(*min),
            _ => None,
        })
    }

    /// Not-null / domain / uniqueness checks for a prospective row.
    fn check_row_constraints(
        &self,
        rtype: &str,
        rt: &RecordTypeDef,
        row: &[Value],
        exclude: Option<RecordId>,
    ) -> DbResult<()> {
        for c in &self.schema.constraints {
            match c {
                Constraint::NotNull { record, field } if record == rtype => {
                    let Some(idx) = rt.field_index(field) else {
                        continue;
                    };
                    if row[idx].is_null() {
                        return Err(DbError::constraint(format!("NOT NULL {record}.{field}")));
                    }
                }
                Constraint::Domain {
                    record,
                    field,
                    low,
                    high,
                } if record == rtype => {
                    let Some(idx) = rt.field_index(field) else {
                        continue;
                    };
                    let v = &row[idx];
                    if v.is_null() {
                        continue;
                    }
                    if let Some(l) = low {
                        if v.total_cmp(l) == std::cmp::Ordering::Less {
                            return Err(DbError::constraint(format!(
                                "DOMAIN {record}.{field}: {v} below {l}"
                            )));
                        }
                    }
                    if let Some(h) = high {
                        if v.total_cmp(h) == std::cmp::Ordering::Greater {
                            return Err(DbError::constraint(format!(
                                "DOMAIN {record}.{field}: {v} above {h}"
                            )));
                        }
                    }
                }
                Constraint::Unique { record, fields } if record == rtype => {
                    let idxs: Vec<usize> =
                        fields.iter().filter_map(|f| rt.field_index(f)).collect();
                    let key: Vec<&Value> = idxs.iter().map(|&i| &row[i]).collect();
                    // Scan only this type's records (via `by_type`), not
                    // the whole store — on a paged backend the full scan
                    // would fault every record's page in.
                    let ids = self
                        .by_type
                        .get(rtype)
                        .map(Vec::as_slice)
                        .unwrap_or_default();
                    for &oid in ids {
                        if Some(RecordId(oid)) == exclude {
                            continue;
                        }
                        let dup = self
                            .with_rec(oid, |other| {
                                idxs.iter()
                                    .zip(&key)
                                    .all(|(&i, k)| other.values[i].loose_eq(k))
                            })
                            .unwrap_or(false);
                        if dup {
                            return Err(DbError::Duplicate {
                                scope: format!("record {record}"),
                                key: fields.join(","),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Key tuple of a member already stored in the database.
    fn member_key(&self, member: u64, keys: &[String]) -> KeyTuple {
        self.with_rec(member, |mrec| match self.schema.record(&mrec.rtype) {
            Some(mrt) => key_tuple(mrt, &mrec.values, keys),
            None => KeyTuple(Vec::new()),
        })
        .unwrap_or_else(|| panic!("member #{member} missing from the record store"))
    }

    /// Can a record with values `row` be connected under `owner` in `set`?
    /// Checks cardinality maxima and duplicate set keys (one ordered-map
    /// probe into the occurrence).
    fn check_connectable(
        &self,
        set: &SetDef,
        owner: RecordId,
        rt: &RecordTypeDef,
        row: &[Value],
    ) -> DbResult<()> {
        let store = &self.sets[&set.name];
        if let Some(max) = self.cardinality_max(&set.name) {
            if store.occurrence_len(owner.0) as u32 >= max {
                return Err(DbError::constraint(format!(
                    "cardinality maximum {max} on {} reached",
                    set.name
                )));
            }
        }
        if !set.keys.is_empty() {
            let key = key_tuple(rt, row, &set.keys);
            let dup = store.contains_key_under(owner.0, &key);
            self.stats.probed(dup);
            if dup {
                return Err(DbError::Duplicate {
                    scope: format!("set {}", set.name),
                    key: format!("{:?}", key.0),
                });
            }
        }
        Ok(())
    }

    /// Link a member into its occurrence; the ordered map places it at its
    /// key position (keyed sets) or at the chronological end (keyless).
    fn insert_member(
        &mut self,
        set: &SetDef,
        owner: RecordId,
        member: RecordId,
        rt: &RecordTypeDef,
        row: &[Value],
    ) {
        let key = if set.keys.is_empty() {
            KeyTuple(Vec::new())
        } else {
            key_tuple(rt, row, &set.keys)
        };
        if let Some(store) = self.sets.get_mut(&set.name) {
            store.link(owner.0, member.0, key);
        }
    }

    // -- calc-key index maintenance ----------------------------------------

    /// Key tuple of `row` for an indexed field list (stored fields only).
    /// Index creation guarantees the type and fields exist; the fallbacks
    /// keep this total for the unwrap-free lib gate.
    fn calc_key(schema: &NetworkSchema, rtype: &str, fields: &[String], row: &[Value]) -> KeyTuple {
        let Some(rt) = schema.record(rtype) else {
            return KeyTuple(Vec::new());
        };
        KeyTuple(
            fields
                .iter()
                .map(|f| {
                    rt.field_index(f)
                        .and_then(|i| row.get(i))
                        .cloned()
                        .unwrap_or(Value::Null)
                })
                .collect(),
        )
    }

    fn index_add(&mut self, rtype: &str, row: &[Value], id: u64) {
        let schema = &self.schema;
        for ((rt_name, fields), map) in self.calc_indexes.get_mut().iter_mut() {
            if rt_name != rtype {
                continue;
            }
            let key = Self::calc_key(schema, rtype, fields, row);
            let ids = map.entry(key).or_default();
            let pos = ids.partition_point(|&m| m < id);
            ids.insert(pos, id);
        }
    }

    fn index_remove(&mut self, rtype: &str, row: &[Value], id: u64) {
        let schema = &self.schema;
        for ((rt_name, fields), map) in self.calc_indexes.get_mut().iter_mut() {
            if rt_name != rtype {
                continue;
            }
            let key = Self::calc_key(schema, rtype, fields, row);
            if let Some(ids) = map.get_mut(&key) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    fn index_update(&mut self, rtype: &str, old_row: &[Value], new_row: &[Value], id: u64) {
        self.index_remove(rtype, old_row, id);
        self.index_add(rtype, new_row, id);
    }

    /// Verify every derived access structure against a from-scratch
    /// rebuild: the per-type record lists, each set store's ordering and
    /// reverse maps, and every materialized calc-key index. Used by the
    /// storage-invariant property tests.
    pub fn check_access_structures(&self) -> Result<(), String> {
        // Per-type record lists ↔ the record store.
        let mut want_types: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        self.for_each_rec(&mut |rec| {
            want_types
                .entry(rec.rtype.clone())
                .or_default()
                .push(rec.id.0);
        });
        for (rtype, ids) in &self.by_type {
            let want = want_types.remove(rtype).unwrap_or_default();
            if *ids != want {
                return Err(format!("by_type[{rtype}] = {ids:?}, want {want:?}"));
            }
        }
        if let Some((rtype, _)) = want_types.into_iter().next() {
            return Err(format!("by_type missing entry for {rtype}"));
        }

        // Set stores: members ↔ owner_of ↔ ord_of, plus key correctness.
        for (name, store) in &self.sets {
            let Some(set) = self.schema.set(name) else {
                return Err(format!("set {name} stored but not in schema"));
            };
            let mut linked = 0usize;
            for (&owner, occ) in &store.members {
                if occ.is_empty() {
                    return Err(format!("set {name}: empty occurrence kept for #{owner}"));
                }
                for (ord, &member) in occ {
                    linked += 1;
                    if store.owner_of.get(&member) != Some(&owner) {
                        return Err(format!("set {name}: owner_of[#{member}] ≠ #{owner}"));
                    }
                    if store.ord_of.get(&member) != Some(ord) {
                        return Err(format!("set {name}: ord_of[#{member}] stale"));
                    }
                    let want_key = if set.keys.is_empty() {
                        KeyTuple(Vec::new())
                    } else {
                        self.member_key(member, &set.keys)
                    };
                    if ord.0 != want_key {
                        return Err(format!(
                            "set {name}: #{member} filed under {:?}, want {:?}",
                            ord.0, want_key.0
                        ));
                    }
                }
            }
            if store.owner_of.len() != linked || store.ord_of.len() != linked {
                return Err(format!(
                    "set {name}: {} owner_of / {} ord_of entries for {linked} links",
                    store.owner_of.len(),
                    store.ord_of.len()
                ));
            }
        }

        // Calc-key indexes ↔ a fresh rebuild over the record heap.
        for ((rtype, fields), map) in self.calc_indexes.borrow().iter() {
            let mut want: BTreeMap<KeyTuple, Vec<u64>> = BTreeMap::new();
            self.for_each_rec(&mut |rec| {
                if rec.rtype == *rtype {
                    want.entry(Self::calc_key(&self.schema, rtype, fields, &rec.values))
                        .or_default()
                        .push(rec.id.0);
                }
            });
            if *map != want {
                return Err(format!(
                    "calc index ({rtype}, {fields:?}) diverged from rebuild"
                ));
            }
        }
        Ok(())
    }
}

fn key_tuple(rt: &RecordTypeDef, row: &[Value], keys: &[String]) -> KeyTuple {
    KeyTuple(
        keys.iter()
            .map(|k| {
                rt.field_index(k)
                    .and_then(|i| row.get(i))
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, SetDef};
    use dbpc_datamodel::types::FieldType;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> (NetworkDb, RecordId, RecordId) {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        let sales = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("AEROSPACE")),
                    ("DIV-LOC", Value::str("SEATTLE")),
                ],
                &[],
            )
            .unwrap();
        (db, mach, sales)
    }

    #[test]
    fn system_set_orders_by_keys() {
        let (db, mach, aero) = company_db();
        // AEROSPACE < MACHINERY alphabetically even though stored later.
        let order = db.members_of("ALL-DIV", SYSTEM_OWNER).unwrap();
        assert_eq!(order, vec![aero, mach]);
    }

    #[test]
    fn store_and_read_member_with_virtual_field() {
        let (mut db, mach, _) = company_db();
        let e = db
            .store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str("JONES")),
                    ("DEPT-NAME", Value::str("SALES")),
                    ("AGE", Value::Int(34)),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert_eq!(
            db.field_value(e, "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
        assert_eq!(db.field_value(e, "AGE").unwrap(), Value::Int(34));
        assert_eq!(db.owner_in("DIV-EMP", e).unwrap(), Some(mach));
    }

    #[test]
    fn automatic_set_requires_connection() {
        let (mut db, _, _) = company_db();
        let err = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .unwrap_err();
        assert!(matches!(err, DbError::Membership(_)));
    }

    #[test]
    fn manual_set_allows_deferred_connect() {
        let mut schema = company_schema();
        schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        let e = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .unwrap();
        assert_eq!(db.field_value(e, "DIV-NAME").unwrap(), Value::Null);
        db.connect("DIV-EMP", d, e).unwrap();
        assert_eq!(db.field_value(e, "DIV-NAME").unwrap(), Value::str("M"));
    }

    #[test]
    fn duplicate_set_key_rejected() {
        let (mut db, mach, _) = company_db();
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("JONES"))],
            &[("DIV-EMP", mach)],
        )
        .unwrap();
        let err = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("JONES"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Duplicate { .. }));
    }

    #[test]
    fn members_kept_in_key_order_under_modify() {
        let (mut db, mach, _) = company_db();
        let a = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("ADAMS"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        let z = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("ZOLA"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![a, z]);
        // Rename ADAMS → ZZTOP: must move after ZOLA.
        db.modify(a, &[("EMP-NAME", Value::str("ZZTOP"))]).unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![z, a]);
    }

    #[test]
    fn mandatory_member_cannot_disconnect() {
        let mut schema = company_schema();
        schema.set_mut("DIV-EMP").unwrap().retention = Retention::Mandatory;
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        let e = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d)])
            .unwrap();
        assert!(db.disconnect("DIV-EMP", e).is_err());
    }

    #[test]
    fn erase_requires_cascade_when_members_exist() {
        let (mut db, mach, _) = company_db();
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("X"))],
            &[("DIV-EMP", mach)],
        )
        .unwrap();
        assert!(db.erase(mach, false).is_err());
        let erased = db.erase(mach, true).unwrap();
        assert_eq!(erased.len(), 2);
        assert_eq!(db.records_of_type("EMP").len(), 0);
    }

    #[test]
    fn characterizing_set_cascades_implicitly() {
        let schema = company_schema().with_constraint(Constraint::Characterizing {
            set: "DIV-EMP".into(),
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        db.store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d)])
            .unwrap();
        // Plain erase cascades because EMP characterizes DIV.
        let erased = db.erase(d, false).unwrap();
        assert_eq!(erased.len(), 2);
    }

    #[test]
    fn cardinality_max_enforced() {
        let schema = company_schema().with_constraint(Constraint::Cardinality {
            set: "DIV-EMP".into(),
            min: 0,
            max: Some(2),
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        for name in ["A", "B"] {
            db.store("EMP", &[("EMP-NAME", Value::str(name))], &[("DIV-EMP", d)])
                .unwrap();
        }
        let err = db
            .store("EMP", &[("EMP-NAME", Value::str("C"))], &[("DIV-EMP", d)])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint { .. }));
    }

    #[test]
    fn not_null_and_domain_enforced() {
        let schema = company_schema()
            .with_constraint(Constraint::NotNull {
                record: "EMP".into(),
                field: "EMP-NAME".into(),
            })
            .with_constraint(Constraint::Domain {
                record: "EMP".into(),
                field: "AGE".into(),
                low: Some(Value::Int(14)),
                high: Some(Value::Int(99)),
            });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        assert!(db.store("EMP", &[], &[("DIV-EMP", d)]).is_err()); // null name
        let err = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("K")), ("AGE", Value::Int(7))],
                &[("DIV-EMP", d)],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint { .. }));
    }

    #[test]
    fn unique_constraint_enforced_across_occurrences() {
        let schema = company_schema().with_constraint(Constraint::Unique {
            record: "EMP".into(),
            fields: vec!["EMP-NAME".into()],
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d1 = db
            .store("DIV", &[("DIV-NAME", Value::str("A"))], &[])
            .unwrap();
        let d2 = db
            .store("DIV", &[("DIV-NAME", Value::str("B"))], &[])
            .unwrap();
        db.store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d1)])
            .unwrap();
        // Same name under a *different* division: set-key check passes but
        // the global uniqueness constraint must reject it.
        assert!(db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d2)])
            .is_err());
    }

    #[test]
    fn type_checks_on_store_and_modify() {
        let (mut db, mach, _) = company_db();
        assert!(matches!(
            db.store(
                "EMP",
                &[("AGE", Value::str("OLD")), ("EMP-NAME", Value::str("E"))],
                &[("DIV-EMP", mach)],
            ),
            Err(DbError::TypeMismatch { .. })
        ));
        let e = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("E"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert!(matches!(
            db.modify(e, &[("AGE", Value::str("OLD"))]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.modify(e, &[("DIV-NAME", Value::str("HACK"))]),
            Err(DbError::VirtualWrite { .. })
        ));
    }

    #[test]
    fn membership_maps_stay_consistent_through_mutations() {
        let (mut db, mach, aero) = company_db();
        let a = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("ADAMS"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        let b = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("BLAKE"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        db.check_access_structures().unwrap();
        // Reposition under the same owner, then move divisions.
        db.modify(a, &[("EMP-NAME", Value::str("CLARK"))]).unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![b, a]);
        db.check_access_structures().unwrap();
        db.disconnect("DIV-EMP", a).unwrap();
        db.connect("DIV-EMP", aero, a).unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![b]);
        assert_eq!(db.members_of("DIV-EMP", aero).unwrap(), vec![a]);
        db.check_access_structures().unwrap();
        db.erase(b, false).unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![]);
        db.check_access_structures().unwrap();
    }

    #[test]
    fn find_keyed_matches_scan_and_survives_mutations() {
        let (mut db, mach, _) = company_db();
        for name in ["JONES", "SMITH", "ADAMS"] {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(name)),
                    ("DEPT-NAME", Value::str("SALES")),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        }
        let probe = |db: &NetworkDb, name: &str| {
            db.find_keyed("EMP", &["EMP-NAME"], &[Value::str(name)])
                .unwrap()
                .expect("stored field is indexable")
        };
        let smith = probe(&db, "SMITH");
        assert_eq!(smith.len(), 1);
        // Index answers must equal the scan-and-filter answer, in order.
        let scan: Vec<RecordId> = db
            .records_of_type("EMP")
            .into_iter()
            .filter(|&id| db.field_value(id, "EMP-NAME").unwrap() == Value::str("SMITH"))
            .collect();
        assert_eq!(smith, scan);
        let before = db.access_stats().snapshot();
        assert!(before.index_probes > 0 && before.index_hits > 0);
        db.check_access_structures().unwrap();
        // The lazily-built index must track later mutations.
        db.modify(smith[0], &[("EMP-NAME", Value::str("SMYTHE"))])
            .unwrap();
        assert!(probe(&db, "SMITH").is_empty());
        assert_eq!(probe(&db, "SMYTHE"), smith);
        db.erase(smith[0], false).unwrap();
        assert!(probe(&db, "SMYTHE").is_empty());
        db.check_access_structures().unwrap();
        // Virtual fields are not indexable: caller must fall back to scan.
        assert_eq!(
            db.find_keyed("EMP", &["DIV-NAME"], &[Value::str("MACHINERY")])
                .unwrap(),
            None
        );
    }

    #[test]
    fn existence_constraint_blocks_manual_orphan() {
        let mut schema = company_schema().with_constraint(Constraint::Existence {
            set: "DIV-EMP".into(),
        });
        schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
        let mut db = NetworkDb::new(schema).unwrap();
        // Even though the set is MANUAL, the EXISTENCE constraint requires a
        // connection at store time.
        assert!(db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .is_err());
    }
}
