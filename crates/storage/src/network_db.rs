//! The owner-coupled-set storage engine.
//!
//! Implements the operational semantics the paper's §3.1 and §4.2 rely on:
//!
//! * **ordered set occurrences** — members of each set occurrence are kept
//!   sorted by the declared `SET KEYS`, with duplicates rejected ("Duplicates
//!   are not allowed within a set occurrence", §4.2); keyless sets preserve
//!   insertion (chronological) order;
//! * **insertion classes** — storing a record that is an `AUTOMATIC` member
//!   of a set requires a connection at STORE time; `MANUAL` membership is
//!   established later via `CONNECT`;
//! * **retention classes** — a `MANDATORY` member cannot be disconnected,
//!   reproducing the existence-constraint mechanism of §3.1;
//! * **virtual fields** — reads resolve through the owning record
//!   (`VIRTUAL VIA set USING field`), writes are rejected;
//! * **declarative constraints** — the §3.1 catalogue (existence,
//!   characterizing/cascade, cardinality limits, not-null, uniqueness,
//!   domain) is enforced on every mutation, so moving a constraint between
//!   program logic and the schema is observable.

use crate::error::{DbError, DbResult};
use crate::keys::KeyTuple;
use dbpc_datamodel::constraint::Constraint;
use dbpc_datamodel::network::{Insertion, NetworkSchema, RecordTypeDef, Retention, SetDef};
use dbpc_datamodel::value::Value;
use std::collections::BTreeMap;

/// Identifier of a stored record. `RecordId(0)` is the SYSTEM pseudo-owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

/// Owner id used for occurrences of system-owned sets.
pub const SYSTEM_OWNER: RecordId = RecordId(0);

/// A stored record occurrence. `values` is parallel to the record type's
/// full field list; virtual-field slots hold `Null` and are resolved on
/// read.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    pub id: RecordId,
    pub rtype: String,
    pub values: Vec<Value>,
}

/// Storage for one set type: per-owner ordered member lists plus the
/// member→owner index.
#[derive(Debug, Clone, Default)]
struct SetStore {
    members: BTreeMap<u64, Vec<u64>>,
    owner_of: BTreeMap<u64, u64>,
}

/// An owner-coupled-set database instance.
#[derive(Debug, Clone)]
pub struct NetworkDb {
    schema: NetworkSchema,
    records: BTreeMap<u64, StoredRecord>,
    sets: BTreeMap<String, SetStore>,
    next_id: u64,
}

impl NetworkDb {
    /// Create an empty database for a (validated) schema.
    pub fn new(schema: NetworkSchema) -> DbResult<NetworkDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        let sets = schema
            .sets
            .iter()
            .map(|s| (s.name.clone(), SetStore::default()))
            .collect();
        Ok(NetworkDb {
            schema,
            records: BTreeMap::new(),
            sets,
            next_id: 1,
        })
    }

    pub fn schema(&self) -> &NetworkSchema {
        &self.schema
    }

    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Fetch a record.
    pub fn get(&self, id: RecordId) -> DbResult<&StoredRecord> {
        self.records
            .get(&id.0)
            .ok_or_else(|| DbError::NotFound(format!("record #{}", id.0)))
    }

    /// All record ids of a type, in creation order (deterministic).
    pub fn records_of_type(&self, rtype: &str) -> Vec<RecordId> {
        self.records
            .values()
            .filter(|r| r.rtype == rtype)
            .map(|r| r.id)
            .collect()
    }

    /// Members of a set occurrence, in set-key order.
    pub fn members_of(&self, set: &str, owner: RecordId) -> DbResult<Vec<RecordId>> {
        let store = self
            .sets
            .get(set)
            .ok_or_else(|| DbError::unknown("set", set))?;
        Ok(store
            .members
            .get(&owner.0)
            .map(|v| v.iter().map(|&i| RecordId(i)).collect())
            .unwrap_or_default())
    }

    /// The owner of `member` in `set`, if connected.
    pub fn owner_in(&self, set: &str, member: RecordId) -> DbResult<Option<RecordId>> {
        let store = self
            .sets
            .get(set)
            .ok_or_else(|| DbError::unknown("set", set))?;
        Ok(store.owner_of.get(&member.0).map(|&i| RecordId(i)))
    }

    /// Read a field, resolving virtual fields through the owner. A virtual
    /// field of a disconnected member reads as `Null` (the "null instructor"
    /// device of §3.1).
    pub fn field_value(&self, id: RecordId, field: &str) -> DbResult<Value> {
        let rec = self.get(id)?;
        let rt = self.record_type(&rec.rtype)?;
        let idx = rt
            .field_index(field)
            .ok_or_else(|| DbError::unknown("field", format!("{}.{}", rec.rtype, field)))?;
        let fdef = &rt.fields[idx];
        match &fdef.virtual_via {
            None => Ok(rec.values[idx].clone()),
            Some(v) => match self.owner_in(&v.set, id)? {
                None => Ok(Value::Null),
                Some(owner) => self.field_value(owner, &v.source_field),
            },
        }
    }

    /// All field values of a record in declaration order, virtuals resolved.
    pub fn resolved_values(&self, id: RecordId) -> DbResult<Vec<Value>> {
        let rec = self.get(id)?;
        let rt = self.record_type(&rec.rtype)?.clone();
        rt.fields
            .iter()
            .map(|f| self.field_value(id, &f.name))
            .collect()
    }

    // -- mutation ----------------------------------------------------------

    /// Store a new record.
    ///
    /// `values` gives stored (non-virtual) fields; omitted fields default to
    /// `Null`. `connects` names the owner occurrence for record-owned sets;
    /// system-owned sets of the type are connected automatically. An
    /// `AUTOMATIC` record-owned set *must* appear in `connects`.
    pub fn store(
        &mut self,
        rtype: &str,
        values: &[(&str, Value)],
        connects: &[(&str, RecordId)],
    ) -> DbResult<RecordId> {
        let rt = self.record_type(rtype)?.clone();
        let mut row = vec![Value::Null; rt.fields.len()];
        for (name, v) in values {
            let idx = rt
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{rtype}.{name}")))?;
            let fdef = &rt.fields[idx];
            if fdef.is_virtual() {
                return Err(DbError::VirtualWrite {
                    field: format!("{rtype}.{name}"),
                });
            }
            if !fdef.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{rtype}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), fdef.ty),
                });
            }
            row[idx] = v.clone();
        }

        // Row-level declarative constraints.
        self.check_row_constraints(rtype, &rt, &row, None)?;

        // Validate the requested connections before anything is inserted.
        let mut planned: Vec<(SetDef, RecordId)> = Vec::new();
        for (set_name, owner) in connects {
            let set = self
                .schema
                .set(set_name)
                .ok_or_else(|| DbError::unknown("set", *set_name))?
                .clone();
            if set.member != rtype {
                return Err(DbError::Membership(format!(
                    "record type {rtype} is not the member of set {set_name}"
                )));
            }
            let owner_rec = self.get(*owner)?;
            if set.owner.record_name() != Some(owner_rec.rtype.as_str()) {
                return Err(DbError::Membership(format!(
                    "record #{} of type {} cannot own set {set_name}",
                    owner.0, owner_rec.rtype
                )));
            }
            planned.push((set, *owner));
        }
        // AUTOMATIC record-owned sets must be connected at store time; an
        // Existence constraint demands connection regardless of class.
        for set in self.schema.sets_with_member(rtype) {
            if set.owner.record_name().is_none() {
                continue;
            }
            let requested = planned.iter().any(|(s, _)| s.name == set.name);
            let required = set.insertion == Insertion::Automatic
                || self.has_existence_constraint(&set.name);
            if required && !requested {
                return Err(DbError::Membership(format!(
                    "set {} requires connection at STORE time (AUTOMATIC/EXISTENCE)",
                    set.name
                )));
            }
        }

        // Pre-check occupancy rules for each planned connection.
        for (set, owner) in &planned {
            self.check_connectable(set, *owner, &rt, &row)?;
        }
        // System sets: duplicate-key check against the single occurrence.
        let system_sets: Vec<SetDef> = self
            .schema
            .system_sets_of(rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &system_sets {
            self.check_connectable(set, SYSTEM_OWNER, &rt, &row)?;
        }

        let id = RecordId(self.next_id);
        self.next_id += 1;
        self.records.insert(
            id.0,
            StoredRecord {
                id,
                rtype: rtype.to_string(),
                values: row.clone(),
            },
        );
        for set in &system_sets {
            self.insert_member(set, SYSTEM_OWNER, id, &rt, &row);
        }
        for (set, owner) in &planned {
            self.insert_member(set, *owner, id, &rt, &row);
        }
        Ok(id)
    }

    /// Connect an existing record into a set occurrence (`CONNECT`).
    pub fn connect(&mut self, set_name: &str, owner: RecordId, member: RecordId) -> DbResult<()> {
        let set = self
            .schema
            .set(set_name)
            .ok_or_else(|| DbError::unknown("set", set_name))?
            .clone();
        let mem_rec = self.get(member)?.clone();
        if set.member != mem_rec.rtype {
            return Err(DbError::Membership(format!(
                "record type {} is not the member of set {set_name}",
                mem_rec.rtype
            )));
        }
        let owner_rec = self.get(owner)?;
        if set.owner.record_name() != Some(owner_rec.rtype.as_str()) {
            return Err(DbError::Membership(format!(
                "record type {} cannot own set {set_name}",
                owner_rec.rtype
            )));
        }
        if self.sets[set_name].owner_of.contains_key(&member.0) {
            return Err(DbError::Membership(format!(
                "record #{} already connected in set {set_name}",
                member.0
            )));
        }
        let rt = self.record_type(&mem_rec.rtype)?.clone();
        self.check_connectable(&set, owner, &rt, &mem_rec.values)?;
        self.insert_member(&set, owner, member, &rt, &mem_rec.values);
        Ok(())
    }

    /// Disconnect a record from a set occurrence (`DISCONNECT`).
    ///
    /// Rejected for `MANDATORY` members and for sets carrying an existence
    /// constraint; enforces a declared cardinality minimum on the owner.
    pub fn disconnect(&mut self, set_name: &str, member: RecordId) -> DbResult<()> {
        let set = self
            .schema
            .set(set_name)
            .ok_or_else(|| DbError::unknown("set", set_name))?
            .clone();
        if set.retention == Retention::Mandatory {
            return Err(DbError::Membership(format!(
                "cannot disconnect MANDATORY member from {set_name}"
            )));
        }
        if self.has_existence_constraint(set_name) {
            return Err(DbError::constraint(format!(
                "EXISTENCE ON {set_name} forbids disconnect"
            )));
        }
        let store = self.sets.get(set_name).unwrap();
        let owner = *store
            .owner_of
            .get(&member.0)
            .ok_or_else(|| DbError::Membership(format!("record not connected in {set_name}")))?;
        if let Some(min) = self.cardinality_min(set_name) {
            let count = store.members.get(&owner).map(|v| v.len()).unwrap_or(0);
            if (count as u32) <= min {
                return Err(DbError::constraint(format!(
                    "cardinality minimum {min} on {set_name} would be violated"
                )));
            }
        }
        let store = self.sets.get_mut(set_name).unwrap();
        store.owner_of.remove(&member.0);
        if let Some(v) = store.members.get_mut(&owner) {
            v.retain(|&m| m != member.0);
        }
        Ok(())
    }

    /// Erase a record (`ERASE` / DBTG `DELETE`).
    ///
    /// Without `cascade`, erasure fails while the record owns members —
    /// except through **characterizing** sets, whose members are deleted
    /// implicitly (Su's defined/characterizing semantics: "Deletion of an
    /// employee implies deletion of dependents"). With `cascade` (DBTG
    /// `ERASE ALL`), members of every owned set are erased recursively —
    /// which is precisely the operation §3.1 warns "may … violate the
    /// system's integrity constraints", and our engine permits it just as
    /// the 1979 systems did.
    ///
    /// Returns all erased record ids (the root first).
    pub fn erase(&mut self, id: RecordId, cascade: bool) -> DbResult<Vec<RecordId>> {
        self.get(id)?;
        let mut erased = Vec::new();
        self.erase_inner(id, cascade, &mut erased)?;
        Ok(erased)
    }

    fn erase_inner(
        &mut self,
        id: RecordId,
        cascade: bool,
        erased: &mut Vec<RecordId>,
    ) -> DbResult<()> {
        let rtype = self.get(id)?.rtype.clone();
        // Gather owned occurrences.
        let owned_sets: Vec<SetDef> = self
            .schema
            .sets_owned_by(&rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &owned_sets {
            let members: Vec<u64> = self.sets[&set.name]
                .members
                .get(&id.0)
                .cloned()
                .unwrap_or_default();
            if members.is_empty() {
                continue;
            }
            let characterizing = self.has_characterizing_constraint(&set.name);
            if cascade || characterizing {
                for m in members {
                    // A member may already have been erased through another
                    // path in a diamond-shaped cascade.
                    if self.records.contains_key(&m) {
                        self.erase_inner(RecordId(m), cascade, erased)?;
                    }
                }
            } else {
                return Err(DbError::Membership(format!(
                    "record owns {} member(s) in set {}; ERASE ALL required",
                    members.len(),
                    set.name
                )));
            }
        }
        // Remove from all sets in which it participates as member.
        for store in self.sets.values_mut() {
            if let Some(owner) = store.owner_of.remove(&id.0) {
                if let Some(v) = store.members.get_mut(&owner) {
                    v.retain(|&m| m != id.0);
                }
            }
            store.members.remove(&id.0);
        }
        self.records.remove(&id.0);
        erased.push(id);
        Ok(())
    }

    /// Modify stored fields of a record (`MODIFY`). Re-sorts the record
    /// within any set occurrence whose keys it changes.
    pub fn modify(&mut self, id: RecordId, assigns: &[(&str, Value)]) -> DbResult<()> {
        let rec = self.get(id)?.clone();
        let rt = self.record_type(&rec.rtype)?.clone();
        let mut new_row = rec.values.clone();
        for (name, v) in assigns {
            let idx = rt
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{}.{}", rec.rtype, name)))?;
            let fdef = &rt.fields[idx];
            if fdef.is_virtual() {
                return Err(DbError::VirtualWrite {
                    field: format!("{}.{}", rec.rtype, name),
                });
            }
            if !fdef.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{}.{}", rec.rtype, name),
                    detail: format!("{} does not fit {}", v.type_name(), fdef.ty),
                });
            }
            new_row[idx] = v.clone();
        }
        self.check_row_constraints(&rec.rtype, &rt, &new_row, Some(id))?;

        // Which sets' key tuples change?
        let member_sets: Vec<SetDef> = self
            .schema
            .sets_with_member(&rec.rtype)
            .into_iter()
            .cloned()
            .collect();
        for set in &member_sets {
            if set.keys.is_empty() {
                continue;
            }
            let old_key = key_tuple(&rt, &rec.values, &set.keys);
            let new_key = key_tuple(&rt, &new_row, &set.keys);
            if old_key == new_key {
                continue;
            }
            if let Some(&owner) = self.sets[&set.name].owner_of.get(&id.0) {
                // Duplicate check against siblings.
                let siblings = self.sets[&set.name].members.get(&owner).unwrap().clone();
                for sib in &siblings {
                    if *sib == id.0 {
                        continue;
                    }
                    let sib_rec = &self.records[sib];
                    if key_tuple(&rt, &sib_rec.values, &set.keys) == new_key {
                        return Err(DbError::Duplicate {
                            scope: format!("set {}", set.name),
                            key: format!("{:?}", new_key.0),
                        });
                    }
                }
            }
        }
        // Commit the new values, then reposition.
        self.records.get_mut(&id.0).unwrap().values = new_row.clone();
        for set in &member_sets {
            if set.keys.is_empty() {
                continue;
            }
            let owner = match self.sets[&set.name].owner_of.get(&id.0) {
                Some(&o) => o,
                None => continue,
            };
            let store = self.sets.get_mut(&set.name).unwrap();
            let v = store.members.get_mut(&owner).unwrap();
            v.retain(|&m| m != id.0);
            // Re-insert in key order.
            let pos = {
                let target = key_tuple(&rt, &new_row, &set.keys);
                v.partition_point(|m| {
                    let mrec = &self.records[m];
                    let mrt = self.schema.record(&mrec.rtype).unwrap();
                    key_tuple(mrt, &mrec.values, &set.keys) < target
                })
            };
            self.sets
                .get_mut(&set.name)
                .unwrap()
                .members
                .get_mut(&owner)
                .unwrap()
                .insert(pos, id.0);
        }
        Ok(())
    }

    // -- internals ---------------------------------------------------------

    fn record_type(&self, rtype: &str) -> DbResult<&RecordTypeDef> {
        self.schema
            .record(rtype)
            .ok_or_else(|| DbError::unknown("record", rtype))
    }

    fn has_existence_constraint(&self, set: &str) -> bool {
        self.schema
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Existence { set: s } if s == set))
    }

    fn has_characterizing_constraint(&self, set: &str) -> bool {
        self.schema
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Characterizing { set: s } if s == set))
    }

    fn cardinality_max(&self, set: &str) -> Option<u32> {
        self.schema.constraints.iter().find_map(|c| match c {
            Constraint::Cardinality {
                set: s,
                max: Some(m),
                ..
            } if s == set => Some(*m),
            _ => None,
        })
    }

    fn cardinality_min(&self, set: &str) -> Option<u32> {
        self.schema.constraints.iter().find_map(|c| match c {
            Constraint::Cardinality { set: s, min, .. } if s == set && *min > 0 => Some(*min),
            _ => None,
        })
    }

    /// Not-null / domain / uniqueness checks for a prospective row.
    fn check_row_constraints(
        &self,
        rtype: &str,
        rt: &RecordTypeDef,
        row: &[Value],
        exclude: Option<RecordId>,
    ) -> DbResult<()> {
        for c in &self.schema.constraints {
            match c {
                Constraint::NotNull { record, field } if record == rtype => {
                    let idx = rt.field_index(field).unwrap();
                    if row[idx].is_null() {
                        return Err(DbError::constraint(format!("NOT NULL {record}.{field}")));
                    }
                }
                Constraint::Domain {
                    record,
                    field,
                    low,
                    high,
                } if record == rtype => {
                    let idx = rt.field_index(field).unwrap();
                    let v = &row[idx];
                    if v.is_null() {
                        continue;
                    }
                    if let Some(l) = low {
                        if v.total_cmp(l) == std::cmp::Ordering::Less {
                            return Err(DbError::constraint(format!(
                                "DOMAIN {record}.{field}: {v} below {l}"
                            )));
                        }
                    }
                    if let Some(h) = high {
                        if v.total_cmp(h) == std::cmp::Ordering::Greater {
                            return Err(DbError::constraint(format!(
                                "DOMAIN {record}.{field}: {v} above {h}"
                            )));
                        }
                    }
                }
                Constraint::Unique { record, fields } if record == rtype => {
                    let idxs: Vec<usize> =
                        fields.iter().map(|f| rt.field_index(f).unwrap()).collect();
                    let key: Vec<&Value> = idxs.iter().map(|&i| &row[i]).collect();
                    for other in self.records.values() {
                        if other.rtype != rtype || Some(other.id) == exclude {
                            continue;
                        }
                        if idxs
                            .iter()
                            .zip(&key)
                            .all(|(&i, k)| other.values[i].loose_eq(k))
                        {
                            return Err(DbError::Duplicate {
                                scope: format!("record {record}"),
                                key: fields.join(","),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Key tuple of a member already stored in the database.
    fn member_key(&self, member: u64, keys: &[String]) -> KeyTuple {
        let mrec = &self.records[&member];
        let mrt = self.schema.record(&mrec.rtype).unwrap();
        key_tuple(mrt, &mrec.values, keys)
    }

    /// Can a record with values `row` be connected under `owner` in `set`?
    /// Checks cardinality maxima and duplicate set keys (by binary search
    /// over the key-ordered member list).
    fn check_connectable(
        &self,
        set: &SetDef,
        owner: RecordId,
        rt: &RecordTypeDef,
        row: &[Value],
    ) -> DbResult<()> {
        static EMPTY: &[u64] = &[];
        let existing: &[u64] = self.sets[&set.name]
            .members
            .get(&owner.0)
            .map(Vec::as_slice)
            .unwrap_or(EMPTY);
        if let Some(max) = self.cardinality_max(&set.name) {
            if existing.len() as u32 >= max {
                return Err(DbError::constraint(format!(
                    "cardinality maximum {max} on {} reached",
                    set.name
                )));
            }
        }
        if !set.keys.is_empty() {
            let key = key_tuple(rt, row, &set.keys);
            let pos = existing.partition_point(|&m| self.member_key(m, &set.keys) < key);
            if pos < existing.len() && self.member_key(existing[pos], &set.keys) == key {
                return Err(DbError::Duplicate {
                    scope: format!("set {}", set.name),
                    key: format!("{:?}", key.0),
                });
            }
        }
        Ok(())
    }

    /// Insert a member at its key-ordered position (append for keyless
    /// sets).
    fn insert_member(
        &mut self,
        set: &SetDef,
        owner: RecordId,
        member: RecordId,
        rt: &RecordTypeDef,
        row: &[Value],
    ) {
        let pos = {
            static EMPTY: &[u64] = &[];
            let existing: &[u64] = self.sets[&set.name]
                .members
                .get(&owner.0)
                .map(Vec::as_slice)
                .unwrap_or(EMPTY);
            if set.keys.is_empty() {
                existing.len()
            } else {
                let target = key_tuple(rt, row, &set.keys);
                existing.partition_point(|&m| self.member_key(m, &set.keys) < target)
            }
        };
        let store = self.sets.get_mut(&set.name).unwrap();
        store.members.entry(owner.0).or_default().insert(pos, member.0);
        store.owner_of.insert(member.0, owner.0);
    }
}

fn key_tuple(rt: &RecordTypeDef, row: &[Value], keys: &[String]) -> KeyTuple {
    KeyTuple(
        keys.iter()
            .map(|k| row[rt.field_index(k).unwrap()].clone())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, SetDef};
    use dbpc_datamodel::types::FieldType;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![
                    FieldDef::new("DIV-NAME", FieldType::Char(20)),
                    FieldDef::new("DIV-LOC", FieldType::Char(10)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                    FieldDef::virtual_field("DIV-NAME", FieldType::Char(20), "DIV-EMP", "DIV-NAME"),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    fn company_db() -> (NetworkDb, RecordId, RecordId) {
        let mut db = NetworkDb::new(company_schema()).unwrap();
        let mach = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("MACHINERY")),
                    ("DIV-LOC", Value::str("DETROIT")),
                ],
                &[],
            )
            .unwrap();
        let sales = db
            .store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str("AEROSPACE")),
                    ("DIV-LOC", Value::str("SEATTLE")),
                ],
                &[],
            )
            .unwrap();
        (db, mach, sales)
    }

    #[test]
    fn system_set_orders_by_keys() {
        let (db, mach, aero) = company_db();
        // AEROSPACE < MACHINERY alphabetically even though stored later.
        let order = db.members_of("ALL-DIV", SYSTEM_OWNER).unwrap();
        assert_eq!(order, vec![aero, mach]);
    }

    #[test]
    fn store_and_read_member_with_virtual_field() {
        let (mut db, mach, _) = company_db();
        let e = db
            .store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str("JONES")),
                    ("DEPT-NAME", Value::str("SALES")),
                    ("AGE", Value::Int(34)),
                ],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert_eq!(
            db.field_value(e, "DIV-NAME").unwrap(),
            Value::str("MACHINERY")
        );
        assert_eq!(db.field_value(e, "AGE").unwrap(), Value::Int(34));
        assert_eq!(db.owner_in("DIV-EMP", e).unwrap(), Some(mach));
    }

    #[test]
    fn automatic_set_requires_connection() {
        let (mut db, _, _) = company_db();
        let err = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .unwrap_err();
        assert!(matches!(err, DbError::Membership(_)));
    }

    #[test]
    fn manual_set_allows_deferred_connect() {
        let mut schema = company_schema();
        schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        let e = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .unwrap();
        assert_eq!(db.field_value(e, "DIV-NAME").unwrap(), Value::Null);
        db.connect("DIV-EMP", d, e).unwrap();
        assert_eq!(db.field_value(e, "DIV-NAME").unwrap(), Value::str("M"));
    }

    #[test]
    fn duplicate_set_key_rejected() {
        let (mut db, mach, _) = company_db();
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("JONES"))],
            &[("DIV-EMP", mach)],
        )
        .unwrap();
        let err = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("JONES"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Duplicate { .. }));
    }

    #[test]
    fn members_kept_in_key_order_under_modify() {
        let (mut db, mach, _) = company_db();
        let a = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("ADAMS"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        let z = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("ZOLA"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![a, z]);
        // Rename ADAMS → ZZTOP: must move after ZOLA.
        db.modify(a, &[("EMP-NAME", Value::str("ZZTOP"))]).unwrap();
        assert_eq!(db.members_of("DIV-EMP", mach).unwrap(), vec![z, a]);
    }

    #[test]
    fn mandatory_member_cannot_disconnect() {
        let mut schema = company_schema();
        schema.set_mut("DIV-EMP").unwrap().retention = Retention::Mandatory;
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        let e = db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d)])
            .unwrap();
        assert!(db.disconnect("DIV-EMP", e).is_err());
    }

    #[test]
    fn erase_requires_cascade_when_members_exist() {
        let (mut db, mach, _) = company_db();
        db.store(
            "EMP",
            &[("EMP-NAME", Value::str("X"))],
            &[("DIV-EMP", mach)],
        )
        .unwrap();
        assert!(db.erase(mach, false).is_err());
        let erased = db.erase(mach, true).unwrap();
        assert_eq!(erased.len(), 2);
        assert_eq!(db.records_of_type("EMP").len(), 0);
    }

    #[test]
    fn characterizing_set_cascades_implicitly() {
        let schema = company_schema().with_constraint(Constraint::Characterizing {
            set: "DIV-EMP".into(),
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        db.store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d)])
            .unwrap();
        // Plain erase cascades because EMP characterizes DIV.
        let erased = db.erase(d, false).unwrap();
        assert_eq!(erased.len(), 2);
    }

    #[test]
    fn cardinality_max_enforced() {
        let schema = company_schema().with_constraint(Constraint::Cardinality {
            set: "DIV-EMP".into(),
            min: 0,
            max: Some(2),
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        for name in ["A", "B"] {
            db.store(
                "EMP",
                &[("EMP-NAME", Value::str(name))],
                &[("DIV-EMP", d)],
            )
            .unwrap();
        }
        let err = db
            .store("EMP", &[("EMP-NAME", Value::str("C"))], &[("DIV-EMP", d)])
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint { .. }));
    }

    #[test]
    fn not_null_and_domain_enforced() {
        let schema = company_schema()
            .with_constraint(Constraint::NotNull {
                record: "EMP".into(),
                field: "EMP-NAME".into(),
            })
            .with_constraint(Constraint::Domain {
                record: "EMP".into(),
                field: "AGE".into(),
                low: Some(Value::Int(14)),
                high: Some(Value::Int(99)),
            });
        let mut db = NetworkDb::new(schema).unwrap();
        let d = db
            .store("DIV", &[("DIV-NAME", Value::str("M"))], &[])
            .unwrap();
        assert!(db.store("EMP", &[], &[("DIV-EMP", d)]).is_err()); // null name
        let err = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("K")), ("AGE", Value::Int(7))],
                &[("DIV-EMP", d)],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint { .. }));
    }

    #[test]
    fn unique_constraint_enforced_across_occurrences() {
        let schema = company_schema().with_constraint(Constraint::Unique {
            record: "EMP".into(),
            fields: vec!["EMP-NAME".into()],
        });
        let mut db = NetworkDb::new(schema).unwrap();
        let d1 = db
            .store("DIV", &[("DIV-NAME", Value::str("A"))], &[])
            .unwrap();
        let d2 = db
            .store("DIV", &[("DIV-NAME", Value::str("B"))], &[])
            .unwrap();
        db.store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d1)])
            .unwrap();
        // Same name under a *different* division: set-key check passes but
        // the global uniqueness constraint must reject it.
        assert!(db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[("DIV-EMP", d2)])
            .is_err());
    }

    #[test]
    fn type_checks_on_store_and_modify() {
        let (mut db, mach, _) = company_db();
        assert!(matches!(
            db.store(
                "EMP",
                &[("AGE", Value::str("OLD")), ("EMP-NAME", Value::str("E"))],
                &[("DIV-EMP", mach)],
            ),
            Err(DbError::TypeMismatch { .. })
        ));
        let e = db
            .store(
                "EMP",
                &[("EMP-NAME", Value::str("E"))],
                &[("DIV-EMP", mach)],
            )
            .unwrap();
        assert!(matches!(
            db.modify(e, &[("AGE", Value::str("OLD"))]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.modify(e, &[("DIV-NAME", Value::str("HACK"))]),
            Err(DbError::VirtualWrite { .. })
        ));
    }

    #[test]
    fn existence_constraint_blocks_manual_orphan() {
        let mut schema = company_schema().with_constraint(Constraint::Existence {
            set: "DIV-EMP".into(),
        });
        schema.set_mut("DIV-EMP").unwrap().insertion = Insertion::Manual;
        let mut db = NetworkDb::new(schema).unwrap();
        // Even though the set is MANUAL, the EXISTENCE constraint requires a
        // connection at store time.
        assert!(db
            .store("EMP", &[("EMP-NAME", Value::str("X"))], &[])
            .is_err());
    }
}
