//! The hierarchical (IMS-like) storage engine.
//!
//! Segment instances form forests mirroring the schema's segment-type trees.
//! The **hierarchic order** — root occurrence, then for each child *type* in
//! declaration order, each child *occurrence* (in sequence-field order) with
//! its whole subtree — defines the database traversal sequence that DL/I
//! `GN` (get next) walks. The Mehl & Wang experiment (paper ref 11) is
//! precisely about what happens to programs when a restructuring permutes
//! this order.

use crate::error::{DbError, DbResult};
use dbpc_datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc_datamodel::value::Value;
use std::collections::BTreeMap;

/// A stored segment occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInstance {
    pub id: u64,
    pub seg_type: String,
    pub values: Vec<Value>,
    pub parent: Option<u64>,
    /// Children in hierarchic order (grouped by child type rank, then
    /// sequence-field value, then insertion order).
    pub children: Vec<u64>,
}

/// A hierarchical database instance.
#[derive(Debug, Clone)]
pub struct HierDb {
    schema: HierSchema,
    segs: BTreeMap<u64, SegmentInstance>,
    /// Root occurrences in (root type rank, sequence, insertion) order.
    roots: Vec<u64>,
    next_id: u64,
}

impl HierDb {
    pub fn new(schema: HierSchema) -> DbResult<HierDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        Ok(HierDb {
            schema,
            segs: BTreeMap::new(),
            roots: Vec::new(),
            next_id: 1,
        })
    }

    pub fn schema(&self) -> &HierSchema {
        &self.schema
    }

    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    pub fn get(&self, id: u64) -> DbResult<&SegmentInstance> {
        self.segs
            .get(&id)
            .ok_or_else(|| DbError::NotFound(format!("segment #{id}")))
    }

    fn seg_def(&self, name: &str) -> DbResult<&SegmentDef> {
        self.schema
            .segment(name)
            .ok_or_else(|| DbError::unknown("segment", name))
    }

    /// Insert a segment occurrence (`ISRT`).
    ///
    /// A root-type segment takes `parent = None`; a dependent segment's
    /// parent occurrence must be of its schema parent type.
    pub fn insert(
        &mut self,
        seg_type: &str,
        values: &[(&str, Value)],
        parent: Option<u64>,
    ) -> DbResult<u64> {
        let def = self.seg_def(seg_type)?.clone();
        let mut row = vec![Value::Null; def.fields.len()];
        for (name, v) in values {
            let idx = def
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{seg_type}.{name}")))?;
            if !def.fields[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{seg_type}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.fields[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        let schema_parent = self.schema.parent_of(seg_type).map(str::to_string);
        match (&schema_parent, parent) {
            (None, Some(_)) => {
                return Err(DbError::Membership(format!(
                    "segment type {seg_type} is a root; no parent allowed"
                )))
            }
            (Some(p), None) => {
                return Err(DbError::Membership(format!(
                    "segment type {seg_type} requires a parent of type {p}"
                )))
            }
            (Some(p), Some(pid)) => {
                let prec = self.get(pid)?;
                if &prec.seg_type != p {
                    return Err(DbError::Membership(format!(
                        "segment type {seg_type} requires parent type {p}, got {}",
                        prec.seg_type
                    )));
                }
            }
            (None, None) => {}
        }

        let id = self.next_id;
        self.next_id += 1;
        let inst = SegmentInstance {
            id,
            seg_type: seg_type.to_string(),
            values: row.clone(),
            parent,
            children: Vec::new(),
        };
        self.segs.insert(id, inst);
        match parent {
            Some(pid) => {
                let pos = self.child_position(pid, seg_type, &def, &row)?;
                self.segs.get_mut(&pid).unwrap().children.insert(pos, id);
            }
            None => {
                let pos = self.root_position(seg_type, &def, &row);
                self.roots.insert(pos, id);
            }
        }
        Ok(id)
    }

    /// Where does a new child of `seg_type` with `row` go among `pid`'s
    /// children? Group by child-type rank, then sequence field, then
    /// insertion order.
    fn child_position(
        &self,
        pid: u64,
        seg_type: &str,
        def: &SegmentDef,
        row: &[Value],
    ) -> DbResult<usize> {
        let parent = self.get(pid)?;
        let pdef = self.seg_def(&parent.seg_type)?;
        let rank = pdef
            .children
            .iter()
            .position(|c| c.name == seg_type)
            .expect("validated parentage");
        let seq_val = def
            .seq_field
            .as_ref()
            .map(|f| row[def.field_index(f).unwrap()].clone());
        let children = &parent.children;
        let mut pos = children.len();
        for (i, cid) in children.iter().enumerate() {
            let c = &self.segs[cid];
            let crank = pdef
                .children
                .iter()
                .position(|d| d.name == c.seg_type)
                .unwrap();
            if crank < rank {
                continue;
            }
            if crank > rank {
                pos = i;
                break;
            }
            // Same type: order by sequence field (stable: insertions of
            // equal keys stay in arrival order).
            if let Some(sv) = &seq_val {
                let cdef = self.seg_def(&c.seg_type).unwrap();
                let cseq =
                    c.values[cdef.field_index(cdef.seq_field.as_ref().unwrap()).unwrap()].clone();
                if sv.total_cmp(&cseq) == std::cmp::Ordering::Less {
                    pos = i;
                    break;
                }
            }
        }
        Ok(pos)
    }

    fn root_position(&self, seg_type: &str, def: &SegmentDef, row: &[Value]) -> usize {
        let rank = self
            .schema
            .roots
            .iter()
            .position(|r| r.name == seg_type)
            .expect("validated root type");
        let seq_val = def
            .seq_field
            .as_ref()
            .map(|f| row[def.field_index(f).unwrap()].clone());
        let mut pos = self.roots.len();
        for (i, rid) in self.roots.iter().enumerate() {
            let r = &self.segs[rid];
            let rrank = self
                .schema
                .roots
                .iter()
                .position(|d| d.name == r.seg_type)
                .unwrap();
            if rrank < rank {
                continue;
            }
            if rrank > rank {
                pos = i;
                break;
            }
            if let Some(sv) = &seq_val {
                let rdef = self.seg_def(&r.seg_type).unwrap();
                let rseq =
                    r.values[rdef.field_index(rdef.seq_field.as_ref().unwrap()).unwrap()].clone();
                if sv.total_cmp(&rseq) == std::cmp::Ordering::Less {
                    pos = i;
                    break;
                }
            }
        }
        pos
    }

    /// The full database in hierarchic (preorder) sequence — the order `GN`
    /// traverses.
    pub fn preorder(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.segs.len());
        for &r in &self.roots {
            self.preorder_into(r, &mut out);
        }
        out
    }

    fn preorder_into(&self, id: u64, out: &mut Vec<u64>) {
        out.push(id);
        for &c in &self.segs[&id].children {
            self.preorder_into(c, out);
        }
    }

    /// Children of `id` having segment type `seg_type`, in hierarchic order.
    pub fn children_of(&self, id: u64, seg_type: &str) -> DbResult<Vec<u64>> {
        let inst = self.get(id)?;
        Ok(inst
            .children
            .iter()
            .copied()
            .filter(|c| self.segs[c].seg_type == seg_type)
            .collect())
    }

    /// Read one field of a segment occurrence.
    pub fn field_value(&self, id: u64, field: &str) -> DbResult<Value> {
        let inst = self.get(id)?;
        let def = self.seg_def(&inst.seg_type)?;
        let idx = def
            .field_index(field)
            .ok_or_else(|| DbError::unknown("field", format!("{}.{field}", inst.seg_type)))?;
        Ok(inst.values[idx].clone())
    }

    /// Replace fields of a segment occurrence (`REPL`). Changing the
    /// sequence field repositions the occurrence among its siblings.
    pub fn replace(&mut self, id: u64, assigns: &[(&str, Value)]) -> DbResult<()> {
        let inst = self.get(id)?.clone();
        let def = self.seg_def(&inst.seg_type)?.clone();
        let mut row = inst.values.clone();
        for (name, v) in assigns {
            let idx = def
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{}.{name}", inst.seg_type)))?;
            if !def.fields[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{}.{name}", inst.seg_type),
                    detail: format!("{} does not fit {}", v.type_name(), def.fields[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        let seq_changed = def.seq_field.as_ref().is_some_and(|f| {
            let i = def.field_index(f).unwrap();
            !inst.values[i].loose_eq(&row[i])
        });
        self.segs.get_mut(&id).unwrap().values = row.clone();
        if seq_changed {
            match inst.parent {
                Some(pid) => {
                    self.segs
                        .get_mut(&pid)
                        .unwrap()
                        .children
                        .retain(|&c| c != id);
                    let pos = self.child_position(pid, &inst.seg_type, &def, &row)?;
                    self.segs.get_mut(&pid).unwrap().children.insert(pos, id);
                }
                None => {
                    self.roots.retain(|&r| r != id);
                    let pos = self.root_position(&inst.seg_type, &def, &row);
                    self.roots.insert(pos, id);
                }
            }
        }
        Ok(())
    }

    /// Delete a segment occurrence and its whole subtree (`DLET` — IMS
    /// deletes dependents implicitly, the §3.1 cascade hazard in
    /// hierarchical form). Returns the number of segments deleted.
    pub fn delete(&mut self, id: u64) -> DbResult<usize> {
        let inst = self.get(id)?.clone();
        match inst.parent {
            Some(pid) => self
                .segs
                .get_mut(&pid)
                .unwrap()
                .children
                .retain(|&c| c != id),
            None => self.roots.retain(|&r| r != id),
        }
        let mut doomed = Vec::new();
        self.preorder_into(id, &mut doomed);
        for d in &doomed {
            self.segs.remove(d);
        }
        Ok(doomed.len())
    }

    /// All occurrences of a segment type in hierarchic order.
    pub fn occurrences_of(&self, seg_type: &str) -> Vec<u64> {
        self.preorder()
            .into_iter()
            .filter(|id| self.segs[id].seg_type == seg_type)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::FieldDef;
    use dbpc_datamodel::types::FieldType;

    fn schema() -> HierSchema {
        HierSchema::new("COMPANY").with_root(
            SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
                .with_seq_field("DIV-NAME")
                .with_child(
                    SegmentDef::new(
                        "EMP",
                        vec![
                            FieldDef::new("EMP-NAME", FieldType::Char(25)),
                            FieldDef::new("AGE", FieldType::Int(2)),
                        ],
                    )
                    .with_seq_field("EMP-NAME"),
                )
                .with_child(SegmentDef::new(
                    "PROJ",
                    vec![FieldDef::new("PROJ-NAME", FieldType::Char(10))],
                )),
        )
    }

    fn sample() -> (HierDb, u64, u64) {
        let mut db = HierDb::new(schema()).unwrap();
        let d1 = db
            .insert("DIV", &[("DIV-NAME", Value::str("MACHINERY"))], None)
            .unwrap();
        let d2 = db
            .insert("DIV", &[("DIV-NAME", Value::str("AEROSPACE"))], None)
            .unwrap();
        (db, d1, d2)
    }

    #[test]
    fn roots_ordered_by_sequence_field() {
        let (db, d1, d2) = sample();
        assert_eq!(db.preorder(), vec![d2, d1]); // AEROSPACE < MACHINERY
    }

    #[test]
    fn hierarchic_order_groups_child_types() {
        let (mut db, d1, _) = sample();
        let p = db
            .insert("PROJ", &[("PROJ-NAME", Value::str("P1"))], Some(d1))
            .unwrap();
        let e2 = db
            .insert("EMP", &[("EMP-NAME", Value::str("ZOLA"))], Some(d1))
            .unwrap();
        let e1 = db
            .insert("EMP", &[("EMP-NAME", Value::str("ADAMS"))], Some(d1))
            .unwrap();
        // Under MACHINERY: all EMPs (by name) precede all PROJs.
        let kids = db.get(d1).unwrap().children.clone();
        assert_eq!(kids, vec![e1, e2, p]);
    }

    #[test]
    fn parentage_is_type_checked() {
        let (mut db, d1, _) = sample();
        let e = db
            .insert("EMP", &[("EMP-NAME", Value::str("X"))], Some(d1))
            .unwrap();
        // PROJ under an EMP is illegal (EMP has no PROJ child).
        assert!(db
            .insert("PROJ", &[("PROJ-NAME", Value::str("P"))], Some(e))
            .is_err());
        // EMP with no parent is illegal.
        assert!(db
            .insert("EMP", &[("EMP-NAME", Value::str("Y"))], None)
            .is_err());
        // DIV with a parent is illegal.
        assert!(db
            .insert("DIV", &[("DIV-NAME", Value::str("Z"))], Some(d1))
            .is_err());
    }

    #[test]
    fn delete_cascades_subtree() {
        let (mut db, d1, d2) = sample();
        db.insert("EMP", &[("EMP-NAME", Value::str("A"))], Some(d1))
            .unwrap();
        db.insert("EMP", &[("EMP-NAME", Value::str("B"))], Some(d1))
            .unwrap();
        let n = db.delete(d1).unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.preorder(), vec![d2]);
    }

    #[test]
    fn replace_repositions_on_seq_change() {
        let (mut db, d1, _) = sample();
        let a = db
            .insert("EMP", &[("EMP-NAME", Value::str("ADAMS"))], Some(d1))
            .unwrap();
        let z = db
            .insert("EMP", &[("EMP-NAME", Value::str("ZOLA"))], Some(d1))
            .unwrap();
        db.replace(a, &[("EMP-NAME", Value::str("ZZTOP"))]).unwrap();
        assert_eq!(db.get(d1).unwrap().children, vec![z, a]);
    }

    #[test]
    fn occurrences_follow_hierarchic_order() {
        let (mut db, d1, d2) = sample();
        let e_mach = db
            .insert("EMP", &[("EMP-NAME", Value::str("M1"))], Some(d1))
            .unwrap();
        let e_aero = db
            .insert("EMP", &[("EMP-NAME", Value::str("A1"))], Some(d2))
            .unwrap();
        // AEROSPACE's employees come first because AEROSPACE is first.
        assert_eq!(db.occurrences_of("EMP"), vec![e_aero, e_mach]);
    }

    #[test]
    fn field_access_and_type_checks() {
        let (mut db, d1, _) = sample();
        let e = db
            .insert(
                "EMP",
                &[("EMP-NAME", Value::str("X")), ("AGE", Value::Int(40))],
                Some(d1),
            )
            .unwrap();
        assert_eq!(db.field_value(e, "AGE").unwrap(), Value::Int(40));
        assert!(db.field_value(e, "NOPE").is_err());
        assert!(db.insert("EMP", &[("AGE", Value::str("old"))], Some(d1)).is_err());
    }
}
