//! The hierarchical (IMS-like) storage engine.
//!
//! Segment instances form forests mirroring the schema's segment-type trees.
//! The **hierarchic order** — root occurrence, then for each child *type* in
//! declaration order, each child *occurrence* (in sequence-field order) with
//! its whole subtree — defines the database traversal sequence that DL/I
//! `GN` (get next) walks. The Mehl & Wang experiment (paper ref 11) is
//! precisely about what happens to programs when a restructuring permutes
//! this order.

use crate::error::{DbError, DbResult};
use crate::stats::AccessStats;
use crate::txn::{Savepoint, UndoLog};
use dbpc_datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc_datamodel::value::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A stored segment occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInstance {
    pub id: u64,
    pub seg_type: String,
    pub values: Vec<Value>,
    pub parent: Option<u64>,
    /// Children in hierarchic order (grouped by child type rank, then
    /// sequence-field value, then insertion order).
    pub children: Vec<u64>,
}

/// Cached hierarchic (preorder) sequence plus derived lookup structures.
/// Rebuilt lazily after a structural mutation; every `GN`/`GNP` between
/// mutations reuses it, making navigation amortized O(1) in rebuilds.
#[derive(Debug, Clone)]
struct PreorderCache {
    /// The full database in hierarchic sequence.
    order: Vec<u64>,
    /// Segment id → index in `order`.
    pos: BTreeMap<u64, usize>,
    /// Segment type → ascending indices into `order` (for type-filtered
    /// `GN`: the next occurrence is a binary search, not a forward scan).
    by_type: BTreeMap<String, Vec<usize>>,
    /// Segment id → subtree size including self (`GNP` bounds its search
    /// to `pos[parent]+1 .. pos[parent]+subtree[parent]`).
    subtree: BTreeMap<u64, usize>,
}

/// Physical inverse of one hierarchic mutation, journaled while a
/// savepoint is open. The preorder cache is not journaled: rollback
/// restores the segment forest and rebuilds (or drops) the cache to
/// match the state the savepoint captured.
#[derive(Debug, Clone)]
enum HierUndo {
    /// Undo an `ISRT`: remove the segment and its sibling-list entry.
    Insert { id: u64 },
    /// Undo a `REPL`: restore the previous values; when the replace
    /// repositioned the segment, restore the exact sibling list too.
    Replace {
        id: u64,
        values: Vec<Value>,
        parent: Option<u64>,
        siblings: Option<Vec<u64>>,
    },
    /// Undo a `DLET`: reinstate the whole subtree (captured in preorder)
    /// and re-link the top segment at its original sibling position.
    Delete {
        id: u64,
        parent: Option<u64>,
        pos: usize,
        subtree: Vec<SegmentInstance>,
    },
}

/// Per-savepoint metadata: the id allocator, and whether the preorder
/// cache was populated (so rollback can restore cache warmth exactly —
/// a later run must see the same rebuild count it would have seen had
/// the rolled-back suffix never executed).
#[derive(Debug, Clone)]
struct HierMark {
    next_id: u64,
    cache_was_valid: bool,
}

/// A hierarchical database instance.
#[derive(Debug, Clone)]
pub struct HierDb {
    schema: HierSchema,
    segs: BTreeMap<u64, SegmentInstance>,
    /// Root occurrences in (root type rank, sequence, insertion) order.
    roots: Vec<u64>,
    next_id: u64,
    /// Schema-derived: segment type → rank among its parent's child types
    /// (or among the schema roots, for root types).
    type_rank: BTreeMap<String, usize>,
    /// Schema-derived: segment type → index of its sequence field.
    seq_idx: BTreeMap<String, Option<usize>>,
    /// Lazily (re)built preorder cache; `None` after a structural change.
    cache: RefCell<Option<PreorderCache>>,
    /// Access-path counters.
    stats: AccessStats,
    /// Undo journal (see [`crate::txn`]).
    journal: UndoLog<HierUndo, HierMark>,
}

impl HierDb {
    pub fn new(schema: HierSchema) -> DbResult<HierDb> {
        schema
            .validate()
            .map_err(|e| DbError::constraint(e.to_string()))?;
        let mut type_rank = BTreeMap::new();
        let mut seq_idx = BTreeMap::new();
        fn walk(
            def: &SegmentDef,
            rank: usize,
            type_rank: &mut BTreeMap<String, usize>,
            seq_idx: &mut BTreeMap<String, Option<usize>>,
        ) {
            type_rank.insert(def.name.clone(), rank);
            seq_idx.insert(
                def.name.clone(),
                def.seq_field.as_ref().and_then(|f| def.field_index(f)),
            );
            for (i, c) in def.children.iter().enumerate() {
                walk(c, i, type_rank, seq_idx);
            }
        }
        for (i, r) in schema.roots.iter().enumerate() {
            walk(r, i, &mut type_rank, &mut seq_idx);
        }
        Ok(HierDb {
            schema,
            segs: BTreeMap::new(),
            roots: Vec::new(),
            next_id: 1,
            type_rank,
            seq_idx,
            cache: RefCell::new(None),
            stats: AccessStats::default(),
            journal: UndoLog::default(),
        })
    }

    /// Open a savepoint. Until it is rolled back or committed, every
    /// mutation journals its inverse. Savepoints nest.
    pub fn begin_savepoint(&mut self) -> Savepoint {
        self.journal.begin(HierMark {
            next_id: self.next_id,
            cache_was_valid: self.cache.borrow().is_some(),
        })
    }

    /// Restore the database to its state at `begin_savepoint`: the
    /// segment forest, sibling orders, the id allocator, and the preorder
    /// cache's warmth. Savepoints opened after `sp` are discarded; a
    /// stale handle is a no-op.
    pub fn rollback_to(&mut self, sp: Savepoint) {
        if let Some((ops, mark)) = self.journal.rollback(sp) {
            let structural = !ops.is_empty();
            for op in ops {
                self.apply_undo(op);
            }
            self.next_id = mark.next_id;
            if structural {
                // Re-warm (or drop) the cache to match the savepoint:
                // the run being undone must not change how many rebuilds
                // a *later* run observes. The rebuild here is silent —
                // it is cache restoration, not navigation work.
                self.invalidate_cache();
                if mark.cache_was_valid {
                    *self.cache.get_mut() = Some(self.build_cache());
                }
            }
        }
    }

    /// Keep everything done since `sp` and close it (plus any savepoint
    /// nested inside it). A stale handle is a no-op.
    pub fn commit(&mut self, sp: Savepoint) {
        self.journal.commit(sp);
    }

    fn apply_undo(&mut self, op: HierUndo) {
        match op {
            HierUndo::Insert { id } => {
                if let Some(inst) = self.segs.remove(&id) {
                    match inst.parent {
                        Some(pid) => {
                            if let Some(p) = self.segs.get_mut(&pid) {
                                p.children.retain(|&c| c != id);
                            }
                        }
                        None => self.roots.retain(|&r| r != id),
                    }
                }
            }
            HierUndo::Replace {
                id,
                values,
                parent,
                siblings,
            } => {
                if let Some(s) = self.segs.get_mut(&id) {
                    s.values = values;
                }
                if let Some(sibs) = siblings {
                    match parent {
                        Some(pid) => {
                            if let Some(p) = self.segs.get_mut(&pid) {
                                p.children = sibs;
                            }
                        }
                        None => self.roots = sibs,
                    }
                }
            }
            HierUndo::Delete {
                id,
                parent,
                pos,
                subtree,
            } => {
                for inst in subtree {
                    self.segs.insert(inst.id, inst);
                }
                match parent {
                    Some(pid) => {
                        if let Some(p) = self.segs.get_mut(&pid) {
                            let at = pos.min(p.children.len());
                            p.children.insert(at, id);
                        }
                    }
                    None => {
                        let at = pos.min(self.roots.len());
                        self.roots.insert(at, id);
                    }
                }
            }
        }
    }

    /// Deterministic digest of the full logical state: the segment
    /// forest (values, parentage, sibling order), root order, and the id
    /// allocator. The preorder cache is excluded — it is derived, and
    /// verified by [`HierDb::check_access_structures`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.next_id.hash(&mut h);
        self.roots.hash(&mut h);
        self.segs.len().hash(&mut h);
        for (id, inst) in &self.segs {
            id.hash(&mut h);
            inst.seg_type.hash(&mut h);
            inst.values.hash(&mut h);
            inst.parent.hash(&mut h);
            inst.children.hash(&mut h);
        }
        h.finish()
    }

    /// Access-path counters for this database.
    pub fn access_stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Drop the preorder cache after a structural mutation.
    fn invalidate_cache(&mut self) {
        *self.cache.get_mut() = None;
    }

    fn build_cache(&self) -> PreorderCache {
        let mut order = Vec::with_capacity(self.segs.len());
        let mut subtree = BTreeMap::new();
        fn walk(
            db: &HierDb,
            id: u64,
            order: &mut Vec<u64>,
            subtree: &mut BTreeMap<u64, usize>,
        ) -> usize {
            order.push(id);
            let mut size = 1;
            for &c in &db.segs[&id].children {
                size += walk(db, c, order, subtree);
            }
            subtree.insert(id, size);
            size
        }
        for &r in &self.roots {
            walk(self, r, &mut order, &mut subtree);
        }
        let mut pos = BTreeMap::new();
        let mut by_type: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, &id) in order.iter().enumerate() {
            pos.insert(id, i);
            by_type
                .entry(self.segs[&id].seg_type.clone())
                .or_default()
                .push(i);
        }
        PreorderCache {
            order,
            pos,
            by_type,
            subtree,
        }
    }

    /// Run `f` against the preorder cache, building it first if needed.
    fn with_cache<R>(&self, f: impl FnOnce(&PreorderCache) -> R) -> R {
        let mut slot = self.cache.borrow_mut();
        if slot.is_none() {
            self.stats.rebuilt_preorder();
            *slot = Some(self.build_cache());
        }
        match slot.as_ref() {
            Some(c) => f(c),
            // Unreachable: the slot was filled just above.
            None => f(&self.build_cache()),
        }
    }

    pub fn schema(&self) -> &HierSchema {
        &self.schema
    }

    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    pub fn get(&self, id: u64) -> DbResult<&SegmentInstance> {
        self.segs
            .get(&id)
            .ok_or_else(|| DbError::NotFound(format!("segment #{id}")))
    }

    fn seg_def(&self, name: &str) -> DbResult<&SegmentDef> {
        self.schema
            .segment(name)
            .ok_or_else(|| DbError::unknown("segment", name))
    }

    /// Insert a segment occurrence (`ISRT`).
    ///
    /// A root-type segment takes `parent = None`; a dependent segment's
    /// parent occurrence must be of its schema parent type.
    pub fn insert(
        &mut self,
        seg_type: &str,
        values: &[(&str, Value)],
        parent: Option<u64>,
    ) -> DbResult<u64> {
        let def = self.seg_def(seg_type)?.clone();
        let mut row = vec![Value::Null; def.fields.len()];
        for (name, v) in values {
            let idx = def
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{seg_type}.{name}")))?;
            if !def.fields[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{seg_type}.{name}"),
                    detail: format!("{} does not fit {}", v.type_name(), def.fields[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        let schema_parent = self.schema.parent_of(seg_type).map(str::to_string);
        match (&schema_parent, parent) {
            (None, Some(_)) => {
                return Err(DbError::Membership(format!(
                    "segment type {seg_type} is a root; no parent allowed"
                )))
            }
            (Some(p), None) => {
                return Err(DbError::Membership(format!(
                    "segment type {seg_type} requires a parent of type {p}"
                )))
            }
            (Some(p), Some(pid)) => {
                let prec = self.get(pid)?;
                if &prec.seg_type != p {
                    return Err(DbError::Membership(format!(
                        "segment type {seg_type} requires parent type {p}, got {}",
                        prec.seg_type
                    )));
                }
            }
            (None, None) => {}
        }

        let id = self.next_id;
        self.next_id += 1;
        let inst = SegmentInstance {
            id,
            seg_type: seg_type.to_string(),
            values: row.clone(),
            parent,
            children: Vec::new(),
        };
        match parent {
            Some(pid) => {
                // Position first (it only scans existing siblings), then
                // store and link.
                let pos = self.child_position(pid, seg_type, &def, &row)?;
                self.segs.insert(id, inst);
                if let Some(p) = self.segs.get_mut(&pid) {
                    p.children.insert(pos, id);
                }
            }
            None => {
                let pos = self.root_position(seg_type, &def, &row);
                self.segs.insert(id, inst);
                self.roots.insert(pos, id);
            }
        }
        self.journal.record_with(|| HierUndo::Insert { id });
        self.invalidate_cache();
        Ok(id)
    }

    /// Where does a new child of `seg_type` with `row` go among `pid`'s
    /// children? Group by child-type rank, then sequence field, then
    /// insertion order.
    fn child_position(
        &self,
        pid: u64,
        seg_type: &str,
        def: &SegmentDef,
        row: &[Value],
    ) -> DbResult<usize> {
        let parent = self.get(pid)?;
        // Ordinal maps precomputed at construction replace the former
        // per-sibling `position()` scans over the schema's child lists.
        let rank = self.type_rank[seg_type];
        let seq_val = self.seq_idx[seg_type].map(|i| &row[i]);
        debug_assert!(def.name == seg_type);
        let children = &parent.children;
        let mut pos = children.len();
        for (i, cid) in children.iter().enumerate() {
            let c = &self.segs[cid];
            let crank = self.type_rank[&c.seg_type];
            if crank < rank {
                continue;
            }
            if crank > rank {
                pos = i;
                break;
            }
            // Same type: order by sequence field (stable: insertions of
            // equal keys stay in arrival order).
            if let (Some(sv), Some(ci)) =
                (seq_val, self.seq_idx.get(&c.seg_type).copied().flatten())
            {
                let cseq = &c.values[ci];
                if sv.total_cmp(cseq) == std::cmp::Ordering::Less {
                    pos = i;
                    break;
                }
            }
        }
        Ok(pos)
    }

    fn root_position(&self, seg_type: &str, def: &SegmentDef, row: &[Value]) -> usize {
        let rank = self.type_rank[seg_type];
        let seq_val = self.seq_idx[seg_type].map(|i| &row[i]);
        debug_assert!(def.name == seg_type);
        let mut pos = self.roots.len();
        for (i, rid) in self.roots.iter().enumerate() {
            let r = &self.segs[rid];
            let rrank = self.type_rank[&r.seg_type];
            if rrank < rank {
                continue;
            }
            if rrank > rank {
                pos = i;
                break;
            }
            if let (Some(sv), Some(ri)) =
                (seq_val, self.seq_idx.get(&r.seg_type).copied().flatten())
            {
                let rseq = &r.values[ri];
                if sv.total_cmp(rseq) == std::cmp::Ordering::Less {
                    pos = i;
                    break;
                }
            }
        }
        pos
    }

    /// The full database in hierarchic (preorder) sequence — the order `GN`
    /// traverses. Served from the preorder cache; prefer
    /// [`HierDb::next_in_preorder`] for stepwise navigation, which avoids
    /// materializing the sequence.
    pub fn preorder(&self) -> Vec<u64> {
        self.with_cache(|c| c.order.clone())
    }

    /// Hierarchic successor: the first segment after `after` (or the first
    /// segment of the database when `after` is `None`), optionally
    /// restricted to `seg_type`. A stale `after` (deleted id) restarts from
    /// the front, matching the historical linear-search behaviour.
    ///
    /// Amortized O(log n) against the cache: the position lookup is a map
    /// probe and the type filter a binary search over that type's
    /// occurrence positions.
    pub fn next_in_preorder(&self, after: Option<u64>, seg_type: Option<&str>) -> Option<u64> {
        self.with_cache(|c| {
            let start = match after {
                Some(p) => c.pos.get(&p).map_or(0, |&i| i + 1),
                None => 0,
            };
            let hit = match seg_type {
                None => c.order.get(start).copied(),
                Some(t) => c.by_type.get(t).and_then(|positions| {
                    let k = positions.partition_point(|&p| p < start);
                    positions.get(k).map(|&p| c.order[p])
                }),
            };
            self.stats.probed(hit.is_some());
            hit
        })
    }

    /// Hierarchic successor **within `root`'s subtree** (exclusive of
    /// `root` itself): the `GNP` step. `after` semantics mirror
    /// [`HierDb::next_in_preorder`] — `None`, `root` itself, or a stale id
    /// start from the first descendant.
    pub fn next_within(
        &self,
        root: u64,
        after: Option<u64>,
        seg_type: Option<&str>,
    ) -> Option<u64> {
        self.with_cache(|c| {
            let rpos = *c.pos.get(&root)?;
            let end = rpos + c.subtree[&root]; // exclusive
            let start = match after {
                Some(p) if p != root => match c.pos.get(&p) {
                    Some(&i) if i > rpos && i < end => i + 1,
                    _ => rpos + 1,
                },
                _ => rpos + 1,
            };
            let hit = match seg_type {
                None => (start < end).then(|| c.order[start]),
                Some(t) => c.by_type.get(t).and_then(|positions| {
                    let k = positions.partition_point(|&p| p < start);
                    positions.get(k).filter(|&&p| p < end).map(|&p| c.order[p])
                }),
            };
            self.stats.probed(hit.is_some());
            hit
        })
    }

    fn preorder_into(&self, id: u64, out: &mut Vec<u64>) {
        out.push(id);
        for &c in &self.segs[&id].children {
            self.preorder_into(c, out);
        }
    }

    /// Children of `id` having segment type `seg_type`, in hierarchic order.
    pub fn children_of(&self, id: u64, seg_type: &str) -> DbResult<Vec<u64>> {
        let inst = self.get(id)?;
        Ok(inst
            .children
            .iter()
            .copied()
            .filter(|c| self.segs[c].seg_type == seg_type)
            .collect())
    }

    /// Read one field of a segment occurrence.
    pub fn field_value(&self, id: u64, field: &str) -> DbResult<Value> {
        let inst = self.get(id)?;
        let def = self.seg_def(&inst.seg_type)?;
        let idx = def
            .field_index(field)
            .ok_or_else(|| DbError::unknown("field", format!("{}.{field}", inst.seg_type)))?;
        Ok(inst.values[idx].clone())
    }

    /// Replace fields of a segment occurrence (`REPL`). Changing the
    /// sequence field repositions the occurrence among its siblings.
    pub fn replace(&mut self, id: u64, assigns: &[(&str, Value)]) -> DbResult<()> {
        let inst = self.get(id)?.clone();
        let def = self.seg_def(&inst.seg_type)?.clone();
        let mut row = inst.values.clone();
        for (name, v) in assigns {
            let idx = def
                .field_index(name)
                .ok_or_else(|| DbError::unknown("field", format!("{}.{name}", inst.seg_type)))?;
            if !def.fields[idx].ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    field: format!("{}.{name}", inst.seg_type),
                    detail: format!("{} does not fit {}", v.type_name(), def.fields[idx].ty),
                });
            }
            row[idx] = v.clone();
        }
        let seq_changed = def
            .seq_field
            .as_ref()
            .and_then(|f| def.field_index(f))
            .is_some_and(|i| !inst.values[i].loose_eq(&row[i]));
        // Journal the pre-image (and, for a reposition, the exact sibling
        // list) before mutating anything.
        let old_siblings = if self.journal.active() && seq_changed {
            Some(match inst.parent {
                Some(pid) => self
                    .segs
                    .get(&pid)
                    .map(|p| p.children.clone())
                    .unwrap_or_default(),
                None => self.roots.clone(),
            })
        } else {
            None
        };
        let Some(seg) = self.segs.get_mut(&id) else {
            return Err(DbError::NotFound(format!("segment #{id}")));
        };
        seg.values = row.clone();
        if seq_changed {
            match inst.parent {
                Some(pid) => {
                    if let Some(p) = self.segs.get_mut(&pid) {
                        p.children.retain(|&c| c != id);
                    }
                    let pos = self.child_position(pid, &inst.seg_type, &def, &row)?;
                    if let Some(p) = self.segs.get_mut(&pid) {
                        p.children.insert(pos, id);
                    }
                }
                None => {
                    self.roots.retain(|&r| r != id);
                    let pos = self.root_position(&inst.seg_type, &def, &row);
                    self.roots.insert(pos, id);
                }
            }
            // Only a reposition perturbs hierarchic order; plain value
            // updates leave the cache valid.
            self.invalidate_cache();
        }
        self.journal.record_with(|| HierUndo::Replace {
            id,
            values: inst.values.clone(),
            parent: inst.parent,
            siblings: old_siblings,
        });
        Ok(())
    }

    /// Delete a segment occurrence and its whole subtree (`DLET` — IMS
    /// deletes dependents implicitly, the §3.1 cascade hazard in
    /// hierarchical form). Returns the number of segments deleted.
    pub fn delete(&mut self, id: u64) -> DbResult<usize> {
        let inst = self.get(id)?.clone();
        let pos = match inst.parent {
            Some(pid) => self
                .segs
                .get(&pid)
                .and_then(|p| p.children.iter().position(|&c| c == id)),
            None => self.roots.iter().position(|&r| r == id),
        }
        .unwrap_or(usize::MAX);
        match inst.parent {
            Some(pid) => {
                if let Some(p) = self.segs.get_mut(&pid) {
                    p.children.retain(|&c| c != id);
                }
            }
            None => self.roots.retain(|&r| r != id),
        }
        let mut doomed = Vec::new();
        self.preorder_into(id, &mut doomed);
        // Snapshot the subtree (in preorder, children lists intact) for
        // the undo journal before tearing it down.
        let subtree: Vec<SegmentInstance> = if self.journal.active() {
            doomed
                .iter()
                .filter_map(|d| self.segs.get(d).cloned())
                .collect()
        } else {
            Vec::new()
        };
        for d in &doomed {
            self.segs.remove(d);
        }
        self.journal.record_with(|| HierUndo::Delete {
            id,
            parent: inst.parent,
            pos,
            subtree,
        });
        self.invalidate_cache();
        Ok(doomed.len())
    }

    /// Every segment type the schema declares, in hierarchic definition
    /// order (root-first preorder rank).
    pub fn segment_types(&self) -> Vec<String> {
        let mut names: Vec<(&usize, &String)> =
            self.type_rank.iter().map(|(n, r)| (r, n)).collect();
        names.sort();
        names.into_iter().map(|(_, n)| n.clone()).collect()
    }

    /// Current occurrence count of a segment type. Non-counting and
    /// cache-neutral: reads the preorder cache when it happens to be warm,
    /// otherwise counts segments directly — it never forces (or tallies) a
    /// preorder rebuild, so planning is invisible to `preorder_rebuilds`.
    pub fn type_cardinality(&self, seg_type: &str) -> u64 {
        if let Some(c) = self.cache.borrow().as_ref() {
            return c.by_type.get(seg_type).map_or(0, |v| v.len() as u64);
        }
        self.segs
            .values()
            .filter(|s| s.seg_type == seg_type)
            .count() as u64
    }

    /// All occurrences of a segment type in hierarchic order.
    pub fn occurrences_of(&self, seg_type: &str) -> Vec<u64> {
        self.with_cache(|c| {
            c.by_type
                .get(seg_type)
                .map(|positions| positions.iter().map(|&p| c.order[p]).collect())
                .unwrap_or_default()
        })
    }

    /// Verify the preorder cache (when populated) against a from-scratch
    /// rebuild. Returns a description of the first inconsistency found.
    pub fn check_access_structures(&self) -> Result<(), String> {
        let cached = self.cache.borrow();
        let Some(c) = cached.as_ref() else {
            return Ok(()); // nothing cached, nothing to diverge
        };
        let fresh = self.build_cache();
        if c.order != fresh.order {
            return Err(format!(
                "preorder cache diverges: cached {:?} vs rebuilt {:?}",
                c.order, fresh.order
            ));
        }
        if c.pos != fresh.pos {
            return Err("preorder position map diverges from rebuilt order".into());
        }
        if c.by_type != fresh.by_type {
            return Err("preorder by-type map diverges from rebuilt order".into());
        }
        if c.subtree != fresh.subtree {
            return Err("subtree-size map diverges from rebuilt order".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::FieldDef;
    use dbpc_datamodel::types::FieldType;

    fn schema() -> HierSchema {
        HierSchema::new("COMPANY").with_root(
            SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
                .with_seq_field("DIV-NAME")
                .with_child(
                    SegmentDef::new(
                        "EMP",
                        vec![
                            FieldDef::new("EMP-NAME", FieldType::Char(25)),
                            FieldDef::new("AGE", FieldType::Int(2)),
                        ],
                    )
                    .with_seq_field("EMP-NAME"),
                )
                .with_child(SegmentDef::new(
                    "PROJ",
                    vec![FieldDef::new("PROJ-NAME", FieldType::Char(10))],
                )),
        )
    }

    fn sample() -> (HierDb, u64, u64) {
        let mut db = HierDb::new(schema()).unwrap();
        let d1 = db
            .insert("DIV", &[("DIV-NAME", Value::str("MACHINERY"))], None)
            .unwrap();
        let d2 = db
            .insert("DIV", &[("DIV-NAME", Value::str("AEROSPACE"))], None)
            .unwrap();
        (db, d1, d2)
    }

    #[test]
    fn roots_ordered_by_sequence_field() {
        let (db, d1, d2) = sample();
        assert_eq!(db.preorder(), vec![d2, d1]); // AEROSPACE < MACHINERY
    }

    #[test]
    fn hierarchic_order_groups_child_types() {
        let (mut db, d1, _) = sample();
        let p = db
            .insert("PROJ", &[("PROJ-NAME", Value::str("P1"))], Some(d1))
            .unwrap();
        let e2 = db
            .insert("EMP", &[("EMP-NAME", Value::str("ZOLA"))], Some(d1))
            .unwrap();
        let e1 = db
            .insert("EMP", &[("EMP-NAME", Value::str("ADAMS"))], Some(d1))
            .unwrap();
        // Under MACHINERY: all EMPs (by name) precede all PROJs.
        let kids = db.get(d1).unwrap().children.clone();
        assert_eq!(kids, vec![e1, e2, p]);
    }

    #[test]
    fn parentage_is_type_checked() {
        let (mut db, d1, _) = sample();
        let e = db
            .insert("EMP", &[("EMP-NAME", Value::str("X"))], Some(d1))
            .unwrap();
        // PROJ under an EMP is illegal (EMP has no PROJ child).
        assert!(db
            .insert("PROJ", &[("PROJ-NAME", Value::str("P"))], Some(e))
            .is_err());
        // EMP with no parent is illegal.
        assert!(db
            .insert("EMP", &[("EMP-NAME", Value::str("Y"))], None)
            .is_err());
        // DIV with a parent is illegal.
        assert!(db
            .insert("DIV", &[("DIV-NAME", Value::str("Z"))], Some(d1))
            .is_err());
    }

    #[test]
    fn delete_cascades_subtree() {
        let (mut db, d1, d2) = sample();
        db.insert("EMP", &[("EMP-NAME", Value::str("A"))], Some(d1))
            .unwrap();
        db.insert("EMP", &[("EMP-NAME", Value::str("B"))], Some(d1))
            .unwrap();
        let n = db.delete(d1).unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.preorder(), vec![d2]);
    }

    #[test]
    fn replace_repositions_on_seq_change() {
        let (mut db, d1, _) = sample();
        let a = db
            .insert("EMP", &[("EMP-NAME", Value::str("ADAMS"))], Some(d1))
            .unwrap();
        let z = db
            .insert("EMP", &[("EMP-NAME", Value::str("ZOLA"))], Some(d1))
            .unwrap();
        db.replace(a, &[("EMP-NAME", Value::str("ZZTOP"))]).unwrap();
        assert_eq!(db.get(d1).unwrap().children, vec![z, a]);
    }

    #[test]
    fn occurrences_follow_hierarchic_order() {
        let (mut db, d1, d2) = sample();
        let e_mach = db
            .insert("EMP", &[("EMP-NAME", Value::str("M1"))], Some(d1))
            .unwrap();
        let e_aero = db
            .insert("EMP", &[("EMP-NAME", Value::str("A1"))], Some(d2))
            .unwrap();
        // AEROSPACE's employees come first because AEROSPACE is first.
        assert_eq!(db.occurrences_of("EMP"), vec![e_aero, e_mach]);
    }

    #[test]
    fn stepwise_navigation_matches_preorder_without_rebuilds() {
        let (mut db, d1, d2) = sample();
        let e1 = db
            .insert("EMP", &[("EMP-NAME", Value::str("A1"))], Some(d2))
            .unwrap();
        let e2 = db
            .insert("EMP", &[("EMP-NAME", Value::str("M1"))], Some(d1))
            .unwrap();
        let p1 = db
            .insert("PROJ", &[("PROJ-NAME", Value::str("P1"))], Some(d1))
            .unwrap();
        // Full walk via next_in_preorder equals the materialized preorder.
        let expected = db.preorder();
        assert_eq!(expected, vec![d2, e1, d1, e2, p1]);
        let mut walked = Vec::new();
        let mut cur = None;
        while let Some(n) = db.next_in_preorder(cur, None) {
            walked.push(n);
            cur = Some(n);
        }
        assert_eq!(walked, expected);
        // The whole walk reused one cache build (the preorder() call).
        assert_eq!(db.access_stats().snapshot().preorder_rebuilds, 1);
        // Type-filtered navigation.
        assert_eq!(db.next_in_preorder(None, Some("EMP")), Some(e1));
        assert_eq!(db.next_in_preorder(Some(e1), Some("EMP")), Some(e2));
        assert_eq!(db.next_in_preorder(Some(e2), Some("EMP")), None);
        // Parent-bounded navigation (GNP): stays inside d1's subtree.
        assert_eq!(db.next_within(d1, None, None), Some(e2));
        assert_eq!(db.next_within(d1, Some(e2), None), Some(p1));
        assert_eq!(db.next_within(d1, Some(p1), None), None);
        assert_eq!(db.next_within(d2, None, Some("PROJ")), None);
        db.check_access_structures().unwrap();
    }

    #[test]
    fn cache_invalidates_on_mutation_and_stays_consistent() {
        let (mut db, d1, _) = sample();
        let _ = db.preorder();
        let a = db
            .insert("EMP", &[("EMP-NAME", Value::str("ADAMS"))], Some(d1))
            .unwrap();
        let _ = db.preorder(); // rebuild #2 after insert
        db.replace(a, &[("AGE", Value::Int(30))]).unwrap();
        // Non-sequence replace keeps the cache.
        assert_eq!(db.access_stats().snapshot().preorder_rebuilds, 2);
        db.check_access_structures().unwrap();
        db.replace(a, &[("EMP-NAME", Value::str("ZZ"))]).unwrap();
        db.delete(a).unwrap();
        let _ = db.preorder();
        db.check_access_structures().unwrap();
        assert_eq!(db.access_stats().snapshot().preorder_rebuilds, 3);
    }

    #[test]
    fn field_access_and_type_checks() {
        let (mut db, d1, _) = sample();
        let e = db
            .insert(
                "EMP",
                &[("EMP-NAME", Value::str("X")), ("AGE", Value::Int(40))],
                Some(d1),
            )
            .unwrap();
        assert_eq!(db.field_value(e, "AGE").unwrap(), Value::Int(40));
        assert!(db.field_value(e, "NOPE").is_err());
        assert!(db
            .insert("EMP", &[("AGE", Value::str("old"))], Some(d1))
            .is_err());
    }
}
