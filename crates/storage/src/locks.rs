//! Lock table and concurrency manager for the conversion service.
//!
//! The 1979 framework assumes one conversion at a time; a long-running
//! service does not. This module supplies the concurrency-control half of
//! that jump, modeled on SimpleDB's `tx/{lock_table,concurrency_mgr}`
//! design (the ROADMAP's named exemplar):
//!
//! * [`LockTable`] — one shared table mapping a [`LockRes`] (an engine, or
//!   one record type within an engine) to its grant state: `n` shared
//!   holders, or one exclusive holder. Requests that conflict **wait with a
//!   timeout** on a condition variable; expiry is the deadlock-resolution
//!   policy, exactly as in SimpleDB — no waits-for graph, just a bounded
//!   wait and a typed [`LockError::Timeout`] the caller converts into a
//!   retry or a degradation (`PipelineError::LockTimeout` feeds the
//!   conversion fallback ladder).
//! * [`ConcurrencyMgr`] — the per-session view. It remembers which locks
//!   the session holds so re-requests are free, upgrades shared → exclusive
//!   in place, acquires whole lock *sets* in sorted [`LockRes`] order
//!   (ordered acquisition cannot deadlock, which the unit tests assert),
//!   and releases everything on drop.
//!
//! Lock *kinds* follow the service's two-mode workload: update-free
//! verification runs take [`LockKind::Shared`] and overlap freely — the
//! read-read fast path — while mutating verifications take
//! [`LockKind::Exclusive`] on the record types they write (plus a shared
//! engine-level lock) and therefore serialize only against conflicting
//! work, never against disjoint record types.
//!
//! Instrumentation: grants are counted into the ambient `dbpc-obs` sheet
//! under [`LOCKS_SHARED`] / [`LOCKS_EXCLUSIVE`] / [`LOCKS_UPGRADES`]
//! (deterministic work counters). Wait telemetry — [`LOCKS_WAITS`] /
//! [`LOCKS_TIMEOUTS`] / [`LOCKS_WAIT_NS`] — is scheduling-dependent, so it
//! deliberately does **not** touch the ambient sheet: earlier revisions
//! recorded it into whichever worker's thread-local sheet happened to
//! block (some while still holding the table mutex), which made per-job
//! metric deltas vary across worker counts. Instead the table aggregates
//! waits into process-wide atomics ([`LockTable::wait_stats`]) and the
//! service publishes one [`WaitStats::publish`] frame at shutdown — same
//! metric names, same `Racy`/`Time` kinds, one deterministic merge point.

use dbpc_obs::metrics::{MetricValue, MetricsFrame};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Metric: shared locks granted.
pub const LOCKS_SHARED: &str = "locks.shared";
/// Metric: exclusive locks granted (upgrades included).
pub const LOCKS_EXCLUSIVE: &str = "locks.exclusive";
/// Metric: shared→exclusive upgrades granted.
pub const LOCKS_UPGRADES: &str = "locks.upgrades";
/// Metric: requests that had to block (scheduling-dependent).
pub const LOCKS_WAITS: &str = "locks.waits";
/// Metric: requests that timed out (scheduling-dependent).
pub const LOCKS_TIMEOUTS: &str = "locks.timeouts";
/// Metric: wall-clock nanoseconds spent blocked on the lock table.
pub const LOCKS_WAIT_NS: &str = "locks.wait_ns";

/// A lockable resource: a whole engine, or one record type within it.
///
/// `space` namespaces the table so one [`LockTable`] can serve many engines
/// (the conversion service uses one space per context × side). The derived
/// `Ord` is the canonical acquisition order: engine-level locks sort before
/// the record types of the same space, so hierarchical (engine + type)
/// lock sets acquire coarse-to-fine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockRes {
    /// Caller-chosen namespace (engine identity).
    pub space: u32,
    /// The unit within the namespace.
    pub unit: LockUnit,
}

/// Granularity of a lock within one space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockUnit {
    /// The whole engine.
    Engine,
    /// One record type (relational table / hierarchic segment analogues
    /// use the same namespace).
    RecordType(String),
}

impl LockRes {
    pub fn engine(space: u32) -> LockRes {
        LockRes {
            space,
            unit: LockUnit::Engine,
        }
    }

    pub fn record_type(space: u32, name: impl Into<String>) -> LockRes {
        LockRes {
            space,
            unit: LockUnit::RecordType(name.into()),
        }
    }
}

impl fmt::Display for LockRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.unit {
            LockUnit::Engine => write!(f, "engine#{}", self.space),
            LockUnit::RecordType(n) => write!(f, "engine#{}/{n}", self.space),
        }
    }
}

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    Shared,
    Exclusive,
}

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The request waited out its budget — the deadlock-resolution signal.
    Timeout { resource: LockRes },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout { resource } => {
                write!(f, "lock request timed out on {resource}")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Grant state of one resource: SimpleDB's integer convention, split into
/// named fields. `writer` excludes everything; otherwise `readers` shared
/// holders coexist.
#[derive(Debug, Default, Clone, Copy)]
struct Grant {
    readers: usize,
    writer: bool,
}

impl Grant {
    fn idle(&self) -> bool {
        self.readers == 0 && !self.writer
    }
}

/// Aggregated wait telemetry of one [`LockTable`] (see
/// [`LockTable::wait_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitStats {
    /// Requests that had to block.
    pub waits: u64,
    /// Requests that waited out their budget.
    pub timeouts: u64,
    /// Total wall-clock nanoseconds spent blocked.
    pub wait_ns: u64,
}

impl WaitStats {
    /// Write the stats into `frame` under the `locks.*` names with their
    /// documented kinds (`Racy` counts, `Time` nanoseconds). Zero stats
    /// add no entries, keeping wait-free runs' reports unchanged.
    pub fn publish(&self, frame: &mut MetricsFrame) {
        if self.waits > 0 {
            frame.set(LOCKS_WAITS, MetricValue::Racy(self.waits));
        }
        if self.timeouts > 0 {
            frame.set(LOCKS_TIMEOUTS, MetricValue::Racy(self.timeouts));
        }
        if self.wait_ns > 0 {
            frame.set(LOCKS_WAIT_NS, MetricValue::Time(self.wait_ns));
        }
    }
}

/// The shared lock table (see module docs).
#[derive(Debug, Default)]
pub struct LockTable {
    grants: Mutex<HashMap<LockRes, Grant>>,
    released: Condvar,
    waits: AtomicU64,
    timeouts: AtomicU64,
    wait_ns: AtomicU64,
}

/// Recover the grant map from a poisoned mutex: the table's invariants are
/// maintained only while the guard is held, and every critical section is a
/// plain field update, so the state is consistent whenever the guard is
/// released — even by unwinding.
fn lock_grants(table: &LockTable) -> MutexGuard<'_, HashMap<LockRes, Grant>> {
    table.grants.lock().unwrap_or_else(PoisonError::into_inner)
}

impl LockTable {
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Acquire a shared lock, waiting up to `timeout` for the writer (if
    /// any) to release.
    pub fn s_lock(&self, res: &LockRes, timeout: Duration) -> Result<(), LockError> {
        self.wait_for(res, timeout, |g| !g.writer, |g| g.readers += 1)?;
        dbpc_obs::count(LOCKS_SHARED, 1);
        Ok(())
    }

    /// Acquire an exclusive lock, waiting up to `timeout` for every other
    /// holder to release.
    pub fn x_lock(&self, res: &LockRes, timeout: Duration) -> Result<(), LockError> {
        self.wait_for(res, timeout, |g| g.idle(), |g| g.writer = true)?;
        dbpc_obs::count(LOCKS_EXCLUSIVE, 1);
        Ok(())
    }

    /// Upgrade a shared lock the caller already holds to exclusive,
    /// waiting up to `timeout` for the *other* readers to drain. On
    /// timeout the shared lock is still held.
    pub fn upgrade(&self, res: &LockRes, timeout: Duration) -> Result<(), LockError> {
        self.wait_for(
            res,
            timeout,
            |g| g.readers == 1 && !g.writer,
            |g| {
                g.readers = 0;
                g.writer = true;
            },
        )?;
        dbpc_obs::count(LOCKS_UPGRADES, 1);
        dbpc_obs::count(LOCKS_EXCLUSIVE, 1);
        Ok(())
    }

    /// Release one lock of `kind` on `res` and wake all waiters.
    pub fn unlock(&self, res: &LockRes, kind: LockKind) {
        let mut grants = lock_grants(self);
        if let Some(g) = grants.get_mut(res) {
            match kind {
                LockKind::Shared => g.readers = g.readers.saturating_sub(1),
                LockKind::Exclusive => g.writer = false,
            }
            if g.idle() {
                grants.remove(res);
            }
        }
        drop(grants);
        self.released.notify_all();
    }

    /// Core wait loop: block until `ready` holds for the resource's grant,
    /// then apply `take`; give up after `timeout`.
    fn wait_for(
        &self,
        res: &LockRes,
        timeout: Duration,
        ready: impl Fn(&Grant) -> bool,
        take: impl FnOnce(&mut Grant),
    ) -> Result<(), LockError> {
        let mut grants = lock_grants(self);
        if !ready(grants.entry(res.clone()).or_default()) {
            self.waits.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            let deadline = started + timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    // Leave an untouched default entry tidy.
                    if let Some(g) = grants.get(res) {
                        if g.idle() {
                            grants.remove(res);
                        }
                    }
                    // Record only after the table mutex is released: wait
                    // accounting must never extend the critical section.
                    drop(grants);
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.wait_ns
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    return Err(LockError::Timeout {
                        resource: res.clone(),
                    });
                }
                let (g, _) = self
                    .released
                    .wait_timeout(grants, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                grants = g;
                if ready(grants.entry(res.clone()).or_default()) {
                    break;
                }
            }
            take(grants.entry(res.clone()).or_default());
            drop(grants);
            self.wait_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return Ok(());
        }
        take(grants.entry(res.clone()).or_default());
        Ok(())
    }

    /// Aggregated wait telemetry since the table was created. Reading is
    /// wait-free; the counters are process-wide, so a report built from
    /// them is independent of which worker thread happened to block.
    pub fn wait_stats(&self) -> WaitStats {
        WaitStats {
            waits: self.waits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Diagnostic: number of resources currently held (any mode).
    pub fn held_resources(&self) -> usize {
        lock_grants(self).len()
    }
}

/// The per-session lock view (see module docs): tracks held locks, makes
/// re-requests idempotent, upgrades in place, and releases everything on
/// [`ConcurrencyMgr::release_all`] or drop.
#[derive(Debug)]
pub struct ConcurrencyMgr<'a> {
    table: &'a LockTable,
    held: BTreeMap<LockRes, LockKind>,
}

impl<'a> ConcurrencyMgr<'a> {
    pub fn new(table: &'a LockTable) -> ConcurrencyMgr<'a> {
        ConcurrencyMgr {
            table,
            held: BTreeMap::new(),
        }
    }

    /// Acquire a shared lock (no-op if already held in either mode).
    pub fn s_lock(&mut self, res: &LockRes, timeout: Duration) -> Result<(), LockError> {
        if self.held.contains_key(res) {
            return Ok(());
        }
        self.table.s_lock(res, timeout)?;
        self.held.insert(res.clone(), LockKind::Shared);
        Ok(())
    }

    /// Acquire an exclusive lock; upgrades in place when a shared lock on
    /// the same resource is already held.
    pub fn x_lock(&mut self, res: &LockRes, timeout: Duration) -> Result<(), LockError> {
        match self.held.get(res) {
            Some(LockKind::Exclusive) => Ok(()),
            Some(LockKind::Shared) => {
                self.table.upgrade(res, timeout)?;
                self.held.insert(res.clone(), LockKind::Exclusive);
                Ok(())
            }
            None => {
                self.table.x_lock(res, timeout)?;
                self.held.insert(res.clone(), LockKind::Exclusive);
                Ok(())
            }
        }
    }

    /// Acquire a whole lock set in sorted [`LockRes`] order (exclusive
    /// wins when a resource appears in both sets). Ordered acquisition
    /// across all sessions is deadlock-free by construction; a timeout
    /// releases everything this call acquired before returning, so the
    /// caller can retry or degrade with no residue.
    pub fn acquire(
        &mut self,
        lock_set: &BTreeMap<LockRes, LockKind>,
        timeout: Duration,
    ) -> Result<(), LockError> {
        for (res, kind) in lock_set {
            let outcome = match kind {
                LockKind::Shared => self.s_lock(res, timeout),
                LockKind::Exclusive => self.x_lock(res, timeout),
            };
            if let Err(e) = outcome {
                self.release_all();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Release every held lock.
    pub fn release_all(&mut self) {
        for (res, kind) in std::mem::take(&mut self.held) {
            self.table.unlock(&res, kind);
        }
    }

    /// Locks currently held by this session.
    pub fn held(&self) -> &BTreeMap<LockRes, LockKind> {
        &self.held
    }
}

impl Drop for ConcurrencyMgr<'_> {
    fn drop(&mut self) {
        self.release_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    const LONG: Duration = Duration::from_secs(5);
    const SHORT: Duration = Duration::from_millis(40);

    fn emp(space: u32) -> LockRes {
        LockRes::record_type(space, "EMP")
    }

    #[test]
    fn shared_locks_overlap() {
        let table = LockTable::new();
        let r = emp(0);
        table.s_lock(&r, LONG).unwrap();
        table.s_lock(&r, LONG).unwrap();
        table.unlock(&r, LockKind::Shared);
        table.unlock(&r, LockKind::Shared);
        assert_eq!(table.held_resources(), 0);
    }

    #[test]
    fn exclusive_excludes_and_times_out() {
        let table = LockTable::new();
        let r = emp(0);
        table.x_lock(&r, LONG).unwrap();
        assert_eq!(
            table.s_lock(&r, SHORT),
            Err(LockError::Timeout {
                resource: r.clone()
            })
        );
        assert_eq!(
            table.x_lock(&r, SHORT),
            Err(LockError::Timeout {
                resource: r.clone()
            })
        );
        table.unlock(&r, LockKind::Exclusive);
        table.s_lock(&r, LONG).unwrap();
        table.unlock(&r, LockKind::Shared);
    }

    #[test]
    fn blocked_writer_proceeds_when_readers_drain() {
        let table = Arc::new(LockTable::new());
        let r = emp(0);
        table.s_lock(&r, LONG).unwrap();
        let t2 = Arc::clone(&table);
        let r2 = r.clone();
        let writer = thread::spawn(move || t2.x_lock(&r2, LONG));
        thread::sleep(Duration::from_millis(20));
        table.unlock(&r, LockKind::Shared);
        writer.join().unwrap().unwrap();
        table.unlock(&r, LockKind::Exclusive);
        assert_eq!(table.held_resources(), 0);
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_wins() {
        let table = Arc::new(LockTable::new());
        let r = emp(0);
        let mut mgr = ConcurrencyMgr::new(&table);
        mgr.s_lock(&r, LONG).unwrap();
        // A sibling reader blocks the upgrade …
        table.s_lock(&r, LONG).unwrap();
        assert_eq!(
            mgr.x_lock(&r, SHORT),
            Err(LockError::Timeout {
                resource: r.clone()
            })
        );
        // … and the shared lock survives the failed upgrade.
        assert_eq!(mgr.held().get(&r), Some(&LockKind::Shared));
        // Once the sibling releases, the upgrade succeeds in place.
        table.unlock(&r, LockKind::Shared);
        mgr.x_lock(&r, LONG).unwrap();
        assert_eq!(mgr.held().get(&r), Some(&LockKind::Exclusive));
        // Now exclusive: a third party cannot share.
        assert!(table.s_lock(&r, SHORT).is_err());
        mgr.release_all();
        assert_eq!(table.held_resources(), 0);
    }

    #[test]
    fn timeout_releases_partial_lock_set() {
        let table = LockTable::new();
        let a = LockRes::record_type(0, "A");
        let b = LockRes::record_type(0, "B");
        table.x_lock(&b, LONG).unwrap();
        let mut mgr = ConcurrencyMgr::new(&table);
        let mut want = BTreeMap::new();
        want.insert(a.clone(), LockKind::Exclusive);
        want.insert(b.clone(), LockKind::Exclusive);
        let err = mgr.acquire(&want, SHORT).unwrap_err();
        assert_eq!(err, LockError::Timeout { resource: b });
        // The partial grant on A was rolled back.
        assert!(mgr.held().is_empty());
        table.x_lock(&a, SHORT).unwrap();
    }

    /// Two sessions acquiring overlapping lock sets in sorted order never
    /// deadlock, whatever the interleaving: the classic A→B vs B→A cycle
    /// cannot form because both sessions request A first.
    #[test]
    fn ordered_acquisition_cannot_deadlock() {
        let table = Arc::new(LockTable::new());
        let done = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for w in 0..4u32 {
            let table = Arc::clone(&table);
            let done = Arc::clone(&done);
            workers.push(thread::spawn(move || {
                // Worker w wants {A, B, C} exclusively, discovered in a
                // worker-specific (unsorted) order; `acquire` sorts.
                let names = ["A", "B", "C"];
                for round in 0..20 {
                    let mut want = BTreeMap::new();
                    for i in 0..names.len() {
                        let name = names[(w as usize + i + round) % names.len()];
                        want.insert(LockRes::record_type(0, name), LockKind::Exclusive);
                    }
                    let mut mgr = ConcurrencyMgr::new(&table);
                    mgr.acquire(&want, Duration::from_secs(10)).unwrap();
                    mgr.release_all();
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in workers {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert_eq!(table.held_resources(), 0);
    }

    #[test]
    fn engine_lock_sorts_before_record_types() {
        let e = LockRes::engine(3);
        let t = LockRes::record_type(3, "AAA");
        assert!(e < t, "coarse-to-fine acquisition order");
        assert!(LockRes::engine(2) < e, "spaces order first");
    }

    /// Wait telemetry aggregates in the table's atomics, not in whichever
    /// worker's thread-local metrics sheet happened to block — the fix for
    /// worker-count-dependent RunReports.
    #[test]
    fn wait_telemetry_stays_out_of_the_ambient_sheet() {
        let before = dbpc_obs::local_snapshot();
        let table = Arc::new(LockTable::new());
        let r = emp(0);
        table.x_lock(&r, LONG).unwrap();
        assert_eq!(table.wait_stats(), WaitStats::default());

        // A timeout and a successful blocked wait, both on this thread.
        assert!(table.s_lock(&r, SHORT).is_err());
        let t2 = Arc::clone(&table);
        let r2 = r.clone();
        let unlocker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            t2.unlock(&r2, LockKind::Exclusive);
        });
        table.s_lock(&r, LONG).unwrap();
        unlocker.join().unwrap();
        table.unlock(&r, LockKind::Shared);

        let stats = table.wait_stats();
        assert_eq!(stats.waits, 2);
        assert_eq!(stats.timeouts, 1);
        assert!(stats.wait_ns > 0);

        // Nothing leaked into the ambient sheet (grant counters may have).
        let delta = dbpc_obs::local_snapshot().since(&before);
        for name in [LOCKS_WAITS, LOCKS_TIMEOUTS, LOCKS_WAIT_NS] {
            assert!(delta.get(name).is_none(), "{name} leaked into the sheet");
        }

        // Publishing produces the documented names and kinds.
        let mut frame = MetricsFrame::new();
        stats.publish(&mut frame);
        assert_eq!(frame.counter(LOCKS_WAITS), 2);
        assert_eq!(frame.counter(LOCKS_TIMEOUTS), 1);
        assert_eq!(frame.time_ns(LOCKS_WAIT_NS), stats.wait_ns);
        assert!(frame
            .get(LOCKS_WAITS)
            .is_some_and(|v| !v.is_deterministic()));
    }

    #[test]
    fn zero_wait_stats_publish_nothing() {
        let stats = WaitStats::default();
        let mut frame = MetricsFrame::new();
        stats.publish(&mut frame);
        assert_eq!(frame, MetricsFrame::new());
    }

    #[test]
    fn rerequests_are_idempotent() {
        let table = LockTable::new();
        let r = emp(0);
        let mut mgr = ConcurrencyMgr::new(&table);
        mgr.s_lock(&r, LONG).unwrap();
        mgr.s_lock(&r, LONG).unwrap();
        mgr.x_lock(&r, LONG).unwrap();
        mgr.x_lock(&r, LONG).unwrap();
        drop(mgr); // release-on-drop
        assert_eq!(table.held_resources(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The classic upgrade deadlock, model-checked: N sessions all
        /// hold the same shared lock (plus a random spread of extra
        /// shared resources) and race to upgrade it. Unbounded waits
        /// would deadlock — every upgrader waits for the *other*
        /// readers to drain — so the bounded-wait table must instead
        /// resolve every race within its timeout: every thread
        /// finishes, upgraded critical sections never overlap, a
        /// timed-out session's `release_all` lets a rival drain and
        /// win, and once everyone exits the table is empty and still
        /// serviceable.
        #[test]
        fn concurrent_upgrade_races_resolve_within_their_timeouts(
            threads in 2usize..5,
            timeouts in prop::collection::vec(5u64..40, 4usize),
            extras in 0u32..3,
        ) {
            let table = Arc::new(LockTable::new());
            let barrier = Arc::new(std::sync::Barrier::new(threads));
            let writers = Arc::new(AtomicUsize::new(0));
            let winners = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let table = Arc::clone(&table);
                    let barrier = Arc::clone(&barrier);
                    let writers = Arc::clone(&writers);
                    let winners = Arc::clone(&winners);
                    let timeout = Duration::from_millis(timeouts[i % timeouts.len()]);
                    thread::spawn(move || {
                        let mut mgr = ConcurrencyMgr::new(&table);
                        let mut set = BTreeMap::new();
                        set.insert(emp(0), LockKind::Shared);
                        for e in 0..extras {
                            set.insert(
                                LockRes::record_type(1 + e, "DEPT"),
                                LockKind::Shared,
                            );
                        }
                        mgr.acquire(&set, LONG).unwrap();
                        barrier.wait();
                        match mgr.x_lock(&emp(0), timeout) {
                            Ok(()) => {
                                assert_eq!(
                                    writers.fetch_add(1, Ordering::SeqCst),
                                    0,
                                    "two sessions inside an upgraded section"
                                );
                                thread::sleep(Duration::from_millis(1));
                                writers.fetch_sub(1, Ordering::SeqCst);
                                winners.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(LockError::Timeout { .. }) => {
                                // The service's ladder discipline: a
                                // timeout releases the whole lock set so
                                // a rival's upgrade can drain.
                                mgr.release_all();
                                assert!(mgr.held().is_empty());
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("upgrade race must not deadlock or panic");
            }
            prop_assert_eq!(table.held_resources(), 0);
            // Still serviceable: a fresh exclusive acquires instantly.
            table.x_lock(&emp(0), SHORT).unwrap();
            table.unlock(&emp(0), LockKind::Exclusive);
            prop_assert_eq!(table.held_resources(), 0);
            prop_assert!(winners.load(Ordering::SeqCst) <= threads);
        }
    }
}
