//! # dbpc-storage
//!
//! In-memory storage engines for the three data models of the paper:
//!
//! * [`NetworkDb`] — owner-coupled-set databases with ordered set
//!   occurrences, key-directed insertion, `AUTOMATIC`/`MANUAL` and
//!   `MANDATORY`/`OPTIONAL` semantics, virtual-field resolution, and
//!   enforcement of the §3.1 declarative constraint catalogue;
//! * [`RelationalDb`] — tables with primary-key uniqueness (the one
//!   constraint the paper notes the relational model enforces) and
//!   optional foreign-key checking;
//! * [`HierDb`] — IMS-like forests of segment instances with hierarchic
//!   (preorder) traversal order, the substrate for DL/I programs and the
//!   Mehl & Wang reordering experiments.
//!
//! Design rule inherited from the paper's equivalence criterion (§1.1):
//! **all iteration orders are defined and deterministic.** Converted and
//! original programs are compared by their I/O traces, so the engines never
//! let a hash-map ordering reach an observable result.

pub mod disk;
pub mod error;
pub mod hier_db;
pub mod keys;
pub mod locks;
pub mod network_db;
pub mod pool;
pub mod relational_db;
pub mod statcat;
pub mod stats;
pub mod txn;

pub use disk::{
    BufferMgr, DiskError, DiskFault, DiskFaultPlan, DiskResult, DurableNetworkDb, DurableOptions,
    FileMgr, LogMgr, SyncPolicy, TempDir,
};
pub use error::{DbError, DbResult, StatusCode};
pub use hier_db::{HierDb, SegmentInstance};
pub use keys::KeyTuple;
pub use locks::{ConcurrencyMgr, LockError, LockKind, LockRes, LockTable, LockUnit, WaitStats};
pub use network_db::{NetworkDb, RecordId, StoredRecord, SYSTEM_OWNER};
pub use relational_db::{RelationalDb, RowId};
pub use statcat::{IndexStats, SetStats, StatCatalog, TableStats, TypeStats};
pub use stats::{AccessProfile, AccessStats};
pub use txn::Savepoint;
