//! Property tests for the out-of-core record store.
//!
//! Three families, per the heap-file PR's test plan:
//!
//! * a [`HeapFile`] under a deliberately tiny buffer pool (4 frames —
//!   far smaller than the data) driven by random insert / erase /
//!   update / get / iterate / flush-and-rescan sequences must agree
//!   with an in-memory shadow map at every step, and its free-space
//!   accounting must add up;
//! * on a **paged** [`NetworkDb`], rolling a savepoint back must leave
//!   a state byte-identical to never having run the savepoint's ops —
//!   the undo journal's logical records must exactly invert what the
//!   heap backend did physically;
//! * recovering a heap image twice yields the same database as
//!   recovering it once, and both match the writer that produced it.

use dbpc_datamodel::network::{FieldDef, NetworkSchema, RecordTypeDef, SetDef};
use dbpc_datamodel::types::FieldType;
use dbpc_datamodel::value::Value;
use dbpc_storage::disk::{FileMgr, HeapFile, HeapId, TempDir};
use dbpc_storage::{NetworkDb, RecordId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const PAGE: usize = 128;
const POOL: usize = 4;

/// Deterministic payload: length spans one-byte records through chains
/// that overflow several 128-byte pages.
fn payload(tag: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add(i as u8) | 1)
        .collect::<Vec<u8>>()
}

fn schema() -> NetworkSchema {
    NetworkSchema::new("COMPANY-NAME")
        .with_record(RecordTypeDef::new(
            "DIV",
            vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
        ))
        .with_record(RecordTypeDef::new(
            "EMP",
            vec![
                FieldDef::new("EMP-NAME", FieldType::Char(25)),
                FieldDef::new("AGE", FieldType::Int(2)),
            ],
        ))
        .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
        .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
}

/// One random logical op against a paged database; mirrors the op mix
/// the engine's DML layer issues. Every op picks its target from the
/// live id list so sequences stay meaningful as records come and go.
#[derive(Debug, Clone)]
enum DbOp {
    StoreEmp { name: u16, age: i64, div: u8 },
    ModifyAge { pick: u8, age: i64 },
    Erase { pick: u8 },
    Reconnect { pick: u8, div: u8 },
}

fn db_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        3 => (any::<u16>(), 18i64..70, any::<u8>())
            .prop_map(|(name, age, div)| DbOp::StoreEmp { name, age, div }),
        2 => (any::<u8>(), 18i64..70).prop_map(|(pick, age)| DbOp::ModifyAge { pick, age }),
        1 => any::<u8>().prop_map(|pick| DbOp::Erase { pick }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(pick, div)| DbOp::Reconnect { pick, div }),
    ]
}

/// Build a paged database with a couple of divisions and apply `ops`,
/// tracking live employee ids. Ops that pick a missing target are
/// skipped — the generator is position-based, not id-based.
fn apply_ops(db: &mut NetworkDb, divs: &[RecordId], emps: &mut Vec<RecordId>, ops: &[DbOp]) {
    for op in ops {
        match op {
            DbOp::StoreEmp { name, age, div } => {
                let owner = divs[*div as usize % divs.len()];
                let id = db
                    .store(
                        "EMP",
                        &[
                            ("EMP-NAME", Value::str(format!("E{name:05}"))),
                            ("AGE", Value::Int(*age)),
                        ],
                        &[("DIV-EMP", owner)],
                    )
                    .unwrap();
                emps.push(id);
            }
            DbOp::ModifyAge { pick, age } if !emps.is_empty() => {
                let id = emps[*pick as usize % emps.len()];
                db.modify(id, &[("AGE", Value::Int(*age))]).unwrap();
            }
            DbOp::Erase { pick } if !emps.is_empty() => {
                let i = *pick as usize % emps.len();
                let id = emps.remove(i);
                db.erase(id, false).unwrap();
            }
            DbOp::Reconnect { pick, div } if !emps.is_empty() => {
                let id = emps[*pick as usize % emps.len()];
                let owner = divs[*div as usize % divs.len()];
                db.disconnect("DIV-EMP", id).unwrap();
                db.connect("DIV-EMP", owner, id).unwrap();
            }
            _ => {}
        }
    }
}

fn seeded_paged_db() -> (NetworkDb, Vec<RecordId>) {
    let mut db = NetworkDb::new_paged(schema(), PAGE, POOL).unwrap();
    let divs: Vec<RecordId> = (0..3)
        .map(|d| {
            db.store("DIV", &[("DIV-NAME", Value::str(format!("DIV-{d}")))], &[])
                .unwrap()
        })
        .collect();
    (db, divs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shadow-model check of the raw heap file: after every random
    /// insert / erase / update, every live record must read back
    /// exactly, iteration must visit exactly the shadow map's payloads,
    /// and the stats must account for every live byte. A periodic
    /// flush + fresh-handle rescan proves the disk image alone carries
    /// the whole store even though the pool held only 4 frames.
    #[test]
    fn heap_ops_match_shadow_map(
        ops in prop::collection::vec((0u8..4, any::<u8>(), 0usize..300), 1..60),
    ) {
        let dir = TempDir::new("heap-prop").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), PAGE).unwrap());
        let mut heap = HeapFile::open(Arc::clone(&fm), "heap.dat", POOL).unwrap();
        let mut shadow: BTreeMap<HeapId, Vec<u8>> = BTreeMap::new();
        let mut order: Vec<HeapId> = Vec::new();

        for (step, &(op, tag, len)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let bytes = payload(tag, len.max(1));
                    let id = heap.insert(&bytes).unwrap();
                    prop_assert!(shadow.insert(id, bytes).is_none(),
                        "insert reused live handle {id:?}");
                    order.push(id);
                }
                1 if !order.is_empty() => {
                    let id = order.remove(tag as usize % order.len());
                    heap.erase(id).unwrap();
                    shadow.remove(&id);
                }
                2 if !order.is_empty() => {
                    let i = tag as usize % order.len();
                    let old = order[i];
                    let bytes = payload(tag.wrapping_add(13), len.max(1));
                    let id = heap.update(old, &bytes).unwrap();
                    shadow.remove(&old);
                    prop_assert!(shadow.insert(id, bytes).is_none(),
                        "update reused live handle {id:?}");
                    order[i] = id;
                }
                3 => {
                    // Crash-free restart: flush, reopen a fresh handle
                    // over the same file, keep going.
                    heap.flush().unwrap();
                    heap = HeapFile::open(Arc::clone(&fm), "heap.dat", POOL).unwrap();
                }
                _ => {}
            }

            // Point reads see exactly the modeled bytes.
            for (id, bytes) in &shadow {
                prop_assert_eq!(&heap.get(*id).unwrap(), bytes,
                    "step {}: record {:?} read back wrong", step, id);
            }
            // Iteration visits every live record exactly once.
            let mut seen: BTreeMap<HeapId, Vec<u8>> = BTreeMap::new();
            heap.for_each(&mut |id, bytes| {
                assert!(seen.insert(id, bytes.to_vec()).is_none());
                Ok(())
            })
            .unwrap();
            prop_assert_eq!(&seen, &shadow, "step {}: iteration drifted", step);
            // Stats account for every live payload byte.
            let stats = heap.stats();
            prop_assert_eq!(stats.records as usize, shadow.len());
            let live: u64 = shadow.values().map(|b| b.len() as u64).sum();
            prop_assert_eq!(stats.live_bytes, live, "step {}: live-byte accounting", step);
        }
    }

    /// Savepoint rollback on a paged database is equivalent to never
    /// having run the savepoint's ops: fingerprints and full state
    /// images match a twin database that only ran the prefix — even
    /// though the heap file underneath saw (and physically kept) every
    /// aborted insert and update.
    #[test]
    fn savepoint_rollback_equals_never_ran(
        prefix in prop::collection::vec(db_op(), 0..25),
        suffix in prop::collection::vec(db_op(), 1..25),
    ) {
        let (mut db, divs) = seeded_paged_db();
        let mut emps = Vec::new();
        apply_ops(&mut db, &divs, &mut emps, &prefix);

        let (mut twin, twin_divs) = seeded_paged_db();
        let mut twin_emps = Vec::new();
        apply_ops(&mut twin, &twin_divs, &mut twin_emps, &prefix);

        let sp = db.begin_savepoint();
        let mut scratch = emps.clone();
        apply_ops(&mut db, &divs, &mut scratch, &suffix);
        db.rollback_to(sp);

        prop_assert_eq!(db.fingerprint(), twin.fingerprint(),
            "rollback left a different logical state");
        prop_assert_eq!(db.state_bytes(), twin.state_bytes(),
            "rollback left different state bytes");
    }

    /// Recovery is idempotent: scan-rebuild a flushed heap image twice
    /// with fresh handles; both recovered databases must equal the
    /// writer — fingerprint and state image — and each other.
    #[test]
    fn heap_recovery_twice_equals_recovery_once(
        ops in prop::collection::vec(db_op(), 1..40),
    ) {
        let dir = TempDir::new("heap-recover-prop").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), PAGE).unwrap());
        let mut db =
            NetworkDb::paged_on(schema(), Arc::clone(&fm), "heap.dat", POOL).unwrap();
        let divs: Vec<RecordId> = (0..3)
            .map(|d| {
                db.store("DIV", &[("DIV-NAME", Value::str(format!("DIV-{d}")))], &[])
                    .unwrap()
            })
            .collect();
        let mut emps = Vec::new();
        apply_ops(&mut db, &divs, &mut emps, &ops);
        db.sync_links().unwrap();
        db.flush_heap().unwrap();
        let (next_id, seqs) = db.allocator_state();

        let once = NetworkDb::recover_paged(
            schema(), Arc::clone(&fm), "heap.dat", POOL, next_id, &seqs,
        )
        .unwrap();
        let twice = NetworkDb::recover_paged(
            schema(), Arc::clone(&fm), "heap.dat", POOL, next_id, &seqs,
        )
        .unwrap();

        prop_assert_eq!(once.fingerprint(), db.fingerprint(),
            "recovered database drifted from the writer");
        prop_assert_eq!(twice.fingerprint(), once.fingerprint(),
            "second recovery drifted from the first");
        prop_assert_eq!(once.state_bytes(), db.state_bytes());
        prop_assert_eq!(twice.state_bytes(), once.state_bytes());
        prop_assert_eq!(once.allocator_state(), db.allocator_state());
    }
}
