//! Property tests for the disk substrate's safety invariants.
//!
//! Three families, per the durability PR's test plan:
//!
//! * random pin/unpin/write/flush interleavings never evict a pinned
//!   page and always round-trip page bytes through the buffer pool;
//! * WAL recovery is idempotent — opening a log with a lost or torn
//!   tail twice yields exactly the records and file bytes of opening
//!   it once;
//! * scratch directories clean up after themselves (the temp-dir
//!   hygiene guard).

use dbpc_storage::disk::tempdir::scratch_root;
use dbpc_storage::disk::{BlockId, BufferMgr, DiskError, FileMgr, LogMgr, Page, TempDir};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const PAGE: usize = 64;
const BLOCKS: u64 = 6;
const CAPACITY: usize = 3;

/// Read a whole paged file back as one byte vector.
fn file_bytes(fm: &FileMgr, name: &str) -> Vec<u8> {
    let mut page = Page::new(fm.page_size());
    let mut out = Vec::new();
    for b in 0..fm.block_count(name).unwrap() {
        fm.read(&BlockId::new(name, b), &mut page).unwrap();
        out.extend_from_slice(page.as_slice());
    }
    out
}

fn wal_payload(i: usize, len: usize) -> Vec<u8> {
    vec![(i as u8).wrapping_add(1); len]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-checked buffer pool: drive a random interleaving of
    /// pin / write / unpin / flush against a shadow map of what every
    /// block should contain. A pinned frame must never change out from
    /// under its holder (that would mean it was evicted), `pinned()`
    /// must track the distinct pinned blocks exactly, a full pool must
    /// abort rather than evict, and after a final flush a fresh pool
    /// over the same file must read back the shadow map byte-for-byte.
    #[test]
    fn buffer_interleavings_preserve_pins_and_bytes(
        ops in prop::collection::vec((0u8..4, 0u64..BLOCKS, any::<u8>()), 1..40),
    ) {
        let dir = TempDir::new("buffer-prop").unwrap();
        let fm = Arc::new(FileMgr::new(dir.path(), PAGE).unwrap());
        let mut bm = BufferMgr::new(fm.clone(), CAPACITY).unwrap();

        // Shadow model: what each block's page should read as right now.
        let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut pinned: Vec<(dbpc_storage::disk::FrameId, u64)> = Vec::new();

        for &(op, block, fill) in &ops {
            match op {
                // Pin: a hit or fault-in must surface the modeled bytes;
                // a full pool must refuse with BufferAbort, never evict.
                0 => match bm.pin(&BlockId::new("data", block), None) {
                    Ok(id) => {
                        let exp = expected.entry(block).or_insert_with(|| vec![0u8; PAGE]);
                        let got = bm.page(id).unwrap().read_at(0, PAGE).unwrap();
                        prop_assert_eq!(&got, exp, "pin of block {} saw stale bytes", block);
                        pinned.push((id, block));
                    }
                    Err(DiskError::BufferAbort { capacity }) => {
                        let held: BTreeSet<u64> = pinned.iter().map(|p| p.1).collect();
                        prop_assert_eq!(capacity, CAPACITY);
                        prop_assert_eq!(
                            held.len(), CAPACITY,
                            "abort with only {} distinct blocks pinned", held.len()
                        );
                        prop_assert!(!held.contains(&block), "abort on an already-pinned block");
                    }
                    Err(e) => prop_assert!(false, "unexpected pin failure: {e}"),
                },
                // Write through a pinned handle, mirrored into the model.
                1 if !pinned.is_empty() => {
                    let (id, blk) = pinned[block as usize % pinned.len()];
                    let off = fill as usize % (PAGE - 8);
                    bm.page_mut(id).unwrap().write_at(off, &[fill; 8]).unwrap();
                    bm.mark_dirty(id, 0).unwrap();
                    let exp = expected.entry(blk).or_insert_with(|| vec![0u8; PAGE]);
                    exp[off..off + 8].fill(fill);
                }
                2 if !pinned.is_empty() => {
                    let (id, _) = pinned.remove(block as usize % pinned.len());
                    bm.unpin(id).unwrap();
                }
                3 => bm.flush_all(None).unwrap(),
                _ => {}
            }

            // Invariants after every step: pin accounting is exact, and
            // every pinned frame still holds its block's modeled bytes.
            let held: BTreeSet<u64> = pinned.iter().map(|p| p.1).collect();
            prop_assert_eq!(bm.pinned(), held.len());
            for &(id, blk) in &pinned {
                let page = bm.page(id);
                prop_assert!(page.is_ok(), "pinned frame for block {} was evicted", blk);
                let got = page.unwrap().read_at(0, PAGE).unwrap();
                prop_assert_eq!(&got, &expected[&blk], "pinned block {} mutated underneath", blk);
            }
        }

        // Drain pins, force everything to disk, and check durability with
        // a brand-new pool over the same file.
        for (id, _) in pinned.drain(..) {
            bm.unpin(id).unwrap();
        }
        bm.flush_all(None).unwrap();
        drop(bm);
        let mut fresh = BufferMgr::new(fm, CAPACITY).unwrap();
        for (blk, exp) in &expected {
            let id = fresh.pin(&BlockId::new("data", *blk), None).unwrap();
            let got = fresh.page(id).unwrap().read_at(0, PAGE).unwrap();
            prop_assert_eq!(&got, exp, "block {} did not round-trip to disk", blk);
            fresh.unpin(id).unwrap();
        }
    }

    /// WAL recovery is idempotent: whatever tail a crash leaves — a
    /// staged-but-unflushed suffix, or garbage torn into the stream right
    /// after the durable prefix — recovering twice yields exactly the
    /// records and the file bytes of recovering once, and never loses a
    /// flushed record.
    #[test]
    fn wal_recovery_twice_equals_recovery_once(
        lens in prop::collection::vec(1usize..200, 1..16),
        flush_after in 0usize..16,
        torn in any::<bool>(),
    ) {
        let dir = TempDir::new("wal-prop").unwrap();
        let flushed = flush_after.min(lens.len());

        // Phase 1: a writer appends records, flushes a prefix (or, in the
        // torn case, everything), then "crashes" — the unflushed tail is
        // simply lost with the process; the torn case additionally smears
        // garbage over the stream right past the durable end.
        {
            let fm = Arc::new(FileMgr::new(dir.path(), 128).unwrap());
            let (mut log, recs) = LogMgr::open(fm.clone(), "wal").unwrap();
            assert!(recs.is_empty());
            for (i, &len) in lens.iter().enumerate() {
                log.append(&wal_payload(i, len)).unwrap();
                if i + 1 == flushed {
                    log.flush().unwrap();
                }
            }
            if torn {
                log.flush().unwrap();
                // The durable stream ends exactly here; plant a garbage
                // length header at that offset, as a torn append would.
                let end: usize = lens.iter().map(|l| 12 + l).sum();
                let blk = BlockId::new("wal", (end / 128) as u64);
                let mut page = Page::new(128);
                if !end.is_multiple_of(128) {
                    fm.read(&blk, &mut page).unwrap();
                }
                let n = (128 - end % 128).min(4);
                page.write_at(end % 128, &[0xFF; 4][..n]).unwrap();
                fm.write(&blk, &page).unwrap();
                fm.sync("wal").unwrap();
            }
        }

        // Phase 2 and 3: recover twice with fresh managers; compare.
        let fm = Arc::new(FileMgr::new(dir.path(), 128).unwrap());
        let (log1, once) = LogMgr::open(fm.clone(), "wal").unwrap();
        drop(log1);
        let bytes_once = file_bytes(&fm, "wal");
        let (log2, twice) = LogMgr::open(fm.clone(), "wal").unwrap();
        drop(log2);
        let bytes_twice = file_bytes(&fm, "wal");

        prop_assert_eq!(&once, &twice, "second recovery saw different records");
        prop_assert_eq!(bytes_once, bytes_twice, "second recovery rewrote the file");

        // No flushed record may be lost, and everything recovered must be
        // an exact prefix of what was appended, in order, LSNs from 1.
        let floor = if torn { lens.len() } else { flushed };
        prop_assert!(once.len() >= floor, "lost flushed records: {} < {}", once.len(), floor);
        prop_assert!(once.len() <= lens.len());
        for (i, (lsn, payload)) in once.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64 + 1);
            prop_assert_eq!(payload, &wal_payload(i, lens[i]));
        }
    }
}

/// Temp-dir hygiene guard: every scratch directory a test creates —
/// including nested trees and paged files — is gone after drop, and
/// nothing of ours lingers under the shared scratch root.
#[test]
fn tempdirs_leave_no_strays_behind() {
    let mut made = Vec::new();
    for i in 0..4 {
        let dir = TempDir::new(&format!("hygiene-{i}")).unwrap();
        std::fs::create_dir_all(dir.path().join("nested/deep")).unwrap();
        std::fs::write(dir.path().join("nested/deep/file.bin"), b"payload").unwrap();
        let fm = FileMgr::new(dir.path(), 128).unwrap();
        fm.write(&BlockId::new("data", 0), &Page::new(128)).unwrap();
        fm.sync("data").unwrap();
        made.push(dir.path().to_path_buf());
        drop(dir);
    }
    for path in &made {
        assert!(!path.exists(), "stray tempdir left behind: {path:?}");
    }
    // Other tests run concurrently with their own live tempdirs, so only
    // assert about the paths this test created.
    if let Ok(entries) = std::fs::read_dir(scratch_root()) {
        for entry in entries.flatten() {
            assert!(
                !made.contains(&entry.path()),
                "dropped tempdir still present under scratch root: {:?}",
                entry.path()
            );
        }
    }
}
