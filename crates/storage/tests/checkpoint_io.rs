//! Checkpoint cost regression: I/O proportional to **dirty pages**, not
//! to database size.
//!
//! The page-granular checkpoint protocol (pre-image undo of dirty
//! blocks, flush of dirty frames, fresh WAL, meta blob, manifest flip)
//! touches disk only for pages the interval actually dirtied plus a
//! small fixed overhead. These tests diff [`DurableNetworkDb::disk_ops`]
//! around checkpoints to pin that contract, so a regression back to
//! whole-database snapshots (the pre-heap design) fails loudly here.

use dbpc_datamodel::network::{FieldDef, NetworkSchema, RecordTypeDef, SetDef};
use dbpc_datamodel::types::FieldType;
use dbpc_datamodel::value::Value;
use dbpc_storage::disk::{DurableNetworkDb, DurableOptions, TempDir};
use dbpc_storage::RecordId;

fn schema() -> NetworkSchema {
    NetworkSchema::new("COMPANY-NAME")
        .with_record(RecordTypeDef::new(
            "DIV",
            vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
        ))
        .with_record(RecordTypeDef::new(
            "EMP",
            vec![
                FieldDef::new("EMP-NAME", FieldType::Char(25)),
                FieldDef::new("AGE", FieldType::Int(2)),
            ],
        ))
        .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
        .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
}

fn opts() -> DurableOptions {
    DurableOptions {
        page_size: 256,
        buffers: 8,
        ..DurableOptions::default()
    }
}

/// Seed one division plus `emps` employees in one committed batch and
/// return every employee id.
fn seed(db: &mut DurableNetworkDb, emps: usize) -> Vec<RecordId> {
    let sp = db.begin_savepoint();
    let div = db
        .store("DIV", &[("DIV-NAME", Value::str("MACHINERY"))], &[])
        .unwrap();
    let ids: Vec<RecordId> = (0..emps)
        .map(|e| {
            db.store(
                "EMP",
                &[
                    ("EMP-NAME", Value::str(format!("EMP-{e:06}"))),
                    ("AGE", Value::Int(20 + (e % 45) as i64)),
                ],
                &[("DIV-EMP", div)],
            )
            .unwrap()
        })
        .collect();
    db.commit(sp).unwrap();
    ids
}

/// Build a database of `emps` records, checkpoint it (everything dirty),
/// then dirty exactly one record and checkpoint again. Returns the disk
/// ops spent by (full checkpoint, one-record checkpoint, no-op checkpoint).
fn measure(emps: usize) -> (u64, u64, u64) {
    let dir = TempDir::new("ckpt-io").unwrap();
    let mut db = DurableNetworkDb::open(dir.path(), schema(), opts()).unwrap();
    let ids = seed(&mut db, emps);

    let before = db.disk_ops();
    db.checkpoint(b"full").unwrap();
    let full = db.disk_ops() - before;

    let sp = db.begin_savepoint();
    db.modify(ids[emps / 2], &[("AGE", Value::Int(63))])
        .unwrap();
    db.commit(sp).unwrap();
    let before = db.disk_ops();
    db.checkpoint(b"one").unwrap();
    let one = db.disk_ops() - before;

    let before = db.disk_ops();
    db.checkpoint(b"idle").unwrap();
    let idle = db.disk_ops() - before;

    (full, one, idle)
}

#[test]
fn checkpoint_io_tracks_dirty_pages_not_database_size() {
    let (full_small, one_small, idle_small) = measure(200);
    let (full_large, one_large, idle_large) = measure(800);

    // A whole-database checkpoint costs ops on the order of its pages; a
    // one-record checkpoint must be far below it.
    assert!(
        one_large * 8 < full_large,
        "one-record checkpoint cost {one_large} is not ≪ full cost {full_large}"
    );

    // The one-record cost must not grow with database size: 4× the data,
    // same dirty set, same bill (small slack for the deeper free-space map).
    assert!(
        one_large <= one_small + 6,
        "one-record checkpoint grew with database size: {one_small} ops at \
         200 records vs {one_large} at 800"
    );

    // The full checkpoint, by contrast, must scale with size — otherwise
    // the comparison above proves nothing.
    assert!(
        full_large > full_small * 2,
        "full checkpoint did not scale with data ({full_small} vs {full_large}); \
         the dirty-page measurement is broken"
    );

    // A checkpoint with nothing dirty pays only the fixed protocol
    // overhead (undo header, WAL reset, meta blob, manifest), also
    // size-independent.
    assert!(
        idle_large <= idle_small + 2,
        "idle checkpoint grew with database size: {idle_small} vs {idle_large}"
    );
    assert!(
        idle_large < 32,
        "idle checkpoint overhead {idle_large} ops — fixed cost regressed"
    );
}
