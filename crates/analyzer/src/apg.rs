//! The access path graph (Su & Liu, ref 25).
//!
//! "For these schema and data model dependent representations … an 'access
//! path graph' is used to describe how a data traversal can be interpreted"
//! in a concrete schema. Nodes are record types; edges are sets, traversable
//! downward (owner → member, a set scan) or upward (member → owner, a
//! `FIND OWNER`). The framework consults it for two things:
//!
//! * **alternate-path enumeration** — "if … multiple data paths can be found
//!   to carry out an access then these issues can be resolved interactively"
//!   (§4);
//! * **path rewriting** — the converter re-derives a concrete path for an
//!   abstract access sequence in the target schema, and the optimizer picks
//!   the shortest one.

use dbpc_datamodel::network::NetworkSchema;

/// One hop of a concrete access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathHop {
    pub set: String,
    /// `true`: owner → member (scan); `false`: member → owner.
    pub downward: bool,
    /// The record type reached by this hop.
    pub to: String,
}

/// A concrete access path between two record types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPath {
    pub from: String,
    pub hops: Vec<PathHop>,
}

impl AccessPath {
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Render as `DIV -(DIV-DEPT)-> DEPT -(DEPT-EMP)-> EMP`.
    pub fn describe(&self) -> String {
        let mut s = self.from.clone();
        for h in &self.hops {
            let arrow = if h.downward { "->" } else { "<-" };
            s.push_str(&format!(" -({}){} {}", h.set, arrow, h.to));
        }
        s
    }
}

/// The access path graph over a schema.
pub struct AccessPathGraph<'s> {
    schema: &'s NetworkSchema,
}

impl<'s> AccessPathGraph<'s> {
    pub fn new(schema: &'s NetworkSchema) -> Self {
        AccessPathGraph { schema }
    }

    /// All simple paths from `from` to `to`, up to `max_hops` long, in a
    /// deterministic order (shortest first, then lexicographic by set
    /// names).
    pub fn paths(&self, from: &str, to: &str, max_hops: usize) -> Vec<AccessPath> {
        let mut out = Vec::new();
        let mut hops = Vec::new();
        let mut visited = vec![from.to_string()];
        self.dfs(from, to, max_hops, &mut hops, &mut visited, &mut out);
        out.sort_by(|a, b| {
            a.len().cmp(&b.len()).then_with(|| {
                let ka: Vec<&str> = a.hops.iter().map(|h| h.set.as_str()).collect();
                let kb: Vec<&str> = b.hops.iter().map(|h| h.set.as_str()).collect();
                ka.cmp(&kb)
            })
        });
        out
    }

    fn dfs(
        &self,
        cur: &str,
        to: &str,
        budget: usize,
        hops: &mut Vec<PathHop>,
        visited: &mut Vec<String>,
        out: &mut Vec<AccessPath>,
    ) {
        if cur == to && !hops.is_empty() {
            out.push(AccessPath {
                from: visited[0].clone(),
                hops: hops.clone(),
            });
            return;
        }
        if budget == 0 {
            return;
        }
        // Downward hops: sets owned by `cur`.
        for s in self.schema.sets_owned_by(cur) {
            if visited.contains(&s.member) {
                continue;
            }
            hops.push(PathHop {
                set: s.name.clone(),
                downward: true,
                to: s.member.clone(),
            });
            visited.push(s.member.clone());
            self.dfs(&s.member, to, budget - 1, hops, visited, out);
            visited.pop();
            hops.pop();
        }
        // Upward hops: sets `cur` is a member of.
        for s in self.schema.sets_with_member(cur) {
            let Some(owner) = s.owner.record_name() else {
                continue;
            };
            if visited.iter().any(|v| v == owner) {
                continue;
            }
            hops.push(PathHop {
                set: s.name.clone(),
                downward: false,
                to: owner.to_string(),
            });
            visited.push(owner.to_string());
            self.dfs(owner, to, budget - 1, hops, visited, out);
            visited.pop();
            hops.pop();
        }
    }

    /// The shortest path, if any.
    pub fn shortest_path(&self, from: &str, to: &str, max_hops: usize) -> Option<AccessPath> {
        self.paths(from, to, max_hops).into_iter().next()
    }

    /// Is the access from `from` to `to` ambiguous (more than one minimal
    /// path)? This is the condition under which the supervisor must ask the
    /// Conversion Analyst which path carries the application meaning.
    pub fn is_ambiguous(&self, from: &str, to: &str, max_hops: usize) -> bool {
        let paths = self.paths(from, to, max_hops);
        match paths.as_slice() {
            [] | [_] => false,
            [a, b, ..] => a.len() == b.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;

    /// DIV → DEPT → EMP plus a direct DIV → EMP shortcut set.
    fn diamond() -> NetworkSchema {
        NetworkSchema::new("S")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
            ))
            .with_record(RecordTypeDef::new(
                "DEPT",
                vec![FieldDef::new("DEPT-NAME", FieldType::Char(5))],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![FieldDef::new("EMP-NAME", FieldType::Char(25))],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-DEPT", "DIV", "DEPT", vec!["DEPT-NAME"]))
            .with_set(SetDef::owned("DEPT-EMP", "DEPT", "EMP", vec!["EMP-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    #[test]
    fn finds_both_downward_paths() {
        let s = diamond();
        let g = AccessPathGraph::new(&s);
        let paths = g.paths("DIV", "EMP", 4);
        assert_eq!(paths.len(), 2);
        // Shortest first: the direct DIV-EMP hop.
        assert_eq!(paths[0].describe(), "DIV -(DIV-EMP)-> EMP");
        assert_eq!(
            paths[1].describe(),
            "DIV -(DIV-DEPT)-> DEPT -(DEPT-EMP)-> EMP"
        );
    }

    #[test]
    fn upward_paths_found() {
        let s = diamond();
        let g = AccessPathGraph::new(&s);
        let p = g.shortest_path("EMP", "DIV", 4).unwrap();
        assert_eq!(p.describe(), "EMP -(DIV-EMP)<- DIV");
        assert!(!p.hops[0].downward);
    }

    #[test]
    fn ambiguity_detected_only_for_equal_lengths() {
        let s = diamond();
        let g = AccessPathGraph::new(&s);
        // DIV→EMP: paths of length 1 and 2 — unambiguous (shortest wins).
        assert!(!g.is_ambiguous("DIV", "EMP", 4));
        // EMP→DEPT: via DEPT-EMP (1 hop) or via DIV-EMP then DIV-DEPT (2) —
        // unambiguous. But DEPT→EMP downward vs via DIV: 1 vs 2 — fine.
        assert!(!g.is_ambiguous("DEPT", "EMP", 4));
    }

    #[test]
    fn genuinely_ambiguous_schema_flagged() {
        // Two parallel sets between A and B.
        let s = NetworkSchema::new("P")
            .with_record(RecordTypeDef::new(
                "A",
                vec![FieldDef::new("K", FieldType::Char(2))],
            ))
            .with_record(RecordTypeDef::new(
                "B",
                vec![FieldDef::new("N", FieldType::Char(2))],
            ))
            .with_set(SetDef::owned("AB1", "A", "B", vec![]))
            .with_set(SetDef::owned("AB2", "A", "B", vec![]));
        let g = AccessPathGraph::new(&s);
        assert!(g.is_ambiguous("A", "B", 3));
        assert_eq!(g.paths("A", "B", 3).len(), 2);
    }

    #[test]
    fn budget_limits_search() {
        let s = diamond();
        let g = AccessPathGraph::new(&s);
        let paths = g.paths("DIV", "EMP", 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn no_path_between_unrelated() {
        let s = diamond();
        let g = AccessPathGraph::new(&s);
        assert!(g.shortest_path("EMP", "EMP", 3).is_none());
    }
}
