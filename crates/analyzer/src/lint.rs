//! The programmer's aid of §5.3.
//!
//! "If a program analyzer can be successfully constructed, it could be used
//! as a programmer's aid during initial writing of database application
//! programs … Program 'improvement' of this kind should be a natural
//! byproduct of a good program analyzer." And §6 promises the work will
//! "illustrate programming practices which will yield more convertible
//! database applications."
//!
//! [`lint_program`] turns the analyzer's machinery into exactly that: a set
//! of convertibility guidelines checked against a program before it ever
//! needs converting.

use crate::dataflow::{analyze_host, Hazard};
use crate::integrity::detect_procedural;
use dbpc_datamodel::network::NetworkSchema;
use dbpc_dml::host::{ForSource, Program, Stmt};
use std::collections::BTreeSet;
use std::fmt;

/// A convertibility guideline the program violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// G1: retrieval order reaches output without SORT — any ordering
    /// restructuring will silently change this program's output (§3.2).
    UnpinnedObservableOrder { query: String },
    /// G2: the DML verb is a run-time value — unconvertible by any
    /// automatic system (§3.2).
    RuntimeVariableVerb { record: String },
    /// G3: an integrity constraint is enforced in program logic; it should
    /// be "centralized, explicitly, as part of the data model" (§3.1).
    ProceduralConstraint { constraint: String },
    /// G4: a procedural check duplicates a constraint the schema already
    /// declares — dead weight that will confuse conversion.
    RedundantConstraintCheck { constraint: String },
    /// G5: a retrieval result is never used.
    DeadRetrieval { var: String },
    /// G6: `DELETE ALL` cascades through every owned set — the §3.1 ERASE
    /// hazard ("could cause deletion of 'course offerings' when instructors
    /// are deleted").
    CascadingDelete { var: String },
    /// G7 (DBTG): the program branches on integrity-flavored status codes,
    /// whose values "certain restructurings … will cause … to be different"
    /// (§3.2).
    StatusCodeDependence { status: String },
    /// G8 (DBTG): `FIND FIRST` never advanced — "a programmer may have
    /// intended to 'process all' … but may have written a program which
    /// will 'process the first'" (§3.2).
    ProcessFirstSuspicion { set: String },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnpinnedObservableOrder { query } => write!(
                f,
                "G1: output depends on set ordering; wrap in SORT to survive \
                 key restructurings: {query}"
            ),
            Lint::RuntimeVariableVerb { record } => write!(
                f,
                "G2: DML verb on {record} varies at run time; no conversion \
                 system can classify this access"
            ),
            Lint::ProceduralConstraint { constraint } => write!(
                f,
                "G3: constraint enforced in program logic; declare it in the \
                 schema instead: {constraint}"
            ),
            Lint::RedundantConstraintCheck { constraint } => write!(
                f,
                "G4: check duplicates a declared constraint: {constraint}"
            ),
            Lint::DeadRetrieval { var } => {
                write!(f, "G5: retrieval into {var} is never used")
            }
            Lint::CascadingDelete { var } => write!(
                f,
                "G6: DELETE ALL {var} cascades through owned sets; prefer \
                 explicit member handling"
            ),
            Lint::StatusCodeDependence { status } => write!(
                f,
                "G7: branching on status {status}; restructurings may change \
                 which code is returned"
            ),
            Lint::ProcessFirstSuspicion { set } => write!(
                f,
                "G8: FIND FIRST WITHIN {set} never advanced; was 'process \
                 all' intended?"
            ),
        }
    }
}

/// Check a program against the convertibility guidelines.
pub fn lint_program(program: &Program, schema: &NetworkSchema) -> Vec<Lint> {
    let mut lints = Vec::new();
    let report = analyze_host(program, schema);
    for h in &report.hazards {
        match h {
            Hazard::OrderObservable { query } => lints.push(Lint::UnpinnedObservableOrder {
                query: query.clone(),
            }),
            Hazard::RuntimeVariableVerb { record } => lints.push(Lint::RuntimeVariableVerb {
                record: record.clone(),
            }),
            _ => {}
        }
    }
    for pc in detect_procedural(program) {
        if schema.constraints.contains(&pc.constraint) {
            lints.push(Lint::RedundantConstraintCheck {
                constraint: pc.constraint.to_string(),
            });
        } else {
            lints.push(Lint::ProceduralConstraint {
                constraint: pc.constraint.to_string(),
            });
        }
    }
    // Dead retrievals: FIND whose variable is never read.
    let mut reads: BTreeSet<String> = BTreeSet::new();
    let mut finds: Vec<String> = Vec::new();
    program.visit_stmts(&mut |s| {
        if let Stmt::Find { var, .. } = s {
            finds.push(var.clone());
        }
        collect_reads(s, &mut reads);
    });
    for var in finds {
        if !reads.contains(&var) {
            lints.push(Lint::DeadRetrieval { var });
        }
    }
    program.visit_stmts(&mut |s| {
        if let Stmt::Delete { var, all: true } = s {
            lints.push(Lint::CascadingDelete { var: var.clone() });
        }
    });
    lints
}

/// DBTG-dialect guidelines: status-code dependence beyond the loop
/// templates and process-first suspicion (§3.2's navigational hazards).
pub fn lint_dbtg(program: &dbpc_dml::dbtg::DbtgProgram) -> Vec<Lint> {
    crate::dataflow::analyze_dbtg(program)
        .into_iter()
        .filter_map(|h| match h {
            Hazard::StatusCodeDependence { status } => Some(Lint::StatusCodeDependence { status }),
            Hazard::ProcessFirstSuspicion { set } => Some(Lint::ProcessFirstSuspicion { set }),
            _ => None,
        })
        .collect()
}

fn collect_reads(s: &Stmt, reads: &mut BTreeSet<String>) {
    use dbpc_dml::expr::{BoolExpr, Expr};
    fn expr(e: &Expr, reads: &mut BTreeSet<String>) {
        match e {
            Expr::Name(n) => {
                reads.insert(n.clone());
            }
            Expr::Field { var, .. } | Expr::Count(var) => {
                reads.insert(var.clone());
            }
            Expr::Bin { left, right, .. } => {
                expr(left, reads);
                expr(right, reads);
            }
            Expr::Lit(_) => {}
        }
    }
    fn boolean(b: &BoolExpr, reads: &mut BTreeSet<String>) {
        match b {
            BoolExpr::Cmp { left, right, .. } => {
                expr(left, reads);
                expr(right, reads);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                boolean(a, reads);
                boolean(b, reads);
            }
            BoolExpr::Not(a) => boolean(a, reads),
        }
    }
    match s {
        Stmt::Let { expr: e, .. } => expr(e, reads),
        Stmt::Find { query, .. } => {
            if let dbpc_dml::host::PathStart::Collection(v) = &query.spec().start {
                reads.insert(v.clone());
            }
            for step in &query.spec().steps {
                if let Some(f) = &step.filter {
                    boolean(f, reads);
                }
            }
        }
        Stmt::ForEach { source, .. } => match source {
            ForSource::Var(v) => {
                reads.insert(v.clone());
            }
            ForSource::Query(q) => {
                if let dbpc_dml::host::PathStart::Collection(v) = &q.spec().start {
                    reads.insert(v.clone());
                }
                for step in &q.spec().steps {
                    if let Some(f) = &step.filter {
                        boolean(f, reads);
                    }
                }
            }
        },
        Stmt::Print(es) | Stmt::WriteFile { exprs: es, .. } => {
            for e in es {
                expr(e, reads);
            }
        }
        Stmt::Store {
            assigns, connects, ..
        } => {
            for (_, e) in assigns {
                expr(e, reads);
            }
            for c in connects {
                reads.insert(c.owner_var.clone());
            }
        }
        Stmt::Connect {
            member_var,
            owner_var,
            ..
        } => {
            reads.insert(member_var.clone());
            reads.insert(owner_var.clone());
        }
        Stmt::Disconnect { member_var, .. } => {
            reads.insert(member_var.clone());
        }
        Stmt::Delete { var, .. } | Stmt::Modify { var, .. } => {
            reads.insert(var.clone());
            if let Stmt::Modify { assigns, .. } = s {
                for (_, e) in assigns {
                    expr(e, reads);
                }
            }
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::Check { cond, .. } => {
            boolean(cond, reads)
        }
        Stmt::CallDml { verb, .. } => expr(verb, reads),
        Stmt::ReadTerminal { .. } | Stmt::ReadFile { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::constraint::Constraint;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::host::parse_program;

    fn schema() -> NetworkSchema {
        NetworkSchema::new("C")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    #[test]
    fn clean_program_has_no_lints() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) ON (EMP-NAME);
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
        )
        .unwrap();
        assert!(lint_program(&p, &schema()).is_empty());
    }

    #[test]
    fn order_and_dead_code_flagged() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
  FIND UNUSED := FIND(DIV: SYSTEM, ALL-DIV, DIV);
END PROGRAM;",
        )
        .unwrap();
        let lints = lint_program(&p, &schema());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnpinnedObservableOrder { .. })));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::DeadRetrieval { var } if var == "UNUSED")));
    }

    #[test]
    fn procedural_vs_redundant_constraint_distinguished() {
        let src = "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'));
  FIND STAFF := FIND(EMP: D, DIV-EMP, EMP);
  CHECK COUNT(STAFF) < 10 ELSE ABORT 'FULL';
  STORE EMP (EMP-NAME := 'X') CONNECT TO DIV-EMP OF D;
END PROGRAM;";
        let p = parse_program(src).unwrap();
        // Without a declared constraint: G3.
        let lints = lint_program(&p, &schema());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::ProceduralConstraint { .. })));
        // With the constraint declared: G4.
        let declared = schema().with_constraint(Constraint::Cardinality {
            set: "DIV-EMP".into(),
            min: 0,
            max: Some(10),
        });
        let lints = lint_program(&p, &declared);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::RedundantConstraintCheck { .. })));
    }

    #[test]
    fn dbtg_lints_surface_navigational_hazards() {
        use dbpc_dml::dbtg::parse_dbtg;
        let p = parse_dbtg(
            "DBTG PROGRAM D.
  MOVE 'M' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP.EMP-NAME.
  MOVE 'X' TO EMP-NAME IN EMP.
  STORE EMP.
  IF STATUS DUPLICATE GO TO DUP.
  STOP.
DUP.
  PRINT 'DUP'.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let lints = lint_dbtg(&p);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::StatusCodeDependence { .. })));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::ProcessFirstSuspicion { .. })));
    }

    #[test]
    fn runtime_verb_and_cascade_flagged() {
        let p = parse_program(
            "PROGRAM P;
  READ TERMINAL INTO V;
  CALL DML V ON EMP;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  DELETE ALL D;
END PROGRAM;",
        )
        .unwrap();
        let lints = lint_program(&p, &schema());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::RuntimeVariableVerb { .. })));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::CascadingDelete { .. })));
    }
}
