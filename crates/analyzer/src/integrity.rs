//! Detection of procedurally enforced integrity constraints.
//!
//! §3.1: constraints "can be and are maintained by the programs that access
//! the database", and §5.3 asks "whether the program analyzer can detect
//! database integrity constraints that are enforced procedurally in the
//! program". We answer affirmatively for the crate's constraint catalogue,
//! by recognizing the `CHECK … ELSE ABORT` guard idiom:
//!
//! * **cardinality**: `FIND c := FIND(M: owner, SET, M); CHECK COUNT(c) < n
//!   ELSE ABORT …` guarding a `STORE M … CONNECT TO SET …` — the program is
//!   enforcing `CARDINALITY ON SET BETWEEN 0 AND n` (the guard admits the
//!   store while the count is below n; §3.1's "a course may not be offered
//!   more than twice" is `CHECK COUNT(offs) < 2`);
//! * **not-null**: `CHECK x <> NULL ELSE ABORT …` where `x` feeds field `F`
//!   of a subsequent `STORE R (… F := x …)` — enforcing `NOT NULL R.F`;
//! * **domain**: `CHECK x >= lo … AND x <= hi ELSE ABORT` feeding a stored
//!   field — enforcing `DOMAIN R.F FROM lo TO hi`.
//!
//! Matched checks let the converter *remove* redundant program logic when a
//! target schema declares the constraint, and conversely tell the DBA what
//! must be added to programs when a declarative constraint is dropped.

use dbpc_datamodel::constraint::Constraint;
use dbpc_datamodel::value::Value;
use dbpc_dml::expr::{BoolExpr, CmpOp, Expr};
use dbpc_dml::host::{PathStart, Program, Stmt};

/// A procedural constraint discovered in program text.
#[derive(Debug, Clone, PartialEq)]
pub struct ProceduralConstraint {
    /// The declarative constraint the code enforces.
    pub constraint: Constraint,
    /// Statement index (in a preorder statement walk) of the CHECK.
    pub check_index: usize,
}

/// Scan a host program for procedurally enforced constraints.
pub fn detect_procedural(program: &Program) -> Vec<ProceduralConstraint> {
    let mut out = Vec::new();
    // Flatten statements in preorder with indices.
    let mut flat: Vec<Stmt> = Vec::new();
    program.visit_stmts(&mut |s| flat.push(s.clone()));

    for (i, s) in flat.iter().enumerate() {
        let Stmt::Check { cond, .. } = s else {
            continue;
        };
        // Cardinality: COUNT(v) < n (or <= n) where v was FIND(M: o, SET, M)
        // and a later STORE connects to SET.
        if let BoolExpr::Cmp {
            op,
            left: Expr::Count(var),
            right: Expr::Lit(Value::Int(n)),
        } = cond
        {
            // The guard passes while COUNT < n (resp. <= n) and then ONE
            // more member is stored, so the resulting occupancy bound is n
            // (resp. n + 1).
            let max = match op {
                CmpOp::Lt => Some(*n),
                CmpOp::Le => Some(*n + 1),
                _ => None,
            };
            if let Some(max) = max {
                // The counted collection's defining FIND.
                let set = flat[..i].iter().rev().find_map(|p| match p {
                    Stmt::Find { var: v, query } if v == var => query
                        .spec()
                        .steps
                        .first()
                        .filter(|_| matches!(query.spec().start, PathStart::Collection(_)))
                        .map(|st| st.set.clone()),
                    _ => None,
                });
                // A later STORE connecting into the same set confirms the
                // guard's purpose.
                if let Some(set) = set {
                    let guarded = flat[i..].iter().any(|p| match p {
                        Stmt::Store { connects, .. } => connects.iter().any(|c| c.set == set),
                        _ => false,
                    });
                    if guarded && max >= 0 {
                        out.push(ProceduralConstraint {
                            constraint: Constraint::Cardinality {
                                set,
                                min: 0,
                                max: Some(max as u32),
                            },
                            check_index: i,
                        });
                        continue;
                    }
                }
            }
        }
        // Not-null / domain guards on a variable feeding a later STORE.
        if let Some((var, kind)) = guard_shape(cond) {
            // Find the stored (record, field) the variable feeds.
            let target = flat[i..].iter().find_map(|p| match p {
                Stmt::Store {
                    record, assigns, ..
                } => assigns.iter().find_map(|(fld, e)| {
                    if expr_mentions_name(e, &var) {
                        Some((record.clone(), fld.clone()))
                    } else {
                        None
                    }
                }),
                _ => None,
            });
            if let Some((record, field)) = target {
                let constraint = match kind {
                    GuardKind::NotNull => Constraint::NotNull { record, field },
                    GuardKind::Domain { low, high } => Constraint::Domain {
                        record,
                        field,
                        low,
                        high,
                    },
                };
                out.push(ProceduralConstraint {
                    constraint,
                    check_index: i,
                });
            }
        }
    }
    out
}

enum GuardKind {
    NotNull,
    Domain {
        low: Option<Value>,
        high: Option<Value>,
    },
}

/// Recognize `x <> NULL` and `x >= lo [AND x <= hi]` shapes on a single
/// variable.
fn guard_shape(cond: &BoolExpr) -> Option<(String, GuardKind)> {
    match cond {
        BoolExpr::Cmp {
            op: CmpOp::Ne,
            left: Expr::Name(v),
            right: Expr::Lit(Value::Null),
        } => Some((v.clone(), GuardKind::NotNull)),
        BoolExpr::Cmp {
            op,
            left: Expr::Name(v),
            right: Expr::Lit(lit),
        } => match op {
            CmpOp::Ge => Some((
                v.clone(),
                GuardKind::Domain {
                    low: Some(lit.clone()),
                    high: None,
                },
            )),
            CmpOp::Le => Some((
                v.clone(),
                GuardKind::Domain {
                    low: None,
                    high: Some(lit.clone()),
                },
            )),
            _ => None,
        },
        BoolExpr::And(a, b) => {
            let (va, ka) = guard_shape(a)?;
            let (vb, kb) = guard_shape(b)?;
            if va != vb {
                return None;
            }
            match (ka, kb) {
                (
                    GuardKind::Domain { low: la, high: ha },
                    GuardKind::Domain { low: lb, high: hb },
                ) => Some((
                    va,
                    GuardKind::Domain {
                        low: la.or(lb),
                        high: ha.or(hb),
                    },
                )),
                _ => None,
            }
        }
        _ => None,
    }
}

fn expr_mentions_name(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Name(n) => n == name,
        Expr::Bin { left, right, .. } => {
            expr_mentions_name(left, name) || expr_mentions_name(right, name)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_dml::host::parse_program;

    #[test]
    fn cardinality_guard_detected() {
        // §3.1: "a course may not be offered more than twice in a school
        // year", enforced in program logic.
        let p = parse_program(
            "PROGRAM ENROLL;
  FIND C := FIND(COURSE: SYSTEM, ALL-COURSE, COURSE(CNO = 'C1'));
  FIND OFFS := FIND(COURSE-OFFERING: C, COURSES-OFFERING, COURSE-OFFERING);
  CHECK COUNT(OFFS) < 2 ELSE ABORT 'COURSE ALREADY OFFERED TWICE';
  STORE COURSE-OFFERING (S := 'F78') CONNECT TO COURSES-OFFERING OF C;
END PROGRAM;",
        )
        .unwrap();
        let found = detect_procedural(&p);
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].constraint,
            Constraint::Cardinality {
                set: "COURSES-OFFERING".into(),
                min: 0,
                max: Some(2),
            }
        );
    }

    #[test]
    fn not_null_guard_detected() {
        let p = parse_program(
            "PROGRAM ADD;
  READ TERMINAL INTO CNO;
  CHECK CNO <> NULL ELSE ABORT 'CNO REQUIRED';
  STORE COURSE (CNO := CNO);
END PROGRAM;",
        )
        .unwrap();
        let found = detect_procedural(&p);
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].constraint,
            Constraint::NotNull {
                record: "COURSE".into(),
                field: "CNO".into(),
            }
        );
    }

    #[test]
    fn domain_guard_detected() {
        let p = parse_program(
            "PROGRAM HIRE;
  READ TERMINAL INTO A;
  CHECK A >= 14 AND A <= 99 ELSE ABORT 'BAD AGE';
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  STORE EMP (AGE := A) CONNECT TO DIV-EMP OF D;
END PROGRAM;",
        )
        .unwrap();
        let found = detect_procedural(&p);
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].constraint,
            Constraint::Domain {
                record: "EMP".into(),
                field: "AGE".into(),
                low: Some(Value::Int(14)),
                high: Some(Value::Int(99)),
            }
        );
    }

    #[test]
    fn unguarded_check_not_misclassified() {
        // A CHECK with no related STORE is not an integrity guard we can
        // attribute.
        let p = parse_program(
            "PROGRAM C;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  CHECK COUNT(E) < 100 ELSE ABORT 'TOO MANY';
END PROGRAM;",
        )
        .unwrap();
        assert!(detect_procedural(&p).is_empty());
    }

    #[test]
    fn unrelated_variable_not_linked() {
        let p = parse_program(
            "PROGRAM X;
  READ TERMINAL INTO A;
  READ TERMINAL INTO B;
  CHECK A <> NULL ELSE ABORT 'A REQUIRED';
  STORE COURSE (CNO := B);
END PROGRAM;",
        )
        .unwrap();
        assert!(detect_procedural(&p).is_empty());
    }
}
