//! Su's model-independent access patterns (§4.1).
//!
//! "Four basic access patterns have been identified":
//!
//! * `Access A via A` — entity occurrences selected by their own field
//!   conditions;
//! * `Access A via B through (Ai, Bj)` — entities related only by comparable
//!   fields (a value join);
//! * `Access AB via B` — association occurrences reached from an entity;
//! * `Access A via AB` — entities reached from association occurrences.
//!
//! "A sequence of these basic access patterns can be used to describe the
//! traversal of data specified in the application program" — that sequence,
//! plus the terminal database operation, is an [`AccessSequence`]. The
//! representation is deliberately independent of how entities and
//! associations are realized in any schema, which is what makes cross-model
//! conversion possible.

use dbpc_dml::expr::BoolExpr;
use std::fmt;

/// How a step's target is reached.
#[derive(Debug, Clone, PartialEq)]
pub enum Via {
    /// `Access A via A`: by the target's own condition (an entry point).
    SelfEntity,
    /// `Access A via S`: through the (association or entity) occurrences
    /// selected by the previous step, named `S`.
    Source(String),
    /// `Access A via B through (Ai, Bj)`: a value join on comparable fields.
    Comparable {
        source: String,
        target_field: String,
        source_field: String,
    },
}

/// One access step: reach occurrences of `target`, optionally constrained
/// by a condition on the target's fields.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessStep {
    pub target: String,
    pub via: Via,
    pub condition: Option<BoolExpr>,
}

impl AccessStep {
    pub fn entry(target: impl Into<String>) -> AccessStep {
        AccessStep {
            target: target.into(),
            via: Via::SelfEntity,
            condition: None,
        }
    }

    pub fn via_source(target: impl Into<String>, source: impl Into<String>) -> AccessStep {
        AccessStep {
            target: target.into(),
            via: Via::Source(source.into()),
            condition: None,
        }
    }

    pub fn with_condition(mut self, c: BoolExpr) -> AccessStep {
        self.condition = Some(c);
        self
    }
}

impl fmt::Display for AccessStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.via {
            Via::SelfEntity => write!(f, "ACCESS {} via {}", self.target, self.target),
            Via::Source(s) => write!(f, "ACCESS {} via {s}", self.target),
            Via::Comparable {
                source,
                target_field,
                source_field,
            } => write!(
                f,
                "ACCESS {} via {source} through ({target_field}, {source_field})",
                self.target
            ),
        }
    }
}

/// The database operation terminating an access sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbOperation {
    Retrieve,
    Store,
    Modify,
    Erase,
    Connect,
    Disconnect,
}

impl fmt::Display for DbOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DbOperation::Retrieve => "RETRIEVE",
            DbOperation::Store => "STORE",
            DbOperation::Modify => "MODIFY",
            DbOperation::Erase => "ERASE",
            DbOperation::Connect => "CONNECT",
            DbOperation::Disconnect => "DISCONNECT",
        };
        f.write_str(s)
    }
}

/// A data traversal: access steps followed by an operation — the abstract
/// program representation of Figure 4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSequence {
    pub steps: Vec<AccessStep>,
    pub operation: DbOperation,
}

impl AccessSequence {
    pub fn new(steps: Vec<AccessStep>, operation: DbOperation) -> AccessSequence {
        AccessSequence { steps, operation }
    }

    /// The final entity reached (the operation's target type).
    pub fn target(&self) -> Option<&str> {
        self.steps.last().map(|s| s.target.as_str())
    }

    /// Entities and associations touched anywhere in the sequence.
    pub fn touched(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.target.as_str()).collect()
    }
}

impl fmt::Display for AccessSequence {
    /// The paper's own layout (§4.1):
    ///
    /// ```text
    /// ACCESS DEPT via DEPT
    /// ACCESS EMP-DEPT via DEPT
    /// ACCESS EMP via EMP-DEPT
    /// RETRIEVE
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        write!(f, "{}", self.operation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.1 Manager-Smith sequence, built by hand; `extract`
    /// tests recover the same thing from real programs.
    #[test]
    fn displays_paper_sequence_verbatim() {
        let seq = AccessSequence::new(
            vec![
                AccessStep::entry("DEPT"),
                AccessStep::via_source("EMP-DEPT", "DEPT"),
                AccessStep::via_source("EMP", "EMP-DEPT"),
            ],
            DbOperation::Retrieve,
        );
        assert_eq!(
            seq.to_string(),
            "ACCESS DEPT via DEPT\nACCESS EMP-DEPT via DEPT\nACCESS EMP via EMP-DEPT\nRETRIEVE"
        );
    }

    #[test]
    fn comparable_step_display() {
        let s = AccessStep {
            target: "EMP".into(),
            via: Via::Comparable {
                source: "RETIREE".into(),
                target_field: "EMP-NAME".into(),
                source_field: "NAME".into(),
            },
            condition: None,
        };
        assert_eq!(
            s.to_string(),
            "ACCESS EMP via RETIREE through (EMP-NAME, NAME)"
        );
    }

    #[test]
    fn sequence_metadata() {
        let seq = AccessSequence::new(
            vec![
                AccessStep::entry("DIV"),
                AccessStep::via_source("EMP", "DIV"),
            ],
            DbOperation::Modify,
        );
        assert_eq!(seq.target(), Some("EMP"));
        assert_eq!(seq.touched(), vec!["DIV", "EMP"]);
    }
}
