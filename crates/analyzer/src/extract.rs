//! Extraction of access sequences from programs.
//!
//! Host programs carry their structure openly (`FIND` paths), so extraction
//! is a direct reading. DBTG programs require the **language-template
//! matching** of Nations & Su (ref 26): recognizing `MOVE`+`FIND ANY` entry
//! idioms, `FIND NEXT … WITHIN` scan loops guarded by `IF STATUS ENDSET`,
//! and `FIND OWNER` hops, and lifting them to the model-independent access
//! patterns. When a set is declared to *realize an association* (the
//! Florida model's `EMP-DEPT`), a member scan expands into the two-step
//! `Access AB via B` / `Access A via AB` form — reproducing the paper's
//! §4.1 sequence exactly.

use crate::patterns::{AccessSequence, AccessStep, DbOperation, Via};
use dbpc_datamodel::network::NetworkSchema;
use dbpc_dml::dbtg::{DbtgProgram, DbtgStmt, DbtgUnit};
use dbpc_dml::expr::{BoolExpr, CmpOp, Expr};
use dbpc_dml::host::{FindExpr, ForSource, PathStart, Program, Stmt};
use std::collections::BTreeMap;

/// Compute the record type held by each host variable (collection
/// variables from `FIND`, loop variables from `FOR EACH`).
pub fn var_types(program: &Program) -> BTreeMap<String, String> {
    let mut types = BTreeMap::new();
    program.visit_stmts(&mut |s| match s {
        Stmt::Find { var, query } => {
            types.insert(var.clone(), query.target().to_string());
        }
        Stmt::ForEach { var, source, .. } => {
            let t = match source {
                ForSource::Query(q) => Some(q.target().to_string()),
                ForSource::Var(v) => types.get(v).cloned(),
            };
            if let Some(t) = t {
                types.insert(var.clone(), t);
            }
        }
        _ => {}
    });
    types
}

/// Lift one `FIND` expression to an access sequence. `start_entity` names
/// the entity type of a collection-start variable (from [`var_types`]).
pub fn sequence_of_find(expr: &FindExpr, start_entity: Option<&str>) -> AccessSequence {
    let spec = expr.spec();
    let mut steps = Vec::new();
    let mut prev: Option<String> = match (&spec.start, start_entity) {
        (PathStart::System, _) => None,
        (PathStart::Collection(_), Some(t)) => Some(t.to_string()),
        (PathStart::Collection(v), None) => Some(v.clone()),
    };
    for (i, step) in spec.steps.iter().enumerate() {
        let via = match (&prev, i) {
            (None, 0) => Via::SelfEntity,
            (Some(p), _) => Via::Source(p.clone()),
            (None, _) => unreachable!("prev set after first step"),
        };
        let mut s = AccessStep {
            target: step.record.clone(),
            via,
            condition: step.filter.clone(),
        };
        // A SYSTEM entry with no previous entity is `Access A via A`.
        if i == 0 && matches!(spec.start, PathStart::System) {
            s.via = Via::SelfEntity;
        }
        steps.push(s);
        prev = Some(step.record.clone());
    }
    AccessSequence::new(steps, DbOperation::Retrieve)
}

/// Extract all access sequences of a host program: retrievals from `FIND`
/// and inline `FOR EACH` queries, updates from `STORE`/`MODIFY`/`DELETE`/
/// `CONNECT`/`DISCONNECT`.
pub fn sequences_of_host(program: &Program) -> Vec<AccessSequence> {
    let types = var_types(program);
    let mut out = Vec::new();
    let mut defs: BTreeMap<String, AccessSequence> = BTreeMap::new();
    program.visit_stmts(&mut |s| match s {
        Stmt::Find { var, query } => {
            let start = match &query.spec().start {
                PathStart::Collection(v) => types.get(v).map(String::as_str),
                PathStart::System => None,
            };
            let seq = sequence_of_find(query, start);
            defs.insert(var.clone(), seq.clone());
            out.push(seq);
        }
        Stmt::ForEach {
            source: ForSource::Query(q),
            ..
        } => {
            let start = match &q.spec().start {
                PathStart::Collection(v) => types.get(v).map(String::as_str),
                PathStart::System => None,
            };
            out.push(sequence_of_find(q, start));
        }
        Stmt::Store { record, .. } => {
            out.push(AccessSequence::new(
                vec![AccessStep::entry(record.clone())],
                DbOperation::Store,
            ));
        }
        Stmt::Modify { var, .. } => {
            if let Some(seq) = defs.get(var) {
                out.push(AccessSequence::new(seq.steps.clone(), DbOperation::Modify));
            }
        }
        Stmt::Delete { var, .. } => {
            if let Some(seq) = defs.get(var) {
                out.push(AccessSequence::new(seq.steps.clone(), DbOperation::Erase));
            }
        }
        Stmt::Connect { set, .. } => {
            out.push(AccessSequence::new(
                vec![AccessStep::entry(set.clone())],
                DbOperation::Connect,
            ));
        }
        Stmt::Disconnect { set, .. } => {
            out.push(AccessSequence::new(
                vec![AccessStep::entry(set.clone())],
                DbOperation::Disconnect,
            ));
        }
        _ => {}
    });
    out
}

/// Result of template-matching a DBTG program.
#[derive(Debug, Clone, PartialEq)]
pub struct DbtgExtraction {
    pub sequences: Vec<AccessSequence>,
    /// Statements the template library could not assimilate — the paper's
    /// prediction that "large classes of programs will have to be analyzed
    /// to become convinced that the set of templates is widely applicable".
    pub gaps: Vec<String>,
}

/// Template-match a DBTG program against `schema`, lifting it to access
/// sequences. `associations` maps set names to the association they
/// realize in the semantic model (e.g. `ED → EMP-DEPT`), enabling the
/// two-step `Access AB via B` / `Access A via AB` expansion.
pub fn sequences_of_dbtg(
    program: &DbtgProgram,
    schema: &NetworkSchema,
    associations: &BTreeMap<String, String>,
) -> DbtgExtraction {
    let mut gaps = Vec::new();
    let mut sequences = Vec::new();
    // UWA condition pool: (record, field) -> literal moved there.
    let mut conds: BTreeMap<(String, String), Expr> = BTreeMap::new();
    let mut steps: Vec<AccessStep> = Vec::new();
    let mut current_entity: Option<String> = None;
    let mut saw_retrieve = false;

    let flush =
        |steps: &mut Vec<AccessStep>, sequences: &mut Vec<AccessSequence>, op: DbOperation| {
            if !steps.is_empty() {
                sequences.push(AccessSequence::new(std::mem::take(steps), op));
            }
        };

    for unit in &program.units {
        let DbtgUnit::Stmt(stmt) = unit else {
            continue;
        };
        match stmt {
            DbtgStmt::Move {
                value,
                field,
                record,
            } => {
                conds.insert((record.clone(), field.clone()), value.clone());
            }
            DbtgStmt::Accept { field, record } => {
                // Run-time input: the condition exists but its value is
                // unknown at analysis time; model it as a field reference.
                conds.insert(
                    (record.clone(), field.clone()),
                    Expr::name(format!("{field}-INPUT")),
                );
            }
            DbtgStmt::FindAny { record, using } => {
                let cond = condition_from(&conds, record, using);
                let mut step = AccessStep::entry(record.clone());
                step.condition = cond;
                steps.push(step);
                current_entity = Some(record.clone());
            }
            DbtgStmt::FindFirst { record, set }
            | DbtgStmt::FindNext {
                record,
                set,
                using: _,
            } => {
                // Skip repeated FIND NEXT for the same (record, set): the
                // loop template contributes one scan step, not one per
                // iteration (there is only one statement anyway — loops are
                // GO TOs back to it).
                let already = steps.last().is_some_and(|s| {
                    s.target == *record
                        && matches!(&s.via, Via::Source(v)
                            if v == set || Some(v.as_str()) == associations.get(set).map(String::as_str))
                });
                if already {
                    continue;
                }
                let using = match stmt {
                    DbtgStmt::FindNext { using, .. } => using.clone(),
                    _ => Vec::new(),
                };
                let cond = condition_from(&conds, record, &using);
                let source = current_entity
                    .clone()
                    .or_else(|| {
                        schema
                            .set(set)
                            .and_then(|s| s.owner.record_name().map(String::from))
                    })
                    .unwrap_or_else(|| "SYSTEM".to_string());
                match associations.get(set) {
                    Some(assoc) => {
                        // Two-step expansion: the association via the source
                        // entity (carrying the membership conditions), then
                        // the member via the association.
                        let mut a = AccessStep::via_source(assoc.clone(), source);
                        a.condition = cond;
                        steps.push(a);
                        steps.push(AccessStep::via_source(record.clone(), assoc.clone()));
                    }
                    None => {
                        let mut s = AccessStep::via_source(record.clone(), set.clone());
                        s.condition = cond;
                        steps.push(s);
                    }
                }
                current_entity = Some(record.clone());
            }
            DbtgStmt::FindOwner { set } => match schema.set(set) {
                Some(sd) => {
                    let owner = sd.owner.record_name().unwrap_or("SYSTEM").to_string();
                    let source = current_entity.clone().unwrap_or_else(|| sd.member.clone());
                    // If the member is an association realization, the hop
                    // reads `Access A via AB`.
                    let via = associations
                        .values()
                        .find(|a| **a == source)
                        .cloned()
                        .unwrap_or(source);
                    steps.push(AccessStep::via_source(owner.clone(), via));
                    current_entity = Some(owner);
                }
                None => gaps.push(format!("FIND OWNER WITHIN unknown set {set}")),
            },
            DbtgStmt::Get { .. } => {}
            DbtgStmt::Print(_) => saw_retrieve = true,
            DbtgStmt::Store { record } => {
                steps.push(AccessStep::entry(record.clone()));
                flush(&mut steps, &mut sequences, DbOperation::Store);
            }
            DbtgStmt::Modify { .. } => {
                flush(&mut steps, &mut sequences, DbOperation::Modify);
            }
            DbtgStmt::Erase { .. } => {
                flush(&mut steps, &mut sequences, DbOperation::Erase);
            }
            DbtgStmt::Connect { .. } => {
                flush(&mut steps, &mut sequences, DbOperation::Connect);
            }
            DbtgStmt::Disconnect { .. } => {
                flush(&mut steps, &mut sequences, DbOperation::Disconnect);
            }
            DbtgStmt::IfStatus { .. } | DbtgStmt::Goto(_) | DbtgStmt::Stop => {}
        }
    }
    if !steps.is_empty() {
        // A trailing navigation with (or without) PRINTs is a retrieval.
        let _ = saw_retrieve;
        sequences.push(AccessSequence::new(steps, DbOperation::Retrieve));
    }
    DbtgExtraction { sequences, gaps }
}

/// Build the conjunction `f1 = v1 AND f2 = v2 …` from the UWA pool.
fn condition_from(
    conds: &BTreeMap<(String, String), Expr>,
    record: &str,
    using: &[String],
) -> Option<BoolExpr> {
    let parts: Vec<BoolExpr> = using
        .iter()
        .filter_map(|f| {
            conds
                .get(&(record.to_string(), f.clone()))
                .map(|v| BoolExpr::cmp(Expr::name(f.clone()), CmpOp::Eq, v.clone()))
        })
        .collect();
    BoolExpr::from_conjuncts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::dbtg::parse_dbtg;
    use dbpc_dml::host::parse_program;

    #[test]
    fn host_find_lifts_directly() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(AGE > 30));
END PROGRAM;",
        )
        .unwrap();
        let seqs = sequences_of_host(&p);
        assert_eq!(seqs.len(), 1);
        assert_eq!(
            seqs[0].to_string(),
            "ACCESS DIV via DIV\nACCESS EMP via DIV\nRETRIEVE"
        );
        assert!(seqs[0].steps[1].condition.is_some());
    }

    #[test]
    fn host_var_types_propagate_through_loops() {
        let p = parse_program(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  FOR EACH R IN D DO
    PRINT R.DIV-NAME;
  END FOR;
  FIND E := FIND(EMP: D, DIV-EMP, EMP);
END PROGRAM;",
        )
        .unwrap();
        let t = var_types(&p);
        assert_eq!(t.get("D").map(String::as_str), Some("DIV"));
        assert_eq!(t.get("R").map(String::as_str), Some("DIV"));
        assert_eq!(t.get("E").map(String::as_str), Some("EMP"));
        let seqs = sequences_of_host(&p);
        // The collection-start FIND knows its source entity is DIV.
        assert_eq!(seqs[1].to_string(), "ACCESS EMP via DIV\nRETRIEVE");
    }

    #[test]
    fn host_updates_extract_with_operations() {
        let p = parse_program(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'));
  STORE EMP (EMP-NAME := 'X') CONNECT TO DIV-EMP OF D;
  FIND E := FIND(EMP: D, DIV-EMP, EMP(EMP-NAME = 'X'));
  MODIFY E SET (AGE := 1);
  DELETE E;
END PROGRAM;",
        )
        .unwrap();
        let seqs = sequences_of_host(&p);
        let ops: Vec<DbOperation> = seqs.iter().map(|s| s.operation).collect();
        assert_eq!(
            ops,
            vec![
                DbOperation::Retrieve,
                DbOperation::Store,
                DbOperation::Retrieve,
                DbOperation::Modify,
                DbOperation::Erase
            ]
        );
    }

    fn personnel_schema() -> NetworkSchema {
        NetworkSchema::new("PERSONNEL")
            .with_record(RecordTypeDef::new(
                "DEPT",
                vec![
                    FieldDef::new("D#", FieldType::Char(4)),
                    FieldDef::new("DNAME", FieldType::Char(12)),
                    FieldDef::new("MGR", FieldType::Char(20)),
                ],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("E#", FieldType::Char(4)),
                    FieldDef::new("ENAME", FieldType::Char(20)),
                    FieldDef::new("YEAR-OF-SERVICE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DEPT", "DEPT", vec!["D#"]))
            .with_set(SetDef::owned("ED", "DEPT", "EMP", vec!["E#"]))
    }

    /// §4.1 listing (B) lifts to the paper's four-line access-pattern
    /// sequence when ED is declared to realize the EMP-DEPT association.
    #[test]
    fn listing_b_lifts_to_paper_sequence() {
        let program = parse_dbtg(
            "DBTG PROGRAM GETEMP.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO NOTFD.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
NOTFD.
FINISH.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let mut assoc = BTreeMap::new();
        assoc.insert("ED".to_string(), "EMP-DEPT".to_string());
        let ex = sequences_of_dbtg(&program, &personnel_schema(), &assoc);
        assert!(ex.gaps.is_empty());
        assert_eq!(ex.sequences.len(), 1);
        assert_eq!(
            ex.sequences[0].to_string(),
            "ACCESS DEPT via DEPT\nACCESS EMP-DEPT via DEPT\nACCESS EMP via EMP-DEPT\nRETRIEVE"
        );
        // The entry condition captured the MOVEd literal.
        let entry = &ex.sequences[0].steps[0];
        assert_eq!(entry.condition.as_ref().unwrap().to_string(), "D# = 'D2'");
        // The association step carries the YEAR-OF-SERVICE condition.
        assert_eq!(
            ex.sequences[0].steps[1]
                .condition
                .as_ref()
                .unwrap()
                .to_string(),
            "YEAR-OF-SERVICE = 3"
        );
    }

    #[test]
    fn without_association_metadata_the_set_name_is_used() {
        let program = parse_dbtg(
            "DBTG PROGRAM S.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
L.
  FIND NEXT EMP WITHIN ED.
  IF STATUS ENDSET GO TO F.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO L.
F.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let ex = sequences_of_dbtg(&program, &personnel_schema(), &BTreeMap::new());
        assert_eq!(
            ex.sequences[0].to_string(),
            "ACCESS DEPT via DEPT\nACCESS EMP via ED\nRETRIEVE"
        );
    }

    #[test]
    fn find_owner_lifts_to_reverse_hop() {
        let program = parse_dbtg(
            "DBTG PROGRAM O.
  MOVE 'E1' TO E# IN EMP.
  FIND ANY EMP USING E#.
  FIND OWNER WITHIN ED.
  GET DEPT.
  PRINT DEPT.DNAME.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let ex = sequences_of_dbtg(&program, &personnel_schema(), &BTreeMap::new());
        assert_eq!(
            ex.sequences[0].to_string(),
            "ACCESS EMP via EMP\nACCESS DEPT via EMP\nRETRIEVE"
        );
    }

    #[test]
    fn store_flushes_sequence_with_operation() {
        let program = parse_dbtg(
            "DBTG PROGRAM W.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  MOVE 'E9' TO E# IN EMP.
  STORE EMP.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let ex = sequences_of_dbtg(&program, &personnel_schema(), &BTreeMap::new());
        assert_eq!(ex.sequences.len(), 1);
        assert_eq!(ex.sequences[0].operation, DbOperation::Store);
    }

    #[test]
    fn accept_models_runtime_condition() {
        let program = parse_dbtg(
            "DBTG PROGRAM A.
  ACCEPT D# IN DEPT FROM TERMINAL.
  FIND ANY DEPT USING D#.
  GET DEPT.
  PRINT DEPT.DNAME.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let ex = sequences_of_dbtg(&program, &personnel_schema(), &BTreeMap::new());
        let cond = ex.sequences[0].steps[0].condition.as_ref().unwrap();
        assert!(cond.to_string().contains("D#-INPUT"));
    }
}
