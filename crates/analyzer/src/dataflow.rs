//! Dataflow analysis: the §3.2 execution-time-variability hazards.
//!
//! "Any software which attempts to understand the program's behavior from a
//! source language version of the program must (through data flow analysis
//! techniques) make sure that the commands do not vary at run time."
//! This module detects, over host and DBTG programs:
//!
//! * **run-time-variable DML verbs** — `CALL DML v ON R` where `v` is not a
//!   literal ("what appeared to be a read at compile time might become an
//!   update");
//! * **observable retrieval order** — an unsorted `FIND` whose results reach
//!   the terminal or a file in iteration order (restructuring the ordering
//!   keys would silently change output);
//! * **status-code dependence** — DBTG branches on integrity-flavored status
//!   codes, whose values "certain restructurings … will cause … to be
//!   different";
//! * **process-first suspicion** — a `FIND FIRST` whose set is never
//!   advanced with `FIND NEXT`: "a programmer may have intended to 'process
//!   all' dependent records … but may have written a program which will
//!   'process the first'".
//!
//! It also computes the **field reference set** — every `(record type,
//! field)` a program touches — which is what lets the converter decide
//! whether a `DropField` restructuring affects a given program.

use crate::extract::var_types;
use dbpc_datamodel::network::NetworkSchema;
use dbpc_dml::dbtg::{DbtgProgram, DbtgStmt, StatusCond};
use dbpc_dml::expr::{BoolExpr, Expr};
use dbpc_dml::host::{FindExpr, ForSource, PathStart, Program, Stmt};
use std::collections::BTreeSet;
use std::fmt;

/// A conversion hazard detected by analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// `CALL DML` with a non-literal verb.
    RuntimeVariableVerb { record: String },
    /// Unsorted retrieval whose order reaches observable output. The
    /// `query` is the printed form of the FIND.
    OrderObservable { query: String },
    /// DBTG program branches on an integrity-flavored status code.
    StatusCodeDependence { status: String },
    /// `FIND FIRST` without a subsequent `FIND NEXT` on the same set.
    ProcessFirstSuspicion { set: String },
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::RuntimeVariableVerb { record } => write!(
                f,
                "DML verb on {record} varies at run time; read/update \
                 distinction unknowable at conversion time"
            ),
            Hazard::OrderObservable { query } => {
                write!(f, "retrieval order observable without SORT: {query}")
            }
            Hazard::StatusCodeDependence { status } => {
                write!(f, "program branches on status code {status}")
            }
            Hazard::ProcessFirstSuspicion { set } => write!(
                f,
                "FIND FIRST WITHIN {set} never advanced; 'process all' may \
                 have been intended"
            ),
        }
    }
}

/// What static analysis learned about a program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    pub hazards: Vec<Hazard>,
    /// Every `(record type, field)` the program references.
    pub field_refs: BTreeSet<(String, String)>,
    /// Sets traversed in FIND paths.
    pub sets_used: BTreeSet<String>,
    /// Record types the program touches.
    pub records_used: BTreeSet<String>,
    /// Does the program perform updates (vs. pure retrieval)?
    pub has_updates: bool,
}

impl AnalysisReport {
    pub fn references_field(&self, record: &str, field: &str) -> bool {
        self.field_refs
            .contains(&(record.to_string(), field.to_string()))
    }
}

/// Analyze a host program against its source schema.
pub fn analyze_host(program: &Program, schema: &NetworkSchema) -> AnalysisReport {
    let types = var_types(program);
    let mut report = AnalysisReport::default();

    // Pass 1: field references, sets, records.
    program.visit_stmts(&mut |s| match s {
        Stmt::Find { query, .. } => {
            collect_find_refs(query, &types, schema, &mut report);
        }
        Stmt::ForEach {
            source: ForSource::Query(q),
            ..
        } => {
            collect_find_refs(q, &types, schema, &mut report);
        }
        Stmt::Store {
            record,
            assigns,
            connects,
        } => {
            report.has_updates = true;
            report.records_used.insert(record.clone());
            for (f, e) in assigns {
                report.field_refs.insert((record.clone(), f.clone()));
                collect_expr_refs(e, &types, &mut report);
            }
            for c in connects {
                report.sets_used.insert(c.set.clone());
            }
        }
        Stmt::Modify { var, assigns } => {
            report.has_updates = true;
            if let Some(t) = types.get(var) {
                for (f, _) in assigns {
                    report.field_refs.insert((t.clone(), f.clone()));
                }
            }
            for (_, e) in assigns {
                collect_expr_refs(e, &types, &mut report);
            }
        }
        Stmt::Delete { var, .. } => {
            report.has_updates = true;
            if let Some(t) = types.get(var) {
                report.records_used.insert(t.clone());
            }
        }
        Stmt::Connect { set, .. } | Stmt::Disconnect { set, .. } => {
            report.has_updates = true;
            report.sets_used.insert(set.clone());
        }
        Stmt::Print(exprs) | Stmt::WriteFile { exprs, .. } => {
            for e in exprs {
                collect_expr_refs(e, &types, &mut report);
            }
        }
        Stmt::Let { expr, .. } => collect_expr_refs(expr, &types, &mut report),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::Check { cond, .. } => {
            collect_bool_refs(cond, &types, &mut report);
        }
        Stmt::CallDml { verb, record } => {
            report.records_used.insert(record.clone());
            if !matches!(verb, Expr::Lit(_)) {
                report.hazards.push(Hazard::RuntimeVariableVerb {
                    record: record.clone(),
                });
            }
            // A runtime verb may read or write anything in the record.
            if let Some(r) = schema.record(record) {
                for f in &r.fields {
                    report.field_refs.insert((record.clone(), f.name.clone()));
                }
            }
            report.has_updates = true;
        }
        _ => {}
    });

    // Pass 2: order observability. A FIND feeding a FOR EACH whose body
    // produces output is order-observable unless SORTed.
    let mut order_hazards = Vec::new();
    check_order(&program.stmts, &mut Vec::new(), &mut order_hazards);
    report.hazards.extend(order_hazards);

    report
}

/// Recursive walk tracking FIND definitions; flags unsorted iterations with
/// observable bodies.
fn check_order(stmts: &[Stmt], finds: &mut Vec<(String, FindExpr)>, out: &mut Vec<Hazard>) {
    for s in stmts {
        match s {
            Stmt::Find { var, query } => {
                finds.push((var.clone(), query.clone()));
            }
            Stmt::ForEach { source, body, .. } => {
                let query = match source {
                    ForSource::Query(q) => Some(q.clone()),
                    ForSource::Var(v) => finds
                        .iter()
                        .rev()
                        .find(|(name, _)| name == v)
                        .map(|(_, q)| q.clone()),
                };
                if let Some(q) = query {
                    if !q.is_sorted() && body_is_observable(body) && iteration_order_matters(&q) {
                        out.push(Hazard::OrderObservable {
                            query: q.to_string(),
                        });
                    }
                }
                check_order(body, finds, out);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                check_order(then_branch, finds, out);
                check_order(else_branch, finds, out);
            }
            Stmt::While { body, .. } => check_order(body, finds, out),
            _ => {}
        }
    }
}

/// Output inside the loop body makes iteration order observable.
fn body_is_observable(body: &[Stmt]) -> bool {
    let mut found = false;
    for s in body {
        match s {
            Stmt::Print(_) | Stmt::WriteFile { .. } => found = true,
            Stmt::ForEach { body, .. } | Stmt::While { body, .. } => {
                found |= body_is_observable(body)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                found |= body_is_observable(then_branch) || body_is_observable(else_branch);
            }
            _ => {}
        }
        if found {
            return true;
        }
    }
    false
}

/// Single-step paths over one set occurrence with at most one possible
/// member… are still ordered; conservatively, any multi-member iteration
/// matters. (A zero-step collection start inherits the source's order.)
fn iteration_order_matters(q: &FindExpr) -> bool {
    // Only an explicitly sorted query is order-safe; everything else is
    // conservative-hazard. Kept as a hook for future refinement.
    !q.is_sorted()
}

fn collect_find_refs(
    q: &FindExpr,
    types: &std::collections::BTreeMap<String, String>,
    schema: &NetworkSchema,
    report: &mut AnalysisReport,
) {
    let spec = q.spec();
    if let PathStart::Collection(v) = &spec.start {
        if let Some(t) = types.get(v) {
            report.records_used.insert(t.clone());
        }
    }
    for step in &spec.steps {
        report.sets_used.insert(step.set.clone());
        report.records_used.insert(step.record.clone());
        if let Some(f) = &step.filter {
            // Unqualified names that are fields of the step's record type
            // count as field references of that record.
            for n in f.names() {
                if schema
                    .record(&step.record)
                    .is_some_and(|r| r.field(n).is_some())
                {
                    report
                        .field_refs
                        .insert((step.record.clone(), n.to_string()));
                }
            }
            collect_bool_refs(f, types, report);
        }
    }
    if let FindExpr::Sort { keys, .. } = q {
        for k in keys {
            report.field_refs.insert((spec.target.clone(), k.clone()));
        }
    }
}

fn collect_expr_refs(
    e: &Expr,
    types: &std::collections::BTreeMap<String, String>,
    report: &mut AnalysisReport,
) {
    match e {
        Expr::Field { var, field } => {
            if let Some(t) = types.get(var) {
                report.field_refs.insert((t.clone(), field.clone()));
            }
        }
        Expr::Bin { left, right, .. } => {
            collect_expr_refs(left, types, report);
            collect_expr_refs(right, types, report);
        }
        _ => {}
    }
}

fn collect_bool_refs(
    b: &BoolExpr,
    types: &std::collections::BTreeMap<String, String>,
    report: &mut AnalysisReport,
) {
    match b {
        BoolExpr::Cmp { left, right, .. } => {
            collect_expr_refs(left, types, report);
            collect_expr_refs(right, types, report);
        }
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            collect_bool_refs(a, types, report);
            collect_bool_refs(b, types, report);
        }
        BoolExpr::Not(a) => collect_bool_refs(a, types, report),
    }
}

/// Analyze a DBTG program for status-code dependence and process-first
/// suspicion.
pub fn analyze_dbtg(program: &DbtgProgram) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    let mut first_sets: Vec<String> = Vec::new();
    let mut next_sets: Vec<String> = Vec::new();
    for s in program.stmts() {
        match s {
            DbtgStmt::IfStatus { cond, .. } => {
                // ENDSET/NOTFOUND branches are the normal loop templates;
                // integrity-flavored codes are restructuring-sensitive.
                if matches!(
                    cond,
                    StatusCond::Integrity | StatusCond::Duplicate | StatusCond::NoCurrency
                ) {
                    hazards.push(Hazard::StatusCodeDependence {
                        status: cond.mnemonic().to_string(),
                    });
                }
            }
            DbtgStmt::FindFirst { set, .. } => first_sets.push(set.clone()),
            DbtgStmt::FindNext { set, .. } => next_sets.push(set.clone()),
            _ => {}
        }
    }
    for set in first_sets {
        if !next_sets.contains(&set) {
            hazards.push(Hazard::ProcessFirstSuspicion { set });
        }
    }
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::dbtg::parse_dbtg;
    use dbpc_dml::host::parse_program;

    fn company_schema() -> NetworkSchema {
        NetworkSchema::new("COMPANY-NAME")
            .with_record(RecordTypeDef::new(
                "DIV",
                vec![FieldDef::new("DIV-NAME", FieldType::Char(20))],
            ))
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("DEPT-NAME", FieldType::Char(5)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-DIV", "DIV", vec!["DIV-NAME"]))
            .with_set(SetDef::owned("DIV-EMP", "DIV", "EMP", vec!["EMP-NAME"]))
    }

    #[test]
    fn runtime_verb_flagged() {
        let p = parse_program(
            "PROGRAM P;
  READ TERMINAL INTO V;
  CALL DML V ON EMP;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(matches!(
            r.hazards.as_slice(),
            [Hazard::RuntimeVariableVerb { record }] if record == "EMP"
        ));
        // All EMP fields are conservatively referenced.
        assert!(r.references_field("EMP", "AGE"));
    }

    #[test]
    fn literal_verb_not_flagged() {
        let p = parse_program(
            "PROGRAM P;
  CALL DML 'RETRIEVE' ON EMP;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.hazards.is_empty());
    }

    #[test]
    fn unsorted_observable_iteration_flagged() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r
            .hazards
            .iter()
            .any(|h| matches!(h, Hazard::OrderObservable { .. })));
    }

    #[test]
    fn sorted_iteration_not_flagged() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME);
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.hazards.is_empty());
    }

    #[test]
    fn unobservable_iteration_not_flagged() {
        // Counting does not observe order.
        let p = parse_program(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP);
  PRINT COUNT(E);
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.hazards.is_empty());
    }

    #[test]
    fn field_references_collected_from_filters_and_prints() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'), DIV-EMP, EMP(AGE > 30));
  FOR EACH R IN E DO
    WRITE FILE 'OUT' R.EMP-NAME;
  END FOR;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.references_field("DIV", "DIV-NAME"));
        assert!(r.references_field("EMP", "AGE"));
        assert!(r.references_field("EMP", "EMP-NAME"));
        assert!(!r.references_field("EMP", "DEPT-NAME"));
        assert!(r.sets_used.contains("DIV-EMP"));
        assert!(!r.has_updates);
    }

    #[test]
    fn updates_detected() {
        let p = parse_program(
            "PROGRAM P;
  FIND D := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  STORE EMP (EMP-NAME := 'X', AGE := 1) CONNECT TO DIV-EMP OF D;
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.has_updates);
        assert!(r.references_field("EMP", "AGE"));
    }

    #[test]
    fn sort_keys_are_field_refs() {
        let p = parse_program(
            "PROGRAM P;
  FIND E := SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE);
END PROGRAM;",
        )
        .unwrap();
        let r = analyze_host(&p, &company_schema());
        assert!(r.references_field("EMP", "AGE"));
    }

    #[test]
    fn dbtg_status_dependence_flagged() {
        let p = parse_dbtg(
            "DBTG PROGRAM D.
  MOVE 'X' TO EMP-NAME IN EMP.
  STORE EMP.
  IF STATUS DUPLICATE GO TO DUP.
  STOP.
DUP.
  PRINT 'DUP'.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let h = analyze_dbtg(&p);
        assert!(matches!(
            h.as_slice(),
            [Hazard::StatusCodeDependence { status }] if status == "DUPLICATE"
        ));
    }

    #[test]
    fn dbtg_process_first_suspicion() {
        let p = parse_dbtg(
            "DBTG PROGRAM F.
  MOVE 'M' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
  GET EMP.
  PRINT EMP.EMP-NAME.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        let h = analyze_dbtg(&p);
        assert!(matches!(
            h.as_slice(),
            [Hazard::ProcessFirstSuspicion { set }] if set == "DIV-EMP"
        ));
    }

    #[test]
    fn dbtg_loop_template_not_suspicious() {
        let p = parse_dbtg(
            "DBTG PROGRAM L.
  MOVE 'M' TO DIV-NAME IN DIV.
  FIND ANY DIV USING DIV-NAME.
  FIND FIRST EMP WITHIN DIV-EMP.
L.
  IF STATUS ENDSET GO TO F.
  GET EMP.
  PRINT EMP.EMP-NAME.
  FIND NEXT EMP WITHIN DIV-EMP.
  GO TO L.
F.
  STOP.
END PROGRAM.",
        )
        .unwrap();
        assert!(analyze_dbtg(&p).is_empty());
    }
}
