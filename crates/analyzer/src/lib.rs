//! # dbpc-analyzer
//!
//! The framework's **Program Analyzer** (Figure 4.1): "uses the source
//! database description and matches candidate language templates against the
//! source application program to produce a representation of the database
//! operations and data access patterns made by the program."
//!
//! * [`patterns`] — Su's model-independent access patterns (§4.1): `Access A
//!   via A`, `Access A via B through (Ai, Bj)`, `Access AB via B`, `Access A
//!   via AB`, assembled into access sequences.
//! * [`extract`] — extraction of access sequences from host programs
//!   (direct, since `FIND` paths carry the structure) and from DBTG
//!   navigation programs (by **language-template matching** over
//!   `FIND ANY` / `FIND NEXT WITHIN` / `IF STATUS` idioms — Nations & Su,
//!   ref 26).
//! * [`apg`] — the **access path graph** (Su & Liu, ref 25): record types
//!   and sets as a graph, with alternate-path enumeration (multiple paths ⇒
//!   an interactive question for the Conversion Analyst).
//! * [`dataflow`] — detection of the §3.2 execution-time-variability
//!   hazards: run-time-variable DML verbs, observable retrieval order,
//!   status-code dependence, process-first-vs-process-all suspicion.
//! * [`cache`] — memoized analysis keyed by `(schema, program)`
//!   fingerprints, for batch pipelines that meet the same program under
//!   several restructurings (thread-local; hit/miss counters are
//!   diagnostic only).
//! * [`integrity`] — detection of §3.1 integrity constraints "enforced
//!   procedurally in the program" (the §5.3 open problem, solved here for
//!   this crate's constraint catalogue).
//! * [`lint`] — the §5.3 programmer's aid: convertibility guidelines
//!   checked against programs before they ever need converting.

pub mod apg;
pub mod cache;
pub mod dataflow;
pub mod extract;
pub mod integrity;
pub mod lint;
pub mod patterns;

pub use dataflow::{analyze_host, AnalysisReport, Hazard};
pub use patterns::{AccessSequence, AccessStep, DbOperation, Via};
