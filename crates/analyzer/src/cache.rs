//! Memoized program analysis.
//!
//! The study corpus (dbpc-corpus) re-analyzes the *same* generated program
//! once per restructuring class — the program seed depends only on
//! `(study seed, sample, program class)`, so each program is converted
//! against every transform row. Analysis ([`analyze_host`]) walks the whole
//! program each time; this module memoizes it keyed by a hash of the
//! program and of the schema it is analyzed against.
//!
//! The cache map is **process-wide**: a report is a deterministic function
//! of its `(schema, program)` key, so which worker computes an entry first
//! can never change what any other worker reads back — sharing is safe for
//! determinism, and it keeps short-lived pool workers warm across study
//! runs. The lock brackets only the lookup or insert, never an analysis.
//! Hit/miss **counters** live in the thread-local `dbpc-obs` metric sheet
//! (PR 5; previously private `Cell`s that were never merged across pool
//! workers): harnesses snapshot them around a unit of work on the worker
//! that does the work, and the per-item deltas merge into the study's
//! registry. They are `racy`-kind metrics — the hit/miss *split* depends
//! on cross-worker interleaving — but `hits + misses == lookups` holds at
//! any thread count, and `analyzer.cache_lookups` is a plain deterministic
//! counter.

use crate::dataflow::{analyze_host, AnalysisReport};
use dbpc_datamodel::network::NetworkSchema;
use dbpc_dml::host::Program;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{DefaultHasher, Hasher};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard, PoisonError};

/// Metric name for memo-cache hits (racy: split depends on interleaving).
pub const CACHE_HITS: &str = "analyzer.cache_hits";
/// Metric name for memo-cache misses (racy, ditto).
pub const CACHE_MISSES: &str = "analyzer.cache_misses";
/// Metric name for total memo lookups (deterministic: one per call).
pub const CACHE_LOOKUPS: &str = "analyzer.cache_lookups";

/// Snapshot of this thread's cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Counter deltas since `earlier` (for bracketing a unit of work).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Read the `analyzer.*` cache counters out of a merged metrics frame.
    pub fn from_frame(frame: &dbpc_obs::MetricsFrame) -> CacheStats {
        CacheStats {
            hits: frame.counter(CACHE_HITS),
            misses: frame.counter(CACHE_MISSES),
        }
    }
}

/// Cache key: `(schema fingerprint, program fingerprint)`.
type FingerprintKey = (u64, u64);

static CACHE: LazyLock<Mutex<HashMap<FingerprintKey, Arc<AnalysisReport>>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// `fmt::Write` adapter that streams formatted output straight into a
/// hasher, so fingerprinting never materializes the `Debug` string.
struct HashWriter<'a>(&'a mut DefaultHasher);

impl fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

fn debug_fingerprint(value: &dyn fmt::Debug) -> u64 {
    let mut h = DefaultHasher::new();
    write!(HashWriter(&mut h), "{value:?}").expect("hashing never fails");
    h.finish()
}

/// Stable-within-a-process fingerprint of a program: a structural hash of
/// the AST (the host AST derives `Hash`), an order of magnitude cheaper
/// than formatting it. Collisions across a corpus of a few thousand
/// programs are vanishingly unlikely at 64 bits; a collision would only
/// mis-share an *analysis report*, which the execution-verification step
/// of the study would surface as `verified_wrong`.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    std::hash::Hash::hash(program, &mut h);
    h.finish()
}

/// Fingerprint of the schema side of the key. Schemas are much larger than
/// programs, so batch callers should compute this **once** per batch and
/// use [`analyze_host_memo_keyed`].
pub fn schema_fingerprint(schema: &NetworkSchema) -> u64 {
    debug_fingerprint(schema)
}

/// [`analyze_host`], memoized per `(schema, program)` fingerprint pair.
/// Returns the report behind an `Arc` so a cache hit costs a refcount bump,
/// not a deep clone of every hazard and field list.
pub fn analyze_host_memo(program: &Program, schema: &NetworkSchema) -> Arc<AnalysisReport> {
    analyze_host_memo_keyed(program, schema, schema_fingerprint(schema))
}

/// [`analyze_host_memo`] with the schema fingerprint precomputed by the
/// caller (it must be `schema_fingerprint(schema)` for the same schema).
pub fn analyze_host_memo_keyed(
    program: &Program,
    schema: &NetworkSchema,
    schema_fp: u64,
) -> Arc<AnalysisReport> {
    let key = (schema_fp, program_fingerprint(program));
    dbpc_obs::count(CACHE_LOOKUPS, 1);
    if let Some(report) = lock_cache().get(&key).cloned() {
        dbpc_obs::racy(CACHE_HITS, 1);
        return report;
    }
    dbpc_obs::racy(CACHE_MISSES, 1);
    let report = Arc::new(analyze_host(program, schema));
    lock_cache().insert(key, report.clone());
    report
}

/// Lock the cache map, recovering from poisoning: the guard is never held
/// across analysis (only map reads/writes), so a panicking thread cannot
/// leave the map inconsistent — a poisoned lock just means some thread
/// died elsewhere, and the supervised pipeline keeps running.
fn lock_cache() -> MutexGuard<'static, HashMap<FingerprintKey, Arc<AnalysisReport>>> {
    CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// This thread's cumulative hit/miss counters.
pub fn cache_stats() -> CacheStats {
    CacheStats::from_frame(&dbpc_obs::local_snapshot())
}

/// Drop the process-wide cache and zero this thread's counters (test/bench
/// isolation). Concurrent users of the cache only get extra misses from
/// this, never wrong reports.
pub fn reset_cache() {
    lock_cache().clear();
    dbpc_obs::local_remove(CACHE_HITS);
    dbpc_obs::local_remove(CACHE_MISSES);
    dbpc_obs::local_remove(CACHE_LOOKUPS);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpc_datamodel::network::{FieldDef, RecordTypeDef, SetDef};
    use dbpc_datamodel::types::FieldType;
    use dbpc_dml::host::parse_program;

    fn schema() -> NetworkSchema {
        NetworkSchema::new("S")
            .with_record(RecordTypeDef::new(
                "EMP",
                vec![
                    FieldDef::new("EMP-NAME", FieldType::Char(25)),
                    FieldDef::new("AGE", FieldType::Int(2)),
                ],
            ))
            .with_set(SetDef::system("ALL-EMP", "EMP", vec!["EMP-NAME"]))
    }

    fn program(age: i64) -> Program {
        parse_program(&format!(
            "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-EMP, EMP(AGE > {age}));
  PRINT COUNT(E);
END PROGRAM;"
        ))
        .unwrap()
    }

    // The cache map is shared process-wide and the test harness runs tests
    // concurrently, so each test below uses (program, schema) keys no other
    // test touches, and none calls `reset_cache` (which would race with a
    // sibling's hit/miss bracketing).

    #[test]
    fn memoized_analysis_matches_direct_analysis() {
        let s = schema();
        let p = program(30);
        let direct = analyze_host(&p, &s);
        let memo = analyze_host_memo(&p, &s);
        assert_eq!(direct.hazards, memo.hazards);
        assert_eq!(direct.field_refs, memo.field_refs);
        assert_eq!(direct.sets_used, memo.sets_used);
        assert_eq!(direct.records_used, memo.records_used);
        assert_eq!(direct.has_updates, memo.has_updates);
    }

    #[test]
    fn repeated_analysis_hits_the_cache() {
        let s = schema();
        let p = program(40);
        let before = cache_stats();
        analyze_host_memo(&p, &s);
        analyze_host_memo(&p, &s);
        analyze_host_memo(&p, &s);
        let delta = cache_stats().since(&before);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.hits, 2);
    }

    #[test]
    fn distinct_programs_and_schemas_miss() {
        let s = schema();
        let before = cache_stats();
        analyze_host_memo(&program(51), &s);
        analyze_host_memo(&program(52), &s);
        let renamed = NetworkSchema {
            name: "S2".into(),
            ..schema()
        };
        analyze_host_memo(&program(51), &renamed);
        let delta = cache_stats().since(&before);
        assert_eq!(delta.misses, 3);
        assert_eq!(delta.hits, 0);
    }
}
