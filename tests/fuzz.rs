//! Robustness: the parsers and engines never panic, whatever they are fed.
//!
//! The conversion system is only "computer-aided" if malformed inputs
//! produce diagnostics, not crashes — 1979 shops fed these tools decks of
//! arbitrary COBOL.

use dbpc::corpus::gen::{
    generate_schema, populate_schema, random_invertible_transform, SchemaGenConfig,
};
use dbpc::datamodel::ddl::{parse_network_schema, print_network_schema};
use dbpc::dml::dbtg::parse_dbtg;
use dbpc::dml::dli::parse_dli;
use dbpc::dml::host::parse_program;
use dbpc::dml::sequel::{parse_select, parse_sequel_program};
use dbpc::restructure::Restructuring;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No parser panics on arbitrary printable input.
    #[test]
    fn parsers_never_panic(input in "[ -~\n]{0,200}") {
        let _ = parse_program(&input);
        let _ = parse_dbtg(&input);
        let _ = parse_dli(&input);
        let _ = parse_select(&input);
        let _ = parse_sequel_program(&input);
        let _ = parse_network_schema(&input);
    }

    /// No parser panics on mutations of a valid program (the realistic
    /// corruption case: truncated decks, swapped cards).
    #[test]
    fn parsers_survive_mutations(cut in 0usize..400, extra in "[ -~]{0,12}") {
        let valid = "PROGRAM P;
  LET X := 3;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'), DIV-EMP, EMP(AGE > X));
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
END PROGRAM;";
        let cut = cut.min(valid.len());
        // Stay on a char boundary (always true for this ASCII source).
        let mutated = format!("{}{}{}", &valid[..cut], extra, &valid[cut..]);
        let _ = parse_program(&mutated);
    }

    /// Generated schemas always validate, populate, translate under a
    /// random invertible transform, and round-trip through the DDL.
    #[test]
    fn generated_schema_pipeline_holds(seed in 0u64..500) {
        let schema = generate_schema(SchemaGenConfig::default(), seed);
        schema.validate().unwrap();

        // DDL round trip (names/sets/constraints; virtual widths excluded
        // by construction — the generator emits no virtual fields).
        let printed = print_network_schema(&schema);
        let parsed = parse_network_schema(&printed).unwrap();
        prop_assert_eq!(&schema.sets, &parsed.sets);

        // Populate and translate.
        let db = populate_schema(&schema, 4, seed).unwrap();
        let t = random_invertible_transform(&schema, seed);
        let r = Restructuring::single(t);
        let translated = r.translate(&db).unwrap();
        prop_assert_eq!(db.record_count(), translated.record_count());

        // And back (renames round-trip; AddField's inverse drops the
        // default-filled field, record counts still match).
        let back = r.inverse().unwrap().translate(&translated).unwrap();
        prop_assert_eq!(back.record_count(), db.record_count());
    }
}
