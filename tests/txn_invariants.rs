//! Property tests on the transactional substrate: for every engine, a
//! savepoint followed by an arbitrary mutation suffix and a rollback is
//! indistinguishable from never having run the suffix — full logical
//! state (via `fingerprint`) *and* the derived access structures
//! (secondary indexes, preorder cache, per-set member maps, via
//! `check_access_structures`) restored alike. Commit is likewise
//! indistinguishable from running the same ops with no savepoint at all,
//! and rollbacks nest. A final regression pins the engine-level
//! consequence the supervision ladder depends on: a mutating program
//! killed by fuel exhaustion leaves the base bitwise-unchanged.

use dbpc::corpus::named;
use dbpc::datamodel::hierarchical::{HierSchema, SegmentDef};
use dbpc::datamodel::network::FieldDef;
use dbpc::datamodel::relational::{ColumnDef, RelationalSchema, TableDef};
use dbpc::datamodel::types::FieldType;
use dbpc::datamodel::value::Value;
use dbpc::dml::host::parse_program;
use dbpc::engine::error::RunError;
use dbpc::engine::host_exec::run_host_with_fuel;
use dbpc::engine::Inputs;
use dbpc::storage::{HierDb, NetworkDb, RecordId, RelationalDb};
use proptest::prelude::*;

// -- network ------------------------------------------------------------------

/// One random network mutation over the company schema.
#[derive(Debug, Clone)]
enum NetOp {
    StoreEmp { n: u16, dept: u8, age: u8, div: u8 },
    StoreDiv { n: u16 },
    ModifyAge { pick: u8, age: u8 },
    EraseEmp { pick: u8 },
    EraseDivCascade { pick: u8 },
    Disconnect { pick: u8 },
}

fn net_op_strategy() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(n, dept, age, div)| NetOp::StoreEmp { n, dept, age, div }),
        any::<u16>().prop_map(|n| NetOp::StoreDiv { n }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, age)| NetOp::ModifyAge { pick, age }),
        any::<u8>().prop_map(|pick| NetOp::EraseEmp { pick }),
        any::<u8>().prop_map(|pick| NetOp::EraseDivCascade { pick }),
        any::<u8>().prop_map(|pick| NetOp::Disconnect { pick }),
    ]
}

fn pick(ids: &[RecordId], k: u8) -> Option<RecordId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[k as usize % ids.len()])
    }
}

fn apply_net(db: &mut NetworkDb, op: &NetOp) {
    // Individual ops may legitimately fail (duplicates, members present);
    // the property is about what rollback restores, not what succeeds.
    match op {
        NetOp::StoreEmp { n, dept, age, div } => {
            let divs = db.records_of_type("DIV");
            if let Some(d) = pick(&divs, *div) {
                let _ = db.store(
                    "EMP",
                    &[
                        ("EMP-NAME", Value::str(format!("E{n:05}"))),
                        ("DEPT-NAME", Value::str(format!("D{}", dept % 5))),
                        ("AGE", Value::Int(*age as i64 % 80)),
                    ],
                    &[("DIV-EMP", d)],
                );
            }
        }
        NetOp::StoreDiv { n } => {
            let _ = db.store(
                "DIV",
                &[
                    ("DIV-NAME", Value::str(format!("V{n:05}"))),
                    ("DIV-LOC", Value::str("X")),
                ],
                &[],
            );
        }
        NetOp::ModifyAge { pick: p, age } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.modify(id, &[("AGE", Value::Int(*age as i64 % 80))]);
            }
        }
        NetOp::EraseEmp { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.erase(id, false);
            }
        }
        NetOp::EraseDivCascade { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("DIV"), *p) {
                let _ = db.erase(id, true);
            }
        }
        NetOp::Disconnect { pick: p } => {
            if let Some(id) = pick(&db.records_of_type("EMP"), *p) {
                let _ = db.disconnect("DIV-EMP", id);
            }
        }
    }
}

// -- relational ---------------------------------------------------------------

/// One random relational mutation against T(K pk, C indexed, A).
#[derive(Debug, Clone)]
enum RelOp {
    Insert { k: u8, c: u8, a: u8 },
    DeleteByC { c: u8 },
    Reclass { k: u8, c: u8 },
}

fn rel_op_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(k, c, a)| RelOp::Insert { k, c, a }),
        any::<u8>().prop_map(|c| RelOp::DeleteByC { c }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, c)| RelOp::Reclass { k, c }),
    ]
}

fn rel_db() -> RelationalDb {
    let schema = RelationalSchema::new("P").with_table(
        TableDef::new(
            "T",
            vec![
                ColumnDef::new("K", FieldType::Int(4)),
                ColumnDef::new("C", FieldType::Char(4)),
                ColumnDef::new("A", FieldType::Int(4)),
            ],
        )
        .with_key(vec!["K"]),
    );
    let mut db = RelationalDb::new(schema).unwrap();
    db.create_index("T", &["C"]).unwrap();
    db
}

fn apply_rel(db: &mut RelationalDb, op: &RelOp) {
    match op {
        RelOp::Insert { k, c, a } => {
            let _ = db.insert(
                "T",
                &[
                    ("K", Value::Int((*k % 64) as i64)),
                    ("C", Value::str(format!("C{}", c % 8))),
                    ("A", Value::Int(*a as i64)),
                ],
            );
        }
        RelOp::DeleteByC { c } => {
            let want = Value::str(format!("C{}", c % 8));
            let _ = db.delete_where("T", |row| row[1].loose_eq(&want));
        }
        RelOp::Reclass { k, c } => {
            let want = Value::Int((*k % 64) as i64);
            let _ = db.update_where(
                "T",
                |row| row[0].loose_eq(&want),
                &[("C", Value::str(format!("C{}", c % 8)))],
            );
        }
    }
}

// -- hierarchic ---------------------------------------------------------------

/// One random hierarchic mutation against DIV → EMP.
#[derive(Debug, Clone)]
enum HierOp {
    AddDiv { n: u16 },
    AddEmp { pick: u8, n: u16 },
    Rename { pick: u8, n: u16 },
    Delete { pick: u8 },
}

fn hier_op_strategy() -> impl Strategy<Value = HierOp> {
    prop_oneof![
        any::<u16>().prop_map(|n| HierOp::AddDiv { n }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, n)| HierOp::AddEmp { pick, n }),
        (any::<u8>(), any::<u16>()).prop_map(|(pick, n)| HierOp::Rename { pick, n }),
        any::<u8>().prop_map(|pick| HierOp::Delete { pick }),
    ]
}

fn hier_seed() -> HierDb {
    let schema = HierSchema::new("COMPANY").with_root(
        SegmentDef::new("DIV", vec![FieldDef::new("DIV-NAME", FieldType::Char(20))])
            .with_seq_field("DIV-NAME")
            .with_child(
                SegmentDef::new("EMP", vec![FieldDef::new("EMP-NAME", FieldType::Char(25))])
                    .with_seq_field("EMP-NAME"),
            ),
    );
    let mut db = HierDb::new(schema).unwrap();
    db.insert("DIV", &[("DIV-NAME", Value::str("SEED"))], None)
        .unwrap();
    db
}

fn pick_id(ids: &[u64], k: u8) -> Option<u64> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[k as usize % ids.len()])
    }
}

fn apply_hier(db: &mut HierDb, op: &HierOp) {
    match op {
        HierOp::AddDiv { n } => {
            let _ = db.insert("DIV", &[("DIV-NAME", Value::str(format!("V{n:05}")))], None);
        }
        HierOp::AddEmp { pick, n } => {
            if let Some(div) = pick_id(&db.occurrences_of("DIV"), *pick) {
                let _ = db.insert(
                    "EMP",
                    &[("EMP-NAME", Value::str(format!("E{n:05}")))],
                    Some(div),
                );
            }
        }
        HierOp::Rename { pick, n } => {
            if let Some(emp) = pick_id(&db.occurrences_of("EMP"), *pick) {
                let _ = db.replace(emp, &[("EMP-NAME", Value::str(format!("R{n:05}")))]);
            }
        }
        HierOp::Delete { pick } => {
            if let Some(id) = pick_id(&db.occurrences_of("EMP"), *pick) {
                let _ = db.delete(id);
            }
        }
    }
}

// -- the properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Network: savepoint + suffix + rollback ≡ never running the suffix,
    /// for the full logical state and every derived structure.
    #[test]
    fn network_rollback_erases_the_suffix(
        prefix in prop::collection::vec(net_op_strategy(), 0..40),
        suffix in prop::collection::vec(net_op_strategy(), 1..40),
    ) {
        let mut db = named::company_db(3, 3, 5);
        // Materialize a calc-key index so rollback must restore it (or its
        // source of truth) rather than start from a cold cache.
        db.find_keyed("EMP", &["DEPT-NAME"], &[Value::str("D0")]).unwrap();
        for op in &prefix {
            apply_net(&mut db, op);
        }
        let before = db.fingerprint();
        let sp = db.begin_savepoint();
        for op in &suffix {
            apply_net(&mut db, op);
        }
        db.rollback_to(sp);
        prop_assert_eq!(db.fingerprint(), before);
        db.check_access_structures().unwrap();
    }

    /// Network: commit ≡ running the same ops with no savepoint at all,
    /// and a nested rollback inside a committed outer savepoint undoes
    /// exactly its own ops.
    #[test]
    fn network_commit_keeps_and_nested_rollback_peels(
        a in prop::collection::vec(net_op_strategy(), 0..25),
        b in prop::collection::vec(net_op_strategy(), 1..25),
    ) {
        // Commit path: savepoints are pure bookkeeping.
        let mut plain = named::company_db(3, 3, 5);
        let mut txn = named::company_db(3, 3, 5);
        for op in a.iter().chain(&b) {
            apply_net(&mut plain, op);
        }
        let sp = txn.begin_savepoint();
        for op in a.iter().chain(&b) {
            apply_net(&mut txn, op);
        }
        txn.commit(sp);
        prop_assert_eq!(txn.fingerprint(), plain.fingerprint());

        // Nested path: outer(a) + inner(b rolled back) ≡ a alone.
        let mut just_a = named::company_db(3, 3, 5);
        for op in &a {
            apply_net(&mut just_a, op);
        }
        let mut nested = named::company_db(3, 3, 5);
        let outer = nested.begin_savepoint();
        for op in &a {
            apply_net(&mut nested, op);
        }
        let inner = nested.begin_savepoint();
        for op in &b {
            apply_net(&mut nested, op);
        }
        nested.rollback_to(inner);
        nested.commit(outer);
        prop_assert_eq!(nested.fingerprint(), just_a.fingerprint());
        nested.check_access_structures().unwrap();
    }

    /// Relational: rollback restores rows, the pk index, and the secondary
    /// index on C.
    #[test]
    fn relational_rollback_erases_the_suffix(
        prefix in prop::collection::vec(rel_op_strategy(), 0..40),
        suffix in prop::collection::vec(rel_op_strategy(), 1..40),
    ) {
        let mut db = rel_db();
        for op in &prefix {
            apply_rel(&mut db, op);
        }
        let before = db.fingerprint();
        let sp = db.begin_savepoint();
        for op in &suffix {
            apply_rel(&mut db, op);
        }
        db.rollback_to(sp);
        prop_assert_eq!(db.fingerprint(), before);
        db.check_access_structures().unwrap();
    }

    /// Hierarchic: rollback restores the forest *and* leaves the preorder
    /// cache equal to a from-scratch traversal — even when the suffix
    /// invalidated and rebuilt it.
    #[test]
    fn hierarchic_rollback_erases_the_suffix(
        prefix in prop::collection::vec(hier_op_strategy(), 0..30),
        suffix in prop::collection::vec(hier_op_strategy(), 1..30),
    ) {
        let mut db = hier_seed();
        for op in &prefix {
            apply_hier(&mut db, op);
        }
        // Force the cache warm so rollback must reconcile it.
        let preorder_before = db.preorder();
        let before = db.fingerprint();
        let sp = db.begin_savepoint();
        for op in &suffix {
            apply_hier(&mut db, op);
        }
        db.rollback_to(sp);
        prop_assert_eq!(db.fingerprint(), before);
        prop_assert_eq!(db.preorder(), preorder_before);
        db.check_access_structures().unwrap();
    }
}

// -- the ladder's load-bearing consequence ------------------------------------

/// Regression for the supervision ladder's retry budget: a mutating
/// program killed by fuel exhaustion must leave the shared base
/// bitwise-unchanged. Before the undo journal, the `STORE` landed and the
/// base drifted — retries and sibling programs then ran against corrupted
/// ground truth.
#[test]
fn fuel_exhaustion_rolls_back_a_mutating_program() {
    let program = parse_program(
        "PROGRAM RUNAWAY;
  STORE DIV (DIV-NAME := 'DOOMED', DIV-LOC := 'X');
  FIND ALL := FIND(DIV: SYSTEM, ALL-DIV, DIV);
  FOR EACH D IN ALL DO
    PRINT D.DIV-NAME;
  END FOR;
END PROGRAM;",
    )
    .unwrap();
    let mut db = named::company_db(4, 3, 8);
    let before = db.fingerprint();

    // Generous enough to execute the STORE, far too small for the loop.
    let err = run_host_with_fuel(&mut db, &program, Inputs::new(), 3).unwrap_err();
    assert_eq!(err, RunError::StepLimit);

    assert_eq!(
        db.fingerprint(),
        before,
        "fuel exhaustion left the base changed — the ladder's retry budget \
         would re-verify against a corrupted ground truth"
    );
    db.check_access_structures().unwrap();

    // And with enough fuel the same program commits its store.
    run_host_with_fuel(&mut db, &program, Inputs::new(), 1_000).unwrap();
    assert_ne!(db.fingerprint(), before, "the program really does mutate");
}
