//! Paper-artifact reproduction: every figure and listing in the paper,
//! regenerated verbatim by the framework (experiment index F3.1–F4.4,
//! L4.1A/B, P4.1 in EXPERIMENTS.md).

use dbpc::analyzer::extract::sequences_of_dbtg;
use dbpc::convert::generator::{
    generate_dbtg_retrieval, lower_sequence_to_sequel, AssocDef, SemanticCatalog,
};
use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::named;
use dbpc::datamodel::ddl::{parse_network_schema, print_network_schema};
use dbpc::dml::dbtg::{parse_dbtg, print_dbtg};
use dbpc::dml::host::{parse_program, Stmt};
use dbpc::dml::sequel::{parse_select, print_select};
use std::collections::BTreeMap;

/// Figure 4.3, transcribed from the paper.
const FIG_4_3: &str = "\
SCHEMA NAME IS COMPANY-NAME.
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC X(2).
    DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
";

/// F4.2/F4.3: the schema declaration parses and round-trips.
#[test]
fn figure_4_3_round_trips() {
    let schema = parse_network_schema(FIG_4_3).unwrap();
    assert_eq!(schema.name, "COMPANY-NAME");
    let printed = print_network_schema(&schema);
    let again = parse_network_schema(&printed).unwrap();
    assert_eq!(schema.sets, again.sets);
    assert_eq!(
        schema.record("EMP").unwrap().field_names(),
        vec!["EMP-NAME", "DEPT-NAME", "AGE", "DIV-NAME"]
    );
}

/// F3.1a: the relational school database in the paper's compact notation.
#[test]
fn figure_3_1a_compact_notation() {
    let txt = named::school_relational_schema().to_compact_notation();
    assert!(txt.contains("COURSE-OFFERING(CNO,S,INSTRUCTOR)"));
    assert!(txt.contains("COURSE(CNO,CNAME)"));
    assert!(txt.contains("SEMESTER(S,YEAR)"));
}

/// F3.1b: the CODASYL school database enforces the §3.1 constraints.
#[test]
fn figure_3_1b_constraint_semantics() {
    use dbpc::datamodel::value::Value;
    let mut db = named::school_network_db(3, 2).unwrap();
    // "a 'course-offering' instance cannot exist unless the 'course' and
    // 'semester' instances it references do":
    assert!(db
        .store("COURSE-OFFERING", &[("OFF-ID", Value::str("ORPHAN"))], &[])
        .is_err());
    // "a course may not be offered more than twice in a school year":
    let course = db.records_of_type("COURSE")[0];
    let sems = db.records_of_type("SEMESTER");
    db.store(
        "COURSE-OFFERING",
        &[("OFF-ID", Value::str("SECOND"))],
        &[
            ("COURSES-OFFERING", course),
            ("SEMESTERS-OFFERING", sems[1]),
        ],
    )
    .unwrap();
    assert!(db
        .store(
            "COURSE-OFFERING",
            &[("OFF-ID", Value::str("THIRD"))],
            &[
                ("COURSES-OFFERING", course),
                ("SEMESTERS-OFFERING", sems[1])
            ],
        )
        .is_err());
}

/// §4.2 examples 1 and 2, printed verbatim.
#[test]
fn section_4_2_find_statements_verbatim() {
    let p = parse_program(
        "PROGRAM P;
  FIND E1 := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30));
  FIND E2 := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES'));
END PROGRAM;",
    )
    .unwrap();
    let finds = p.finds();
    assert_eq!(
        finds[0].to_string(),
        "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))"
    );
    assert_eq!(
        finds[1].to_string(),
        "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES'))"
    );
}

/// F4.4: the converter reproduces the paper's two converted FIND
/// statements, including the `SORT … ON (EMP-NAME)` wrapper on example 1
/// and its absence on example 2.
#[test]
fn figure_4_4_converted_statements_verbatim() {
    let schema = named::company_schema();
    let restructuring = named::fig_4_4_restructuring();
    let supervisor = Supervisor::without_optimizer();

    let p1 = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30));
END PROGRAM;",
    )
    .unwrap();
    let r1 = supervisor
        .convert(&schema, &restructuring, &p1, &mut AutoAnalyst)
        .unwrap();
    let Stmt::Find { query, .. } = &r1.program.as_ref().unwrap().stmts[0] else {
        panic!()
    };
    assert_eq!(
        query.to_string(),
        "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30))) ON (EMP-NAME)"
    );

    let p2 = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES'));
END PROGRAM;",
    )
    .unwrap();
    let r2 = supervisor
        .convert(&schema, &restructuring, &p2, &mut AutoAnalyst)
        .unwrap();
    let Stmt::Find { query, .. } = &r2.program.as_ref().unwrap().stmts[0] else {
        panic!()
    };
    assert_eq!(
        query.to_string(),
        "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)"
    );
}

fn personnel_catalog() -> SemanticCatalog {
    let mut c = SemanticCatalog::default();
    c.entity_keys.insert("DEPT".into(), "D#".into());
    c.entity_keys.insert("EMP".into(), "E#".into());
    c.assocs.push(AssocDef {
        name: "EMP-DEPT".into(),
        left: "DEPT".into(),
        left_link: "D#".into(),
        right: "EMP".into(),
        right_link: "E#".into(),
        set: "ED".into(),
    });
    c
}

/// The full §4.1 circle: listing (B) → template matching → the paper's
/// access-pattern sequence → listing (A), every hop verbatim.
#[test]
fn section_4_1_listing_b_to_patterns_to_listing_a() {
    let listing_b = "\
DBTG PROGRAM GETEMP.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO NOTFD.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
NOTFD.
FINISH.
  STOP.
END PROGRAM.
";
    let program = parse_dbtg(listing_b).unwrap();
    let schema = named::personnel_network_schema();
    let mut assoc = BTreeMap::new();
    assoc.insert("ED".to_string(), "EMP-DEPT".to_string());

    // Template matching lifts the navigation loop to Su's patterns.
    let extraction = sequences_of_dbtg(&program, &schema, &assoc);
    assert!(extraction.gaps.is_empty());
    assert_eq!(extraction.sequences.len(), 1);
    let seq = &extraction.sequences[0];
    assert_eq!(
        seq.to_string(),
        "ACCESS DEPT via DEPT\nACCESS EMP-DEPT via DEPT\nACCESS EMP via EMP-DEPT\nRETRIEVE"
    );

    // The generator lowers the same patterns to SEQUEL: listing (A).
    let q = lower_sequence_to_sequel(seq, vec!["ENAME"], &personnel_catalog()).unwrap();
    assert_eq!(
        print_select(&q),
        "SELECT ENAME
FROM EMP
WHERE E# IN
SELECT E#
FROM EMP-DEPT
WHERE D# = 'D2'
AND YEAR-OF-SERVICE = 3
"
    );
    // And listing (A) itself parses back to the same query.
    assert_eq!(parse_select(&print_select(&q)).unwrap(), q);

    // The other direction: patterns back down to a DBTG program of the
    // listing (B) shape.
    let regenerated =
        generate_dbtg_retrieval(seq, vec!["ENAME"], &personnel_catalog(), "GETEMP").unwrap();
    let text = print_dbtg(&regenerated);
    assert!(text.contains("FIND ANY DEPT USING D#."));
    assert!(text.contains("FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE."));
    assert!(text.contains("PRINT EMP.ENAME."));
}

/// P4.1: the §4.1 Manager-Smith query's access patterns from a host
/// program over the association-realized schema.
#[test]
fn section_4_1_manager_smith_patterns() {
    use dbpc::analyzer::patterns::{AccessSequence, AccessStep, DbOperation};
    use dbpc::dml::expr::{BoolExpr, CmpOp, Expr};
    // "Find the names of employees who work for Manager Smith for more
    // than ten years."
    let seq = AccessSequence::new(
        vec![
            AccessStep::entry("DEPT").with_condition(BoolExpr::cmp(
                Expr::name("MGR"),
                CmpOp::Eq,
                Expr::lit("SMITH"),
            )),
            AccessStep::via_source("EMP-DEPT", "DEPT").with_condition(BoolExpr::cmp(
                Expr::name("YEAR-OF-SERVICE"),
                CmpOp::Gt,
                Expr::lit(10),
            )),
            AccessStep::via_source("EMP", "EMP-DEPT"),
        ],
        DbOperation::Retrieve,
    );
    assert_eq!(
        seq.to_string(),
        "ACCESS DEPT via DEPT\nACCESS EMP-DEPT via DEPT\nACCESS EMP via EMP-DEPT\nRETRIEVE"
    );
    // Lowered, it nests (MGR is not the key, so no inlining).
    let q = lower_sequence_to_sequel(&seq, vec!["ENAME"], &personnel_catalog()).unwrap();
    assert_eq!(q.nesting_depth(), 2);
}

/// The restructured schema, printed as DDL — the Figure 4.4 structure in
/// Figure 4.3's language, as a golden text.
#[test]
fn figure_4_4_target_ddl_golden() {
    let target = named::fig_4_4_restructuring()
        .apply_schema(&named::company_schema())
        .unwrap();
    let printed = print_network_schema(&target);
    assert_eq!(
        printed,
        "\
SCHEMA NAME IS COMPANY-NAME.
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    AGE PIC 9(2).
  END RECORD.
  RECORD NAME IS DEPT.
  FIELDS ARE.
    DEPT-NAME PIC X(8).
    DIV-NAME VIRTUAL VIA DIV-DEPT USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-DEPT.
  OWNER IS DIV.
  MEMBER IS DEPT.
  SET KEYS ARE (DEPT-NAME).
  END SET.
  SET NAME IS DEPT-EMP.
  OWNER IS DEPT.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
"
    );
    // And it re-parses to the same schema.
    assert_eq!(parse_network_schema(&printed).unwrap().sets, target.sets);
}
