//! Determinism of the observability layer itself.
//!
//! The obs contract extends the repo's parallelism contract one level up:
//! not only must the E2 matrix be byte-identical at any thread count, the
//! *deterministic projection* of the run's `RunReport` — span forest with
//! wall clocks stripped, metrics with `Racy`/`Time`/`host.*` entries
//! dropped — must be byte-identical too. Per-cell captures are renumbered
//! in cell-index order and metric shards merge in the same order, so the
//! report is a pure function of the work list, not of scheduling.
//!
//! Also pinned here: the PR-2 regression where the analysis cache's
//! hit/miss tallies lived in per-thread `Cell`s and were silently dropped
//! for every pool worker but the assembling thread. Since the counters
//! migrated into the ambient obs sheet (bracketed per cell, shipped back
//! with the result, merged in index order), every worker's lookups are
//! accounted for: hits + misses == lookups at any thread count.

use dbpc::analyzer::cache::{CACHE_HITS, CACHE_LOOKUPS, CACHE_MISSES};
use dbpc::corpus::harness::{success_rate_study_config, StudyConfig, StudyResult};
use dbpc::obs::RunReport;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn study_at(threads: usize, permissive: bool) -> StudyResult {
    success_rate_study_config(&StudyConfig {
        threads,
        permissive,
        ..StudyConfig::new(2, 1979)
    })
}

#[test]
fn e2_run_report_is_deterministic_across_thread_counts() {
    let runs: Vec<StudyResult> = THREAD_COUNTS
        .iter()
        .map(|&threads| study_at(threads, false))
        .collect();
    let reference = runs[0].report.deterministic();
    assert!(
        reference.node_count() > 0,
        "study produced an empty span forest"
    );
    for (threads, run) in THREAD_COUNTS.iter().zip(&runs).skip(1) {
        let projected = run.report.deterministic();
        assert_eq!(
            reference, projected,
            "deterministic report differs at {threads} threads"
        );
        assert_eq!(
            reference.to_json(),
            projected.to_json(),
            "deterministic report JSON differs at {threads} threads"
        );
    }
}

#[test]
fn permissive_run_report_is_deterministic_across_thread_counts() {
    let runs: Vec<StudyResult> = THREAD_COUNTS
        .iter()
        .map(|&threads| study_at(threads, true))
        .collect();
    let reference = runs[0].report.deterministic();
    for run in &runs[1..] {
        assert_eq!(reference, run.report.deterministic());
        assert_eq!(reference.to_json(), run.report.deterministic().to_json());
    }
}

#[test]
fn run_report_json_round_trips() {
    let run = study_at(2, false);
    let text = run.report.to_json();
    let back = RunReport::from_json(&text).expect("exported report must parse");
    assert_eq!(back, run.report);
    assert_eq!(back.to_json(), text, "re-serialization must be byte-stable");
    dbpc::obs::report::validate_json(&text).expect("exported report must validate");
}

#[test]
fn every_span_is_well_formed_and_stage_spans_present() {
    let run = study_at(2, false);
    for root in &run.report.spans {
        assert!(
            root.well_formed(),
            "malformed span tree under {}",
            root.name
        );
    }
    // The Figure 4.1 stage boundaries all appear in a real study run.
    let mut names = std::collections::BTreeSet::new();
    run.report.walk(&mut |node| {
        names.insert(node.name.clone());
    });
    for expected in [
        "convert.program",
        "stage.analyzer",
        "stage.converter",
        "stage.optimizer",
        "stage.generator",
        "engine.host",
    ] {
        assert!(names.contains(expected), "missing span {expected:?}");
    }
}

/// The PR-2 cache-merge regression: every pool worker's analysis-cache
/// lookups are merged into the study frame, so the hit/miss split accounts
/// for every lookup even at 8 threads. (Hits and misses are individually
/// interleaving-dependent — `Racy` — but their sum is not.)
#[test]
fn analysis_cache_hits_and_misses_account_for_every_lookup() {
    for &threads in &THREAD_COUNTS {
        let run = study_at(threads, false);
        let frame = &run.report.metrics;
        let lookups = frame.counter(CACHE_LOOKUPS);
        assert!(lookups > 0, "study at {threads} threads did no lookups");
        assert_eq!(
            frame.counter(CACHE_HITS) + frame.counter(CACHE_MISSES),
            lookups,
            "cache hit/miss split lost lookups at {threads} threads"
        );
        // The same identity must survive the StudyProfile projection the
        // benches read.
        assert_eq!(
            run.profile.analysis_cache_hits + run.profile.analysis_cache_misses,
            lookups
        );
    }
}
