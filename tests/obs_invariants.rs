//! Property tests on the observability substrate.
//!
//! Four invariants, each fuzzed over random inputs:
//!
//! 1. ambient metric counters are monotone within a thread — no record
//!    call ever makes a later snapshot smaller;
//! 2. every span a capture opens is closed: arbitrary (even unbalanced)
//!    nesting scripts produce well-formed trees under the logical clock,
//!    and the capture's tick count is exactly what the tree spent;
//! 3. span nesting follows the Stage machine: in a traced conversion,
//!    `stage.*` spans appear only inside a `convert.program` span and in
//!    pipeline order (analyzer ≺ converter ≺ optimizer ≺ generator);
//! 4. storage savepoint rollback never un-counts: observability is
//!    append-only, so metrics survive the rollback of the work they
//!    describe, and the savepoint ledger stays balanced.

use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::gen::{generate_program, ProgramClass};
use dbpc::corpus::named;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::Inputs;
use dbpc::obs::span::{SpanKind, SpanNode};
use dbpc::storage::stats::{SAVEPOINTS_BEGUN, SAVEPOINTS_COMMITTED, SAVEPOINTS_ROLLED_BACK};
use proptest::prelude::*;

// -- 1. counter monotonicity ------------------------------------------------

proptest! {
    #[test]
    fn ambient_counters_are_monotone(ops in prop::collection::vec((any::<u8>(), any::<u8>()), 0..48)) {
        let mut last = dbpc::obs::local_snapshot();
        for (kind, n) in ops {
            match kind % 3 {
                0 => dbpc::obs::count("test.invariant.counter", n as u64),
                1 => dbpc::obs::racy("test.invariant.racy", n as u64),
                _ => dbpc::obs::time("test.invariant.ns", n as u64),
            }
            let now = dbpc::obs::local_snapshot();
            prop_assert!(now.monotone_since(&last), "snapshot shrank after a record call");
            last = now;
        }
    }
}

// -- 2. captures close everything -------------------------------------------

proptest! {
    #[test]
    fn captures_close_every_span(script in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut spans = 0u64;
        let mut events = 0u64;
        let ((), cap) = dbpc::obs::capture("prop-root", || {
            run_script(&script, 0, &mut spans, &mut events);
        });
        prop_assert_eq!(cap.spans.len(), 1, "capture must yield exactly the root");
        let root = &cap.spans[0];
        prop_assert!(root.well_formed(), "tree violates logical-clock nesting");
        // Node census: the root plus everything the script opened.
        let mut span_nodes = 0u64;
        let mut event_nodes = 0u64;
        root.walk(&mut |n: &SpanNode| match n.kind {
            SpanKind::Span => span_nodes += 1,
            SpanKind::Event => event_nodes += 1,
        });
        prop_assert_eq!(span_nodes, spans + 1, "a span was lost or invented");
        prop_assert_eq!(event_nodes, events);
        // The logical clock ticks once to open and once to close each span,
        // once per event: the capture's tick count is exactly that spend.
        prop_assert_eq!(cap.ticks, 2 * span_nodes + event_nodes);
    }
}

/// Recursive interpreter for the nesting script (split from the proptest
/// block so it can recurse).
fn run_script(script: &[u8], depth: usize, spans: &mut u64, events: &mut u64) {
    let mut i = 0;
    while i < script.len() {
        let b = script[i];
        i += 1;
        match b % 4 {
            0 if depth < 6 => {
                *spans += 1;
                // Consume a prefix of the remainder inside the child span;
                // the child's length depends on the next byte.
                let take = script.get(i).copied().unwrap_or(0) as usize % 8;
                let end = (i + take).min(script.len());
                let (inner, _) = (&script[i..end], ());
                dbpc::obs::span("t.inner", || {
                    run_script(inner, depth + 1, spans, events);
                });
                i = end;
            }
            1 => {
                *events += 1;
                dbpc::obs::event("t.event");
            }
            2 => {
                *spans += 1;
                dbpc::obs::span_with("t.attr", &[("k", "v")], || {});
            }
            _ => {
                *events += 1;
                dbpc::obs::event_with("t.note", &[("i", "x")]);
            }
        }
    }
}

// -- 3. stage-machine nesting ------------------------------------------------

const STAGE_ORDER: [&str; 4] = [
    "stage.analyzer",
    "stage.converter",
    "stage.optimizer",
    "stage.generator",
];

/// Walk with parent context: `stage.*` spans must sit directly under a
/// `convert.program` span, and within one program the stages that do appear
/// must respect pipeline order.
fn check_stage_nesting(node: &SpanNode, parent: Option<&str>) -> Result<(), TestCaseError> {
    if node.name.starts_with("stage.") {
        prop_assert_eq!(
            parent,
            Some("convert.program"),
            "{} outside convert.program",
            node.name.clone()
        );
    }
    if node.name == "convert.program" {
        let stages: Vec<usize> = node
            .children
            .iter()
            .filter_map(|c| STAGE_ORDER.iter().position(|s| c.name == *s))
            .collect();
        let mut sorted = stages.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&stages, &sorted, "stages out of pipeline order");
        prop_assert!(!stages.is_empty(), "traced conversion recorded no stages");
    }
    for c in &node.children {
        check_stage_nesting(c, Some(node.name.as_str()))?;
    }
    Ok(())
}

proptest! {
    #[test]
    fn traced_conversions_follow_the_stage_machine(class in any::<u8>(), seed in any::<u64>()) {
        let pc = ProgramClass::ALL[class as usize % ProgramClass::ALL.len()];
        let program = generate_program(pc, seed);
        let schema = named::company_schema();
        let restructuring = named::fig_4_4_restructuring();
        let report = Supervisor::new()
            .convert_traced(&schema, &restructuring, &program, &mut AutoAnalyst);
        let Ok(report) = report else { return Ok(()) };
        let run = report.run_report.as_ref().expect("traced entry point must attach a report");
        prop_assert!(!run.spans.is_empty());
        for root in &run.spans {
            prop_assert!(root.well_formed());
            check_stage_nesting(root, None)?;
        }
    }
}

// -- 4. rollback never un-counts ---------------------------------------------

proptest! {
    #[test]
    fn savepoint_rollback_never_uncounts(class in any::<u8>(), seed in any::<u64>()) {
        let pc = ProgramClass::ALL[class as usize % ProgramClass::ALL.len()];
        let program = generate_program(pc, seed);
        let mut db = named::company_db(3, 2, 6);
        let inputs = Inputs::new().with_terminal(&["RETRIEVE"]);

        let before = dbpc::obs::local_snapshot();
        let sp = db.begin_savepoint();
        // The run mutates (or fails, or is a pure retrieval) — either way
        // its access work is absorbed into the ambient sheet.
        let _ = run_host(&mut db, &program, inputs);
        db.rollback_to(sp);
        let after = dbpc::obs::local_snapshot();

        prop_assert!(after.monotone_since(&before), "rollback un-counted a metric");
        let delta = after.since(&before);
        // The outer savepoint was begun and rolled back; the engine's inner
        // savepoint resolved too, so the ledger balances.
        prop_assert!(delta.counter(SAVEPOINTS_ROLLED_BACK) >= 1);
        prop_assert_eq!(
            delta.counter(SAVEPOINTS_BEGUN),
            delta.counter(SAVEPOINTS_COMMITTED) + delta.counter(SAVEPOINTS_ROLLED_BACK),
            "savepoint ledger out of balance"
        );
    }
}
