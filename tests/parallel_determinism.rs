//! Determinism of the parallel conversion pipeline.
//!
//! The study harness runs its 96 (transform × program-class) cells on a
//! scoped thread-pool with a fixed strided partition and index-ordered
//! reassembly, so the E2 matrix and everything derived from it (the E9 cost
//! model, the paper-figure conversions) must be **byte-identical** at any
//! thread count — parallelism and the other pipeline-efficiency knobs
//! (database reuse, analysis memoization, batch conversion) are speed
//! optimizations, never behavior changes.

use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::service::{CtxId, JobOutcome, ServiceBuilder, ServiceConfig, Ticket};
use dbpc::convert::{FaultPlan, Supervisor};
use dbpc::corpus::gen::{generate_program, ProgramClass};
use dbpc::corpus::harness::{
    cost_model, success_rate_study_config, CostParams, StudyConfig, StudyMatrix,
};
use dbpc::corpus::named;
use dbpc::dml::host::parse_program;
use dbpc::engine::Inputs;
use dbpc::storage::pool;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn e2_matrix_is_byte_identical_across_thread_counts() {
    let runs: Vec<StudyMatrix> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            success_rate_study_config(&StudyConfig {
                threads,
                ..StudyConfig::new(2, 1979)
            })
        })
        .collect();
    for (threads, run) in THREAD_COUNTS.iter().zip(&runs) {
        // The requested width was honored (profile is diagnostic-only and
        // excluded from the equality below).
        assert_eq!(run.profile.threads, *threads);
    }
    let reference = &runs[0];
    for run in &runs[1..] {
        assert_eq!(reference, run, "matrix differs across thread counts");
        assert_eq!(
            reference.to_string(),
            run.to_string(),
            "rendered matrix differs across thread counts"
        );
    }
}

#[test]
fn e9_cost_report_is_byte_identical_across_thread_counts() {
    let reports: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let study = success_rate_study_config(&StudyConfig {
                threads,
                permissive: true,
                ..StudyConfig::new(2, 1979)
            });
            cost_model(&study, CostParams::default()).to_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn speed_knobs_do_not_change_the_matrix() {
    // The seed-faithful pipeline (sequential, rebuild-per-program, no
    // memoization) and the fully tuned one agree cell for cell.
    let baseline = success_rate_study_config(&StudyConfig::baseline(2, 42));
    let tuned = success_rate_study_config(&StudyConfig {
        threads: 8,
        ..StudyConfig::new(2, 42)
    });
    assert_eq!(baseline, tuned);
    assert_eq!(baseline.to_string(), tuned.to_string());
}

#[test]
fn figure_4_4_conversion_is_unchanged_by_batching() {
    // The paper's Figure 4.4 conversion — the repo's golden figure test —
    // comes out of `convert_batch` exactly as out of solo `convert`,
    // whatever the batch shape.
    let schema = named::company_schema();
    let restructuring = named::fig_4_4_restructuring();
    let supervisor = Supervisor::without_optimizer();
    let program = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30));
END PROGRAM;",
    )
    .unwrap();
    let solo = supervisor
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    let batch = supervisor
        .convert_batch(
            &schema,
            &restructuring,
            &[program.clone(), program.clone(), program],
            &mut AutoAnalyst,
        )
        .unwrap();
    for report in &batch {
        assert_eq!(report.verdict, solo.verdict);
        assert_eq!(report.text, solo.text);
    }
    assert!(solo
        .text
        .unwrap()
        .contains("DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)"));
}

/// The conversion service resolves `workers: 0` exactly like the study
/// harness resolves `threads: 0`: `DBPC_THREADS` if set to a positive
/// integer, otherwise machine parallelism — one knob for every parallel
/// surface in the repo.
#[test]
fn service_worker_resolution_follows_dbpc_threads() {
    assert_eq!(
        ServiceConfig::default().resolved_workers(),
        pool::default_threads()
    );
    assert_eq!(
        ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        }
        .resolved_workers(),
        3
    );
    // The env hook's contract (parse only; the variable itself belongs to
    // the environment, not this test): unset, empty, junk, and zero all
    // mean "no override".
    assert_eq!(pool::parse_threads(Some("5")), Some(5));
    assert_eq!(pool::parse_threads(Some(" 8 ")), Some(8));
    assert_eq!(pool::parse_threads(Some("0")), None);
    assert_eq!(pool::parse_threads(Some("")), None);
    assert_eq!(pool::parse_threads(Some("many")), None);
    assert_eq!(pool::parse_threads(None), None);
}

/// A seeded fault plan hits the same jobs with the same faults whatever
/// the service's worker count: outcomes at 1, 2, and 8 workers are
/// byte-identical (faults are a function of `(stage, key, attempt)`, and
/// keys travel with jobs, not with workers).
#[test]
fn seeded_fault_service_runs_are_identical_across_worker_counts() {
    let jobs: Vec<(CtxId, dbpc::dml::host::Program, u64)> = (0..12u64)
        .map(|k| {
            let class = ProgramClass::ALL[(k as usize) % ProgramClass::ALL.len()];
            (0usize, generate_program(class, 1900 + k), k)
        })
        .collect();
    let config = |workers| ServiceConfig {
        workers,
        supervisor: Supervisor {
            fault: FaultPlan::seeded(0x1979, 0.35),
            ..Supervisor::default()
        },
        ..ServiceConfig::default()
    };
    let runs: Vec<Vec<JobOutcome>> = THREAD_COUNTS
        .iter()
        .map(|&workers| {
            let mut b = ServiceBuilder::new(config(workers));
            b.register_context(
                &named::company_schema(),
                &named::fig_4_4_restructuring(),
                named::company_db(2, 2, 5),
                Inputs::new().with_terminal(&["RETRIEVE"]),
            )
            .unwrap();
            let svc = b.start();
            let session = svc.session();
            let tickets: Vec<Ticket> = jobs
                .iter()
                .map(|(c, p, k)| session.submit(*c, p.clone(), *k).unwrap())
                .collect();
            tickets.into_iter().map(Ticket::wait).collect()
        })
        .collect();
    let reference = &runs[0];
    for run in &runs[1..] {
        for (a, b) in reference.iter().zip(run) {
            assert_eq!(a.report, b.report, "report differs across worker counts");
            assert_eq!(a.level, b.level, "level differs across worker counts");
        }
    }
}
