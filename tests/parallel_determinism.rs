//! Determinism of the parallel conversion pipeline.
//!
//! The study harness runs its 96 (transform × program-class) cells on a
//! scoped thread-pool with a fixed strided partition and index-ordered
//! reassembly, so the E2 matrix and everything derived from it (the E9 cost
//! model, the paper-figure conversions) must be **byte-identical** at any
//! thread count — parallelism and the other pipeline-efficiency knobs
//! (database reuse, analysis memoization, batch conversion) are speed
//! optimizations, never behavior changes.

use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::harness::{
    cost_model, success_rate_study_config, CostParams, StudyConfig, StudyMatrix,
};
use dbpc::corpus::named;
use dbpc::dml::host::parse_program;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn e2_matrix_is_byte_identical_across_thread_counts() {
    let runs: Vec<StudyMatrix> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            success_rate_study_config(&StudyConfig {
                threads,
                ..StudyConfig::new(2, 1979)
            })
        })
        .collect();
    for (threads, run) in THREAD_COUNTS.iter().zip(&runs) {
        // The requested width was honored (profile is diagnostic-only and
        // excluded from the equality below).
        assert_eq!(run.profile.threads, *threads);
    }
    let reference = &runs[0];
    for run in &runs[1..] {
        assert_eq!(reference, run, "matrix differs across thread counts");
        assert_eq!(
            reference.to_string(),
            run.to_string(),
            "rendered matrix differs across thread counts"
        );
    }
}

#[test]
fn e9_cost_report_is_byte_identical_across_thread_counts() {
    let reports: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let study = success_rate_study_config(&StudyConfig {
                threads,
                permissive: true,
                ..StudyConfig::new(2, 1979)
            });
            cost_model(&study, CostParams::default()).to_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn speed_knobs_do_not_change_the_matrix() {
    // The seed-faithful pipeline (sequential, rebuild-per-program, no
    // memoization) and the fully tuned one agree cell for cell.
    let baseline = success_rate_study_config(&StudyConfig::baseline(2, 42));
    let tuned = success_rate_study_config(&StudyConfig {
        threads: 8,
        ..StudyConfig::new(2, 42)
    });
    assert_eq!(baseline, tuned);
    assert_eq!(baseline.to_string(), tuned.to_string());
}

#[test]
fn figure_4_4_conversion_is_unchanged_by_batching() {
    // The paper's Figure 4.4 conversion — the repo's golden figure test —
    // comes out of `convert_batch` exactly as out of solo `convert`,
    // whatever the batch shape.
    let schema = named::company_schema();
    let restructuring = named::fig_4_4_restructuring();
    let supervisor = Supervisor::without_optimizer();
    let program = parse_program(
        "PROGRAM P;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30));
END PROGRAM;",
    )
    .unwrap();
    let solo = supervisor
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    let batch = supervisor
        .convert_batch(
            &schema,
            &restructuring,
            &[program.clone(), program.clone(), program],
            &mut AutoAnalyst,
        )
        .unwrap();
    for report in &batch {
        assert_eq!(report.verdict, solo.verdict);
        assert_eq!(report.text, solo.text);
    }
    assert!(solo
        .text
        .unwrap()
        .contains("DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30)"));
}
