//! Restructuring a *genuine network* (Figure 3.1b): COURSE-OFFERING has two
//! owners (COURSE and SEMESTER). Promoting INSTRUCTOR out of the offering
//! interposes an instructor-group record on the course side while the
//! semester-side membership is carried across untouched — the case that
//! separates a network restructurer from a hierarchy restructurer.

use dbpc::convert::equivalence::{check_equivalence, EquivalenceLevel};
use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::named;
use dbpc::dml::host::parse_program;
use dbpc::restructure::{Restructuring, Transform};

fn promote_instructor() -> Restructuring {
    Restructuring::single(Transform::PromoteFieldToOwner {
        record: "COURSE-OFFERING".into(),
        field: "INSTRUCTOR".into(),
        via_set: "COURSES-OFFERING".into(),
        new_record: "TEACHING".into(),
        upper_set: "COURSE-TEACHING".into(),
        lower_set: "TEACHING-OFFERING".into(),
    })
}

#[test]
fn schema_promotes_with_second_owner_intact() {
    let target = promote_instructor()
        .apply_schema(&named::school_network_schema())
        .unwrap();
    // The semester side is untouched.
    let sem_set = target.set("SEMESTERS-OFFERING").unwrap();
    assert_eq!(sem_set.member, "COURSE-OFFERING");
    // The course side goes through the instructor group.
    assert_eq!(target.set("COURSE-TEACHING").unwrap().member, "TEACHING");
    assert_eq!(
        target.set("TEACHING-OFFERING").unwrap().member,
        "COURSE-OFFERING"
    );
    assert!(target.set("COURSES-OFFERING").is_none());
    // Constraints on the split set re-attached to the lower set.
    assert!(target
        .constraints
        .iter()
        .any(|c| c.set_name() == Some("TEACHING-OFFERING")));
}

#[test]
fn data_translates_preserving_both_memberships() {
    let src = named::school_network_db(6, 3).unwrap();
    let out = promote_instructor().translate(&src).unwrap();
    assert_eq!(
        out.records_of_type("COURSE-OFFERING").len(),
        src.records_of_type("COURSE-OFFERING").len()
    );
    // Every offering still has a semester owner AND reaches a course
    // through its teaching group.
    for off in out.records_of_type("COURSE-OFFERING") {
        let sem = out.owner_in("SEMESTERS-OFFERING", off).unwrap();
        assert!(sem.is_some());
        let teaching = out.owner_in("TEACHING-OFFERING", off).unwrap().unwrap();
        let course = out.owner_in("COURSE-TEACHING", teaching).unwrap();
        assert!(course.is_some());
    }
}

#[test]
fn instructor_filtered_report_converts_and_runs_equivalently() {
    let schema = named::school_network_schema();
    let restructuring = promote_instructor();
    // "Which offerings of course C000 does PROF-00 teach?" — the filter on
    // the promoted field must re-home onto the TEACHING step.
    let program = parse_program(
        "PROGRAM WHO;
  FIND C := FIND(COURSE: SYSTEM, ALL-COURSE, COURSE(CNO = 'C000'));
  FIND OFFS := FIND(COURSE-OFFERING: C, COURSES-OFFERING, COURSE-OFFERING(INSTRUCTOR = 'PROF-00'));
  FOR EACH R IN OFFS DO
    PRINT R.OFF-ID;
  END FOR;
  PRINT 'TOTAL', COUNT(OFFS);
END PROGRAM;",
    )
    .unwrap();
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded(), "{:?}", report.questions);
    let text = report.text.as_ref().unwrap();
    assert!(text.contains(
        "FIND(COURSE-OFFERING: C, COURSE-TEACHING, TEACHING(INSTRUCTOR = 'PROF-00'), \
         TEACHING-OFFERING, COURSE-OFFERING)"
    ));

    let src = named::school_network_db(6, 3).unwrap();
    let tgt = restructuring.translate(&src).unwrap();
    let eq = check_equivalence(
        src,
        &program,
        tgt,
        report.program.as_ref().unwrap(),
        &dbpc::engine::Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert_eq!(eq.level, EquivalenceLevel::Strict, "{:?}", eq.divergence);
    assert_eq!(
        *eq.original_trace.terminal_lines().last().unwrap(),
        "TOTAL 1"
    );
}

#[test]
fn semester_side_reports_unaffected_by_course_side_promotion() {
    let schema = named::school_network_schema();
    let restructuring = promote_instructor();
    let program = parse_program(
        "PROGRAM SEM;
  FIND S := FIND(SEMESTER: SYSTEM, ALL-SEMESTER, SEMESTER(S = 'S01'));
  FIND OFFS := FIND(COURSE-OFFERING: S, SEMESTERS-OFFERING, COURSE-OFFERING);
  PRINT COUNT(OFFS);
END PROGRAM;",
    )
    .unwrap();
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded());
    // The semester-side path is untouched by the conversion.
    assert!(report
        .text
        .as_ref()
        .unwrap()
        .contains("SEMESTERS-OFFERING, COURSE-OFFERING"));

    let src = named::school_network_db(6, 3).unwrap();
    let tgt = restructuring.translate(&src).unwrap();
    let eq = check_equivalence(
        src,
        &program,
        tgt,
        report.program.as_ref().unwrap(),
        &dbpc::engine::Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert_eq!(eq.level, EquivalenceLevel::Strict, "{:?}", eq.divergence);
}

/// Two stacked promotions: first DEPT out of EMP (Figure 4.2→4.4), then an
/// age-band group out of EMP under DEPT — the converter splices the same
/// path twice, threading schema snapshots between steps.
#[test]
fn two_level_promotion_composes() {
    use dbpc::corpus::named as company;
    let schema = company::company_schema();
    let restructuring = Restructuring::new(vec![
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "DEPT-NAME".into(),
            via_set: "DIV-EMP".into(),
            new_record: "DEPT".into(),
            upper_set: "DIV-DEPT".into(),
            lower_set: "DEPT-EMP".into(),
        },
        Transform::PromoteFieldToOwner {
            record: "EMP".into(),
            field: "AGE".into(),
            via_set: "DEPT-EMP".into(),
            new_record: "AGE-BAND".into(),
            upper_set: "DEPT-BAND".into(),
            lower_set: "BAND-EMP".into(),
        },
    ]);
    // A program filtering on both promoted fields.
    let program = parse_program(
        "PROGRAM DOUBLE;
  FIND E := FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP(DEPT-NAME = 'SALES' AND AGE = 27));
  FOR EACH R IN E DO
    PRINT R.EMP-NAME;
  END FOR;
  PRINT 'N', COUNT(E);
END PROGRAM;",
    )
    .unwrap();
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &program, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded(), "{:?}", report.questions);
    let text = report.text.as_ref().unwrap();
    // The path now descends DIV → DEPT → AGE-BAND → EMP, each filter
    // re-homed to its level.
    assert!(
        text.contains(
            "DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-BAND, AGE-BAND(AGE = 27), BAND-EMP, EMP"
        ),
        "{text}"
    );

    let src = company::company_db(3, 3, 9);
    let tgt = restructuring.translate(&src).unwrap();
    let eq = check_equivalence(
        src,
        &program,
        tgt,
        report.program.as_ref().unwrap(),
        &dbpc::engine::Inputs::new(),
        &report.warnings,
    )
    .unwrap();
    assert_eq!(eq.level, EquivalenceLevel::Strict, "{:?}", eq.divergence);
}
