//! The full modernization path the paper's §3.1 intermediate form enables:
//!
//! ```text
//! 1979 DBTG navigation program
//!   --(template matching, Nations & Su)--> access patterns
//!   --(decompilation)-->                  host FIND program
//!   --(Figure 4.1 conversion)-->          program for the restructured schema
//! ```
//!
//! with trace equality checked by execution at every hop.

use dbpc::analyzer::extract::sequences_of_dbtg;
use dbpc::convert::generator::{lift_sequence_to_host, AssocDef, SemanticCatalog};
use dbpc::convert::report::AutoAnalyst;
use dbpc::convert::Supervisor;
use dbpc::corpus::named;
use dbpc::dml::dbtg::parse_dbtg;
use dbpc::dml::host::print_program;
use dbpc::engine::dbtg_exec::run_dbtg;
use dbpc::engine::host_exec::run_host;
use dbpc::engine::Inputs;
use dbpc::restructure::{Restructuring, Transform};
use std::collections::BTreeMap;

const LISTING_B: &str = "\
DBTG PROGRAM GETEMP.
  MOVE 'D2' TO D# IN DEPT.
  FIND ANY DEPT USING D#.
  IF STATUS NOTFOUND GO TO FINISH.
  MOVE 3 TO YEAR-OF-SERVICE IN EMP.
NEXT.
  FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
  IF STATUS ENDSET GO TO FINISH.
  GET EMP.
  PRINT EMP.ENAME.
  GO TO NEXT.
FINISH.
  STOP.
END PROGRAM.
";

fn catalog() -> SemanticCatalog {
    let mut c = SemanticCatalog::default();
    c.entity_keys.insert("DEPT".into(), "D#".into());
    c.entity_keys.insert("EMP".into(), "E#".into());
    c.assocs.push(AssocDef {
        name: "EMP-DEPT".into(),
        left: "DEPT".into(),
        left_link: "D#".into(),
        right: "EMP".into(),
        right_link: "E#".into(),
        set: "ED".into(),
    });
    c
}

/// Hop 1+2: DBTG → patterns → host program, trace-identical.
#[test]
fn dbtg_decompiles_to_equivalent_host_program() {
    let dbtg = parse_dbtg(LISTING_B).unwrap();
    let schema = named::personnel_network_schema();
    let mut assoc = BTreeMap::new();
    assoc.insert("ED".to_string(), "EMP-DEPT".to_string());
    let extraction = sequences_of_dbtg(&dbtg, &schema, &assoc);
    assert!(extraction.gaps.is_empty());

    let host = lift_sequence_to_host(
        &extraction.sequences[0],
        vec!["ENAME"],
        &catalog(),
        &schema,
        "GETEMP",
    )
    .unwrap();
    let text = print_program(&host);
    assert!(text.contains(
        "FOR EACH R IN FIND(EMP: SYSTEM, ALL-DEPT, DEPT(D# = 'D2'), \
         ED, EMP(YEAR-OF-SERVICE = 3)) DO"
    ));

    let mut db1 = named::personnel_network_db(5, 6).unwrap();
    let mut db2 = db1.clone();
    let t_dbtg = run_dbtg(&mut db1, &dbtg, Inputs::new()).unwrap();
    let t_host = run_host(&mut db2, &host, Inputs::new()).unwrap();
    assert_eq!(t_dbtg, t_host);
    assert!(!t_dbtg.terminal_lines().is_empty());
}

/// Hop 3: the decompiled host program converts under a restructuring of
/// the personnel schema (rename + key change), still trace-identical.
#[test]
fn decompiled_program_converts_under_restructuring() {
    let dbtg = parse_dbtg(LISTING_B).unwrap();
    let schema = named::personnel_network_schema();
    let mut assoc = BTreeMap::new();
    assoc.insert("ED".to_string(), "EMP-DEPT".to_string());
    let extraction = sequences_of_dbtg(&dbtg, &schema, &assoc);
    let host = lift_sequence_to_host(
        &extraction.sequences[0],
        vec!["ENAME"],
        &catalog(),
        &schema,
        "GETEMP",
    )
    .unwrap();

    let restructuring = Restructuring::new(vec![
        Transform::RenameField {
            record: "EMP".into(),
            old: "YEAR-OF-SERVICE".into(),
            new: "SENIORITY".into(),
        },
        Transform::RenameSet {
            old: "ED".into(),
            new: "DEPT-STAFF".into(),
        },
    ]);
    let report = Supervisor::new()
        .convert(&schema, &restructuring, &host, &mut AutoAnalyst)
        .unwrap();
    assert!(report.succeeded());
    let converted = report.program.as_ref().unwrap();
    let text = print_program(converted);
    assert!(text.contains("DEPT-STAFF, EMP(SENIORITY = 3)"));

    // Execute: original DBTG on the source db, converted host program on
    // the translated db.
    let mut src = named::personnel_network_db(5, 6).unwrap();
    let mut tgt = restructuring.translate(&src).unwrap();
    let t_old = run_dbtg(&mut src, &dbtg, Inputs::new()).unwrap();
    let t_new = run_host(&mut tgt, converted, Inputs::new()).unwrap();
    assert_eq!(t_old, t_new);
}

/// §5.3's open problem, surfaced rather than hidden: statements outside the
/// template library are reported as gaps ("large classes of programs will
/// have to be analyzed to become convinced that the set of templates is
/// widely applicable").
#[test]
fn template_gaps_are_reported_not_swallowed() {
    use dbpc::analyzer::extract::sequences_of_dbtg;
    let program = parse_dbtg(
        "DBTG PROGRAM ODD.
  MOVE 'E1' TO E# IN EMP.
  FIND ANY EMP USING E#.
  FIND OWNER WITHIN NO-SUCH-SET.
  STOP.
END PROGRAM.",
    )
    .unwrap();
    let schema = named::personnel_network_schema();
    let ex = sequences_of_dbtg(&program, &schema, &BTreeMap::new());
    assert_eq!(ex.gaps.len(), 1);
    assert!(ex.gaps[0].contains("NO-SUCH-SET"));
    // The matched part is still extracted.
    assert!(!ex.sequences.is_empty());
}
